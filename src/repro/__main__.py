"""``python -m repro`` — same surface as the ``repro``/``repro-normalize``
console scripts, including the ``verify`` subcommand."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
