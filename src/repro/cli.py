"""Console front-end for Normalize.

The paper's implementation "is currently console-based, offering only
basic user interaction" (§9); this module is that surface.  Batch mode
normalizes fully automatically; ``--interactive`` puts the human in the
loop at each decomposition and primary-key decision, exactly the
(semi-)automatic mode of the paper.

Examples::

    repro-normalize data.csv
    repro-normalize data.csv --algorithm tane --target 3nf
    repro-normalize data.csv --interactive --ddl schema.sql --out-dir normalized/

A single subcommand hosts the correctness harness (see
``docs/TESTING.md``)::

    repro verify --seeds 50
    python -m repro verify --seeds 200 --repro-out shrunk_repros.py

Two subcommands host the incremental engine (``docs/INCREMENTAL.md``)::

    repro apply-batch data.csv --changes changes.json --report
    repro watch data.csv --changes changes.jsonl --interval 2
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path

from repro.core.normalize import Normalizer
from repro.core.scoring import KeyScore, ViolatingFDScore
from repro.core.selection import AutoDecider, CallbackDecider
from repro.io.csv_io import read_csv, write_csv
from repro.io.ddl import schema_to_ddl
from repro.model.instance import RelationInstance
from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    InputError,
    WorkerCrashError,
)
from repro.runtime.governor import Budget, parse_duration, parse_memory

__all__ = ["build_parser", "main"]

#: structured exit codes of the CLI boundary (documented in
#: docs/ROBUSTNESS.md): bad input data/arguments, a propagated budget
#: breach (only with --no-degrade), a checkpoint defect, an unrecovered
#: worker crash (strict pool mode), and the conventional signal codes
#: (128 + SIGINT/SIGTERM) after a graceful teardown.
EXIT_INPUT_ERROR = 2
EXIT_BUDGET_EXCEEDED = 3
EXIT_CHECKPOINT_ERROR = 4
EXIT_WORKER_CRASH = 5
EXIT_INTERRUPTED = 130
EXIT_TERMINATED = 143


class _Terminated(BaseException):
    """Raised by the SIGTERM handler so ``finally`` blocks run.

    A ``BaseException`` (like ``KeyboardInterrupt``) so no library-level
    ``except Exception`` can swallow the shutdown on its way to the CLI
    boundary.
    """


def _graceful_shutdown() -> None:
    """Best-effort teardown on a signal: pool down, shm unlinked.

    Checkpoint journals need no flushing here — every write is already
    atomic (tmp + rename), so an interrupt can only lose the in-flight
    step, never corrupt the journal.  What a signal *can* strand is the
    worker pool and its shared-memory segments; release both.
    """
    try:
        from repro.parallel import shutdown_pool

        shutdown_pool()
    except Exception:  # pragma: no cover - teardown best effort
        pass
    try:
        from repro.parallel import release_owned_segments

        release_owned_segments()
    except Exception:  # pragma: no cover - teardown best effort
        pass
    try:
        from repro.structures.storage import release_process_spill

        release_process_spill()
    except Exception:  # pragma: no cover - teardown best effort
        pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-normalize",
        description="Data-driven BCNF/3NF/4NF normalization of CSV datasets "
        "(reproduction of Papenbrock & Naumann, EDBT 2017).",
    )
    parser.add_argument(
        "files", nargs="+", help="input CSV files (one relation each)"
    )
    parser.add_argument(
        "--algorithm",
        default="hyfd",
        choices=("hyfd", "tane", "dfd", "bruteforce"),
        help="FD discovery algorithm (default: hyfd)",
    )
    parser.add_argument(
        "--target",
        default="bcnf",
        choices=("bcnf", "3nf", "4nf"),
        help="normal form to establish (default: bcnf); 4nf adds the "
        "MVD-driven extension phase",
    )
    parser.add_argument(
        "--closure",
        default="optimized",
        choices=("naive", "improved", "optimized"),
        help="closure algorithm (default: optimized)",
    )
    parser.add_argument(
        "--max-lhs-size",
        type=int,
        default=None,
        help="prune FDs with a wider LHS during discovery (paper §4.3)",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (default: ,)"
    )
    parser.add_argument(
        "--no-header",
        action="store_true",
        help="input files have no header row",
    )
    parser.add_argument(
        "--interactive",
        action="store_true",
        help="ask at every decomposition / primary-key decision",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="candidates shown per interactive decision (default: 10)",
    )
    parser.add_argument(
        "--ddl", metavar="FILE", help="write CREATE TABLE statements here"
    )
    parser.add_argument(
        "--dot",
        metavar="FILE",
        help="write a Graphviz DOT preview of the normalized schema",
    )
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        help="write one CSV per normalized relation into this directory",
    )
    parser.add_argument(
        "--tree",
        action="store_true",
        help="print the Figure-3-style foreign-key tree of the result",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a data profile (column stats, FDs, keys) and exit",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only check conformance with --target and report violations; "
        "do not normalize",
    )
    parser.add_argument(
        "--save-fds",
        metavar="FILE",
        help="save the discovered FD set as JSON (reusable via --load-fds)",
    )
    parser.add_argument(
        "--load-fds",
        metavar="FILE",
        help="skip discovery: load a previously saved FD set "
        "(single input file only)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="export the full normalization result (schema, log, stats) as JSON",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for discovery, closure, and decomposition "
        "fan-out (default: $REPRO_WORKERS or 1 = serial); results are "
        "byte-identical at any worker count",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("python", "numpy", "auto"),
        help="kernel backend for the partition/agree-set hot paths "
        "(default: $REPRO_KERNEL or auto = numpy when installed); "
        "results are byte-identical under either backend",
    )
    parser.add_argument(
        "--fdtree",
        default=None,
        choices=("level", "legacy", "auto"),
        help="FD-tree engine for the positive cover (default: "
        "$REPRO_FDTREE or auto = legacy trie for narrow relations, "
        "the level-indexed lattice engine otherwise; level = always "
        "the lattice engine; legacy = the recursive baseline); covers "
        "are identical under every engine",
    )
    parser.add_argument(
        "--storage",
        default=None,
        choices=("memory", "auto", "spill"),
        help="column-store residency policy (default: $REPRO_STORAGE or "
        "memory = encoded columns stay on the heap; auto = stream "
        "ingestion and spill to disk-backed mmap pages when the "
        "encoded footprint would breach --memory-limit; spill = "
        "always on disk); results are byte-identical under every "
        "policy",
    )
    governance = parser.add_argument_group("resource governance")
    governance.add_argument(
        "--deadline",
        metavar="DURATION",
        help="wall-clock budget for the whole run, e.g. 5s, 250ms, 2m",
    )
    governance.add_argument(
        "--memory-limit",
        metavar="SIZE",
        help="peak resident-memory ceiling, e.g. 512MB, 2gb",
    )
    governance.add_argument(
        "--max-candidates",
        type=int,
        metavar="N",
        help="cap on discovery candidate work units (lattice nodes, "
        "partition intersections)",
    )
    governance.add_argument(
        "--no-degrade",
        action="store_true",
        help="on a budget breach, fail (exit 3) instead of stepping down "
        "the degradation ladder",
    )
    governance.add_argument(
        "--sample-rows",
        type=int,
        default=512,
        metavar="N",
        help="row-sample size of the degradation ladder's sampled rung "
        "(default: 512)",
    )
    governance.add_argument(
        "--approx-error",
        type=float,
        default=0.0,
        metavar="EPS",
        help="g3 error tolerated when verifying sampled FDs against the "
        "full data (default: 0.0 = keep only exactly-holding FDs)",
    )
    governance.add_argument(
        "--approximate",
        action="store_true",
        help="opt into sampled discovery up front: run discovery on a "
        "--sample-rows sample, verify candidates against the full "
        "data with the g3 measure, and report per-FD error bounds "
        "(the degradation ladder's sampled rung as a first-class mode)",
    )
    governance.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="journal pipeline progress to this file after every "
        "discovery and decision (atomic writes)",
    )
    governance.add_argument(
        "--resume",
        metavar="FILE",
        help="resume a killed run from its checkpoint file (implies "
        "--checkpoint FILE unless given separately)",
    )
    governance.add_argument(
        "--csv-errors",
        default="strict",
        choices=("strict", "pad", "skip"),
        help="how to treat malformed CSV rows: strict = fail (default), "
        "pad = fill/truncate ragged rows, skip = drop them",
    )
    return parser


def _interactive_decider(top: int) -> CallbackDecider:
    def on_violating_fd(
        instance: RelationInstance, ranking: list[ViolatingFDScore]
    ) -> int | None:
        print(f"\nRelation {instance.name!r} violates the normal form.")
        print("Ranked decomposition candidates (LHS -> RHS):")
        for index, score in enumerate(ranking[:top]):
            lhs = ",".join(instance.relation.names_of(score.fd.lhs))
            rhs = ",".join(instance.relation.names_of(score.fd.rhs))
            print(f"  [{index}] ({score.total:.3f}) {lhs} -> {rhs}")
        if len(ranking) > top:
            print(f"  ... and {len(ranking) - top} more")
        answer = input("Pick index, or 's' to stop this relation [0]: ").strip()
        if answer.lower() == "s":
            return None
        return int(answer) if answer else 0

    def on_primary_key(
        instance: RelationInstance, ranking: list[KeyScore]
    ) -> int | None:
        print(f"\nPick a primary key for relation {instance.name!r}:")
        for index, score in enumerate(ranking[:top]):
            key = ",".join(instance.relation.names_of(score.key))
            print(f"  [{index}] ({score.total:.3f}) {{{key}}}")
        answer = input("Pick index, or 'n' for no key [0]: ").strip()
        if answer.lower() == "n":
            return None
        return int(answer) if answer else 0

    return CallbackDecider(
        on_violating_fd=on_violating_fd, on_primary_key=on_primary_key
    )


def main(argv: list[str] | None = None) -> int:
    """Console entry point with the structured error boundary.

    Deliberate failures map to stable exit codes instead of tracebacks:
    bad input → 2, propagated budget breach → 3, checkpoint defect → 4,
    unrecovered worker crash → 5.  SIGINT and SIGTERM tear the worker
    pool and shared memory down before exiting 130/143 (128 + signal),
    so an interrupted run never strands ``/dev/shm`` segments or
    orphaned workers.  Anything else escaping is a genuine bug and
    keeps its traceback.
    """
    if argv is None:
        argv = sys.argv[1:]

    def _on_sigterm(signum, frame):
        raise _Terminated()

    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        if argv and argv[0] == "verify":
            # The verification harness rides on the same console entry
            # point (`repro verify --seeds N`); the rest is normalization.
            from repro.verification.runner import main_verify

            return main_verify(argv[1:])
        if argv and argv[0] == "apply-batch":
            return _main_apply_batch(argv[1:], watch=False)
        if argv and argv[0] == "watch":
            return _main_apply_batch(argv[1:], watch=True)
        if argv and argv[0] == "serve":
            return _main_serve(argv[1:])
        if argv and argv[0] == "submit":
            return _main_submit(argv[1:])
        return _main_normalize(argv)
    except BudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_ERROR
    except WorkerCrashError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_WORKER_CRASH
    except InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    except KeyboardInterrupt:
        _graceful_shutdown()
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except _Terminated:
        _graceful_shutdown()
        print("terminated", file=sys.stderr)
        return EXIT_TERMINATED
    finally:
        if previous_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except ValueError:  # pragma: no cover - not the main thread
                pass


def _select_kernel(name: str | None) -> None:
    """Apply ``--kernel`` and resolve eagerly.

    Eager resolution surfaces "numpy requested but not installed" as an
    :class:`InputError` at the CLI boundary (exit 2) instead of deep
    inside discovery.
    """
    if name is not None:
        from repro import kernels

        kernels.set_backend(name)
        kernels.backend_name()


def _select_fdtree(name: str | None) -> None:
    """Apply ``--fdtree`` (validated eagerly, exit 2 on a bad name)."""
    if name is not None:
        from repro.structures import fdtree

        fdtree.set_engine(name)


def _select_storage(name: str | None) -> None:
    """Apply ``--storage`` (validated eagerly, exit 2 on a bad name)."""
    if name is not None:
        from repro.structures import storage

        storage.set_policy(name)


def _main_normalize(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    _select_kernel(args.kernel)
    _select_fdtree(args.fdtree)
    _select_storage(args.storage)

    budget = None
    if args.deadline or args.memory_limit or args.max_candidates:
        budget = Budget(
            deadline_seconds=(
                parse_duration(args.deadline) if args.deadline else None
            ),
            max_memory_bytes=(
                parse_memory(args.memory_limit) if args.memory_limit else None
            ),
            max_candidates=args.max_candidates,
        )

    # Ingestion runs before the governor exists, so hand --memory-limit
    # to the storage layer directly: under --storage auto it is the
    # spill threshold that keeps the encoded footprint off the heap.
    from repro.structures import storage as _storage

    with _storage.memory_budget(budget.max_memory_bytes if budget else None):
        instances = [
            read_csv(
                path,
                delimiter=args.delimiter,
                has_header=not args.no_header,
                on_error=args.csv_errors,
            )
            for path in args.files
        ]

    sampled = None
    if args.approximate:
        if args.load_fds:
            raise SystemExit(
                "--approximate cannot be combined with --load-fds"
            )
        from repro.discovery.sampled import SampledG3FD

        sampled = SampledG3FD(
            sample_rows=args.sample_rows,
            approx_error=args.approx_error,
            max_lhs_size=args.max_lhs_size,
        )

    if args.profile:
        from repro.profiling import profile

        for instance in instances:
            print(
                profile(
                    instance,
                    fd_algorithm=sampled if sampled is not None else args.algorithm,
                    workers=args.workers,
                ).to_str()
            )
            print()
        return 0

    if args.check:
        from repro.core.nf_check import check_normal_form

        all_conform = True
        for instance in instances:
            report = check_normal_form(
                instance, target=args.target, algorithm=args.algorithm
            )
            print(report.to_str(instance.columns))
            all_conform = all_conform and report.conforms
        return 0 if all_conform else 1

    algorithm: object = sampled if sampled is not None else args.algorithm
    if args.load_fds:
        from repro.discovery.precomputed import PrecomputedFDs
        from repro.io.serialization import load_fdset

        if len(instances) != 1:
            raise SystemExit("--load-fds supports exactly one input file")
        fds, columns = load_fdset(args.load_fds)
        if columns != instances[0].columns:
            raise SystemExit(
                "--load-fds: saved FD set was profiled on different columns"
            )
        algorithm = PrecomputedFDs({instances[0].name: fds})

    decider = _interactive_decider(args.top) if args.interactive else AutoDecider()
    if args.target == "4nf":
        from repro.extensions.fournf import FourNFNormalizer

        if len(instances) != 1:
            raise SystemExit("--target 4nf supports exactly one input file")
        four = FourNFNormalizer(
            algorithm=algorithm,
            decider=decider,
            closure_algorithm=args.closure,
            max_lhs_size=args.max_lhs_size,
        ).run(instances[0])
        print(four.to_str())
        return 0

    resume_state = None
    checkpoint_path = args.checkpoint
    if args.resume:
        from repro.runtime.checkpointing import load_state

        resume_state = load_state(args.resume)
        if checkpoint_path is None:
            checkpoint_path = args.resume

    normalizer = Normalizer(
        algorithm=algorithm,
        decider=decider,
        target=args.target,
        closure_algorithm=args.closure,
        max_lhs_size=args.max_lhs_size,
        budget=budget,
        degrade=not args.no_degrade,
        sample_rows=args.sample_rows,
        approx_error=args.approx_error,
        checkpoint_path=checkpoint_path,
        workers=args.workers,
    )
    result = normalizer.run(instances, resume_state=resume_state)

    if args.save_fds:
        from repro.io.serialization import save_fdset

        if len(instances) != 1:
            raise SystemExit("--save-fds supports exactly one input file")
        fds = result.discovered_fds[instances[0].name]
        save_fdset(fds, instances[0].columns, args.save_fds)
        print(f"FD set written to {args.save_fds}")

    print(result.to_str())
    if args.tree:
        from repro.evaluation.snowflake import schema_tree

        print()
        print("Foreign-key tree:")
        print(schema_tree(result.schema))
    print()
    for stat in result.stats:
        print(
            f"[{stat.relation}] {stat.num_fds} minimal FDs, "
            f"{stat.num_fd_keys} FD-derived keys | "
            f"discovery {stat.fd_discovery_seconds:.2f}s, "
            f"closure {stat.closure_seconds:.2f}s"
        )
    if sampled is not None and sampled.reports:
        print()
        print("approximate discovery (g3 error bounds):")
        for name, bounds in sampled.reports.items():
            print(f"  [{name}]")
            for bound in bounds:
                print(f"    {bound}")

    if args.ddl:
        Path(args.ddl).write_text(
            schema_to_ddl(result.schema, result.instances), encoding="utf-8"
        )
        print(f"DDL written to {args.ddl}")
    if args.dot:
        from repro.io.graphviz import schema_to_dot

        Path(args.dot).write_text(
            schema_to_dot(result.schema), encoding="utf-8"
        )
        print(f"DOT graph written to {args.dot}")
    if args.json:
        import json as _json

        from repro.io.serialization import result_to_json

        Path(args.json).write_text(
            _json.dumps(result_to_json(result), indent=2), encoding="utf-8"
        )
        print(f"Result JSON written to {args.json}")
    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, instance in result.instances.items():
            write_csv(instance, out_dir / f"{name}.csv")
        print(f"{len(result.instances)} relations written to {out_dir}/")
    return 0


def build_apply_batch_parser(watch: bool = False) -> argparse.ArgumentParser:
    """Parser of ``repro apply-batch`` / ``repro watch``."""
    prog = "repro watch" if watch else "repro apply-batch"
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Maintain a normalized schema under batched inserts/deletes "
            "(the incremental engine; see docs/INCREMENTAL.md)."
        ),
    )
    parser.add_argument(
        "files", nargs="+", help="input CSV files (the original relations)"
    )
    parser.add_argument(
        "--changes",
        metavar="FILE",
        required=True,
        help="change log: a repro/changelog JSON document or JSON-Lines "
        "(one batch object per line)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print a per-batch, per-relation violation and fidelity summary",
    )
    parser.add_argument(
        "--algorithm",
        default="hyfd",
        choices=("hyfd", "tane", "dfd", "bruteforce"),
        help="FD discovery algorithm for the initial run (default: hyfd)",
    )
    parser.add_argument(
        "--target",
        default="bcnf",
        choices=("bcnf", "3nf"),
        help="normal form to maintain (default: bcnf)",
    )
    parser.add_argument(
        "--closure",
        default="optimized",
        choices=("naive", "improved", "optimized"),
        help="closure algorithm (default: optimized)",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (default: ,)"
    )
    parser.add_argument(
        "--no-header",
        action="store_true",
        help="input files have no header row",
    )
    parser.add_argument(
        "--csv-errors",
        default="strict",
        choices=("strict", "pad", "skip"),
        help="how to treat malformed CSV rows (default: strict)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("python", "numpy", "auto"),
        help="kernel backend for the partition/agree-set hot paths "
        "(default: $REPRO_KERNEL or auto)",
    )
    parser.add_argument(
        "--fdtree",
        default=None,
        choices=("level", "legacy", "auto"),
        help="FD-tree engine for the positive cover "
        "(default: $REPRO_FDTREE or auto)",
    )
    parser.add_argument(
        "--storage",
        default=None,
        choices=("memory", "auto", "spill"),
        help="column-store residency policy "
        "(default: $REPRO_STORAGE or memory)",
    )
    parser.add_argument(
        "--ddl",
        metavar="FILE",
        help="write the final schema's CREATE TABLE statements here",
    )
    parser.add_argument(
        "--migration",
        metavar="FILE",
        help="write the per-batch migration plans (ordered DDL) here",
    )
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        help="write one CSV per final normalized relation into this directory",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        help="journal engine state here after every batch (atomic writes)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --journal if it exists: already-applied batches "
        "are replayed as raw edits, covers are restored, discovery is skipped",
    )
    governance = parser.add_argument_group("resource governance")
    governance.add_argument(
        "--deadline",
        metavar="DURATION",
        help="wall-clock budget per batch (and for the initial run), "
        "e.g. 5s, 250ms, 2m",
    )
    governance.add_argument(
        "--memory-limit",
        metavar="SIZE",
        help="peak resident-memory ceiling, e.g. 512MB, 2gb",
    )
    governance.add_argument(
        "--max-candidates",
        type=int,
        metavar="N",
        help="cap on candidate work units per governed phase",
    )
    if watch:
        parser.add_argument(
            "--interval",
            type=float,
            default=2.0,
            metavar="SECONDS",
            help="poll interval for new batches in the change log "
            "(default: 2.0)",
        )
        parser.add_argument(
            "--once",
            action="store_true",
            help="apply whatever the change log currently holds, then exit",
        )
        parser.add_argument(
            "--max-batches",
            type=int,
            default=None,
            metavar="N",
            help="exit after this many batches have been applied in total",
        )
    return parser


def _main_apply_batch(argv: list[str], watch: bool) -> int:
    import time as _time

    from repro.incremental import IncrementalNormalizer, resume_engine
    from repro.io.serialization import load_changelog

    args = build_apply_batch_parser(watch=watch).parse_args(argv)
    _select_kernel(args.kernel)
    _select_fdtree(args.fdtree)
    _select_storage(args.storage)

    budget = None
    if args.deadline or args.memory_limit or args.max_candidates:
        budget = Budget(
            deadline_seconds=(
                parse_duration(args.deadline) if args.deadline else None
            ),
            max_memory_bytes=(
                parse_memory(args.memory_limit) if args.memory_limit else None
            ),
            max_candidates=args.max_candidates,
        )

    from repro.structures import storage as _storage

    with _storage.memory_budget(budget.max_memory_bytes if budget else None):
        instances = [
            read_csv(
                path,
                delimiter=args.delimiter,
                has_header=not args.no_header,
                on_error=args.csv_errors,
            )
            for path in args.files
        ]

    if args.resume and not args.journal:
        raise InputError("--resume requires --journal FILE")

    engine_kwargs = dict(
        algorithm=args.algorithm,
        target=args.target,
        closure_algorithm=args.closure,
        budget=budget,
    )
    log = load_changelog(args.changes, coerce_str=True)
    if args.resume and Path(args.journal).exists():
        engine = resume_engine(
            instances, log.batches, args.journal, **engine_kwargs
        )
        print(
            f"resumed from {args.journal}: {engine.applied_batches} "
            "batch(es) already applied"
        )
    else:
        engine = IncrementalNormalizer(
            instances, journal_path=args.journal, **engine_kwargs
        )

    migration_log: list[str] = []

    def apply_pending() -> int:
        current = load_changelog(args.changes, coerce_str=True)
        applied = 0
        while engine.applied_batches < len(current):
            outcome = engine.apply_batch(current[engine.applied_batches])
            applied += 1
            if args.report:
                print(outcome.to_str())
            if outcome.schema_changed:
                migration_log.append(
                    f"-- batch {outcome.batch_index} "
                    f"({outcome.relation})\n" + outcome.migration.to_sql()
                )
        return applied

    if watch:
        # SIGINT/SIGTERM propagate to the main() boundary, which tears
        # down the pool and shared memory and exits 130/143.
        limit = args.max_batches
        while True:
            apply_pending()
            if args.once:
                break
            if limit is not None and engine.applied_batches >= limit:
                break
            _time.sleep(args.interval)
    else:
        apply_pending()

    result = engine.result
    assert result is not None
    print(
        f"applied {engine.applied_batches} batch(es); schema has "
        f"{len(result.instances)} relation(s)"
    )
    for name in engine.relation_names():
        cover = engine.fd_cover(name)
        print(
            f"[{name}] {cover.count_single_rhs()} minimal FDs, "
            f"{len(engine.key_cover(name))} minimal key(s), "
            f"{engine.live(name).num_rows} row(s)"
        )
    print(result.schema.to_str())

    if args.ddl:
        Path(args.ddl).write_text(engine.ddl(), encoding="utf-8")
        print(f"DDL written to {args.ddl}")
    if args.migration:
        text = (
            "\n".join(migration_log)
            if migration_log
            else "-- No schema changes.\n"
        )
        Path(args.migration).write_text(text, encoding="utf-8")
        print(f"Migration plans written to {args.migration}")
    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, instance in result.instances.items():
            write_csv(instance, out_dir / f"{name}.csv")
        print(f"{len(result.instances)} relations written to {out_dir}/")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser of ``repro serve`` (the normalization daemon)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the multi-tenant normalization daemon: upload datasets "
            "once, then stream change batches and read schema/DDL views "
            "without ever re-paying discovery (docs/SERVER.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8651,
        help="TCP port; 0 picks a free one (default %(default)s)",
    )
    parser.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="also/instead listen on a unix domain socket",
    )
    parser.add_argument(
        "--resume-dir",
        metavar="DIR",
        default=None,
        help="persist sessions here; a restarted daemon revives them "
        "from their incremental journals without rediscovery",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="LRU ceiling on in-memory sessions (default %(default)s); "
        "evicted sessions revive from --resume-dir on next touch",
    )
    parser.add_argument(
        "--idle-ttl",
        metavar="DUR",
        default="1h",
        help="drop sessions idle this long, e.g. 30s, 15m, 1h "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-body",
        metavar="SIZE",
        default="64MB",
        help="request-body ceiling, e.g. 8MB (default %(default)s)",
    )
    parser.add_argument(
        "--drain-timeout",
        metavar="DUR",
        default="10s",
        help="how long a SIGTERM drain waits for in-flight requests "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool size for discovery fan-out (default: "
        "$REPRO_WORKERS or 1 = serial)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("python", "numpy", "auto"),
        help="kernel backend for the partition/agree-set hot paths",
    )
    parser.add_argument(
        "--fdtree",
        default=None,
        choices=("level", "legacy", "auto"),
        help="FD-tree engine policy (auto = legacy trie for narrow "
        "relations, level-indexed bitset engine otherwise)",
    )
    parser.add_argument(
        "--storage",
        default=None,
        choices=("memory", "auto", "spill"),
        help="column-store residency policy for uploaded datasets "
        "(default: $REPRO_STORAGE or memory; spilled sessions keep "
        "their pages under the session's --resume-dir entry)",
    )
    return parser


def _main_serve(argv: list[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    _select_kernel(args.kernel)
    _select_fdtree(args.fdtree)
    _select_storage(args.storage)
    if args.workers is not None:
        import os

        if args.workers < 1:
            raise InputError("--workers must be >= 1")
        os.environ["REPRO_WORKERS"] = str(args.workers)

    from repro.server.app import ServerConfig, serve

    config = ServerConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        resume_dir=args.resume_dir,
        max_sessions=args.max_sessions,
        idle_ttl=parse_duration(args.idle_ttl),
        max_body_bytes=parse_memory(args.max_body),
        drain_timeout=parse_duration(args.drain_timeout),
    )
    return serve(config)


def build_submit_parser() -> argparse.ArgumentParser:
    """Parser of ``repro submit`` (client of a running daemon)."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Talk to a running `repro serve` daemon: upload a dataset, "
            "stream change batches, and fetch schema/DDL/migration views."
        ),
    )
    parser.add_argument(
        "file",
        nargs="?",
        metavar="FILE.csv",
        help="dataset to upload as a new session (omit to reuse one)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8651)
    parser.add_argument(
        "--unix-socket",
        metavar="PATH",
        default=None,
        help="connect over a unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--tenant", default="default", help="tenant id (default %(default)s)"
    )
    parser.add_argument(
        "--session",
        metavar="ID",
        default=None,
        help="session id to create or address (server generates one "
        "when omitted at upload)",
    )
    parser.add_argument(
        "--changes",
        metavar="FILE",
        default=None,
        help="JSON/JSONL changelog to stream as change batches",
    )
    parser.add_argument(
        "--ddl",
        metavar="FILE",
        default=None,
        help="fetch the session DDL into FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--migration",
        metavar="FILE",
        default=None,
        help="fetch the accumulated migration plans into FILE "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--schema",
        action="store_true",
        help="print the session's normalized schema",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print daemon statistics JSON"
    )
    parser.add_argument(
        "--delete",
        action="store_true",
        help="delete the session (after any other actions)",
    )
    for flag, kwargs in (
        ("--algorithm", {"choices": ("hyfd", "tane", "dfd", "bruteforce")}),
        ("--target", {"choices": ("bcnf", "3nf")}),
        ("--closure", {"choices": ("naive", "improved", "optimized")}),
        ("--deadline", {"metavar": "DUR"}),
        ("--memory-limit", {"metavar": "SIZE"}),
        ("--max-candidates", {"metavar": "N"}),
        ("--delimiter", {"metavar": "CHAR"}),
    ):
        parser.add_argument(flag, default=None, **kwargs)
    return parser


def _main_submit(argv: list[str]) -> int:
    args = build_submit_parser().parse_args(argv)

    from repro.server.client import ReproClient, ServerError

    client = ReproClient(
        host=args.host,
        port=args.port,
        tenant=args.tenant,
        socket_path=args.unix_socket,
    )
    session_id = args.session

    def _write(path: str, text: str, label: str) -> None:
        if path == "-":
            sys.stdout.write(text)
        else:
            Path(path).write_text(text, encoding="utf-8")
            print(f"{label} written to {path}")

    try:
        if args.file:
            options = {
                key: value
                for key, value in (
                    ("algorithm", args.algorithm),
                    ("target", args.target),
                    ("closure", args.closure),
                    ("deadline", args.deadline),
                    ("memory_limit", args.memory_limit),
                    ("max_candidates", args.max_candidates),
                    ("delimiter", args.delimiter),
                )
                if value is not None
            }
            info = client.create_session(
                Path(args.file).read_bytes(),
                name=Path(args.file).stem,
                session=session_id,
                **options,
            )
            session_id = info["session"]
            print(
                f"session {session_id} created: {info['rows']} row(s), "
                f"{info['relations']} relation(s)"
            )
        if args.changes:
            if session_id is None:
                raise InputError("--changes needs --session (or an upload)")
            from repro.io.serialization import load_changelog

            for batch in load_changelog(args.changes, coerce_str=True):
                outcome = client.apply_batch(session_id, batch.to_json())
                print(
                    f"batch {outcome['batch_index']} -> "
                    f"+{outcome['inserts_applied']} "
                    f"-{outcome['deletes_applied']} rows, "
                    f"schema_changed={outcome['schema_changed']}, "
                    f"fidelity={outcome['fidelity']}"
                )
        if args.schema:
            if session_id is None:
                raise InputError("--schema needs --session (or an upload)")
            sys.stdout.write(client.schema_text(session_id))
        if args.ddl:
            if session_id is None:
                raise InputError("--ddl needs --session (or an upload)")
            _write(args.ddl, client.ddl(session_id), "DDL")
        if args.migration:
            if session_id is None:
                raise InputError(
                    "--migration needs --session (or an upload)"
                )
            _write(
                args.migration, client.migration(session_id), "Migration plans"
            )
        if args.stats:
            import json as _json

            print(_json.dumps(client.stats(), indent=2, sort_keys=True))
        if args.delete:
            if session_id is None:
                raise InputError("--delete needs --session (or an upload)")
            client.delete_session(session_id)
            print(f"session {session_id} deleted")
    except ServerError as exc:
        # Mirror the offline exit-code taxonomy over the wire.
        print(f"error: {exc}", file=sys.stderr)
        if exc.status == 429:
            return EXIT_BUDGET_EXCEEDED
        if exc.status in (500,) and exc.code == "checkpoint_error":
            return EXIT_CHECKPOINT_ERROR
        if exc.status == 503 and exc.code == "worker_crash":
            return EXIT_WORKER_CRASH
        return EXIT_INPUT_ERROR
    except OSError as exc:
        print(f"error: cannot reach the daemon: {exc}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
