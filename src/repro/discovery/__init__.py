"""FD and UCC discovery algorithms.

The paper's pipeline starts by discovering *all minimal* functional
dependencies of the instance.  This package provides:

* :mod:`repro.discovery.bruteforce` — an FDep-style exact discoverer
  built on maximal agree sets and minimal hitting sets; slow but simple,
  it doubles as the test oracle for the faster algorithms,
* :mod:`repro.discovery.tane` — TANE [Huhtala et al. 1999], the classic
  levelwise algorithm the paper cites for step (1),
* :mod:`repro.discovery.dfd` — DFD [Abedjan et al. 2014], random-walk
  discovery, also cited as an alternative,
* :mod:`repro.discovery.hyfd` — HyFD [Papenbrock & Naumann 2016], the
  hybrid sampling/validation algorithm Normalize actually uses,
* :mod:`repro.discovery.ucc` — unique column combination discovery
  (levelwise and DUCC-style random walk) for the primary-key selection
  component.
"""

from repro.discovery.base import FDAlgorithm, discover_fds
from repro.discovery.bruteforce import BruteForceFD
from repro.discovery.dfd import DFD
from repro.discovery.hyfd import HyFD
from repro.discovery.hyucc import HyUCC
from repro.discovery.ind import (
    IND,
    discover_unary_inds,
    ind_holds,
    verify_foreign_keys,
)
from repro.discovery.precomputed import PrecomputedFDs
from repro.discovery.sampled import SampledG3FD
from repro.discovery.tane import Tane
from repro.discovery.ucc import DuccUCC, NaiveUCC, discover_uccs

__all__ = [
    "DFD",
    "IND",
    "BruteForceFD",
    "DuccUCC",
    "FDAlgorithm",
    "HyFD",
    "HyUCC",
    "NaiveUCC",
    "PrecomputedFDs",
    "SampledG3FD",
    "Tane",
    "discover_fds",
    "discover_uccs",
    "discover_unary_inds",
    "ind_holds",
    "verify_foreign_keys",
]
