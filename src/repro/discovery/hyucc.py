"""HyUCC — hybrid unique column combination discovery.

DUCC's authors later applied the HyFD recipe to UCC discovery
(Papenbrock & Naumann, "A Hybrid Approach for Efficient Unique Column
Combination Discovery", BTW 2017).  The same two ingredients carry
over directly:

* **sampling** — a record pair agreeing on attribute set ``A`` proves
  every ``X ⊆ A`` non-unique; the cluster-window sampler from
  :mod:`repro.discovery.hyfd.sampler` supplies exactly these agree
  sets,
* **induction + validation** — a positive cover of minimal-UCC
  candidates (an antichain kept in a :class:`SetTrie`) is specialized
  away from refuted candidates and validated level-wise with stripped
  partitions; each failed validation contributes its violating pair's
  agree set back as evidence.

The result equals DUCC's / the naive enumerator's (property-tested),
usually at far fewer partition intersections on duplicate-heavy data.
"""

from __future__ import annotations

from repro.discovery.hyfd.sampler import Sampler
from repro.model.attributes import full_mask, iter_bits
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import checkpoint, suspended
from repro.structures.partitions import PLICache
from repro.structures.settrie import SetTrie

__all__ = ["HyUCC"]


class HyUCC:
    """Hybrid minimal-UCC discovery (sampling + validation)."""

    name = "hyucc"

    def __init__(
        self,
        null_equals_null: bool = True,
        switch_threshold: float = 0.2,
        sample_rounds_per_switch: int = 4,
        max_cached_partitions: int | None = None,
    ) -> None:
        if not 0.0 <= switch_threshold <= 1.0:
            raise ValueError("switch_threshold must be within [0, 1]")
        self.null_equals_null = null_equals_null
        self.switch_threshold = switch_threshold
        self.sample_rounds_per_switch = sample_rounds_per_switch
        self.max_cached_partitions = max_cached_partitions
        self.last_cache_stats = None

    def discover(self, instance: RelationInstance) -> list[int]:
        """Return all minimal unique column combinations as bitmasks."""
        arity = instance.arity
        if arity == 0:
            return []
        cache = PLICache(
            instance,
            self.null_equals_null,
            max_partitions=self.max_cached_partitions,
        )
        self.last_cache_stats = cache.stats
        if cache.get(0).is_unique:  # ≤ 1 row
            return [0]

        candidates = SetTrie()
        try:
            sampler = Sampler(instance, cache)
            sampler.initial_rounds()

            candidates.insert(0)
            for agree in sorted(
                sampler.negative_cover, key=lambda mask: -mask.bit_count()
            ):
                self._apply_agree_set(candidates, agree, arity)

            self._validate(candidates, cache, sampler, arity)
        except BudgetExceeded as exc:
            # The candidate antichain at breach time: a superset guess
            # of the minimal UCCs, not yet fully validated.
            with suspended():
                partial = sorted(candidates.iter_all())
            raise exc.attach_partial(partial, exact=False)
        return sorted(candidates.iter_all())

    # ------------------------------------------------------------------
    # Induction: refute candidates contained in an agree set
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_agree_set(candidates: SetTrie, agree: int, arity: int) -> None:
        """Remove candidates ``X ⊆ agree`` and insert their minimal
        specializations ``X ∪ {b}`` with ``b ∉ agree``."""
        refuted = list(candidates.iter_subsets_of(agree))
        for mask in refuted:
            candidates.remove(mask)
        extension_bits = full_mask(arity) & ~agree
        for mask in refuted:
            for bit_index in iter_bits(extension_bits):
                specialized = mask | (1 << bit_index)
                if not candidates.contains_subset_of(specialized):
                    candidates.insert(specialized)

    # ------------------------------------------------------------------
    # Validation: level-wise PLI checks with hybrid switching
    # ------------------------------------------------------------------
    def _validate(
        self,
        candidates: SetTrie,
        cache: PLICache,
        sampler: Sampler,
        arity: int,
    ) -> None:
        level = 0
        while level <= arity:
            current = [
                mask
                for mask in candidates.iter_all()
                if mask.bit_count() == level
            ]
            if not current:
                level += 1
                continue
            invalid = 0
            for mask in current:
                checkpoint("hyucc-validate")
                if mask not in candidates:
                    continue  # refuted by a sibling's specialization
                partition = cache.get(mask)
                if partition.is_unique:
                    continue
                invalid += 1
                pair_cluster = partition.cluster(0)
                agree = self._agree_set(cache, pair_cluster[0], pair_cluster[1])
                self._apply_agree_set(candidates, agree, arity)
                sampler.negative_cover.add(agree)
            if (
                invalid
                and not sampler.exhausted
                and invalid / len(current) > self.switch_threshold
            ):
                fresh: list[int] = []
                for _ in range(self.sample_rounds_per_switch):
                    fresh.extend(sampler.next_round())
                    if sampler.exhausted:
                        break
                for agree in sorted(set(fresh), key=lambda m: -m.bit_count()):
                    self._apply_agree_set(candidates, agree, arity)
                continue  # re-collect the same level
            level += 1

    @staticmethod
    def _agree_set(cache: PLICache, left: int, right: int) -> int:
        return cache.agree_set(left, right)
