"""Common interface for FD discovery algorithms.

Every discoverer consumes a :class:`~repro.model.instance.RelationInstance`
and produces the complete set of minimal, non-trivial functional
dependencies as an aggregated :class:`~repro.model.fd.FDSet` — the
contract the rest of the pipeline (optimized closure, Lemma 1) depends
on.  Discoverers share two knobs:

* ``null_equals_null`` — the NULL comparison semantics (Metanome's and
  the paper's default is that two NULLs agree),
* ``max_lhs_size`` — the paper's memory-bound pruning (§4.3): discard
  all FDs with a larger LHS.  The remaining FD set is still closed
  correctly by Algorithm 3 for all surviving FDs.
"""

from __future__ import annotations

import abc

from repro.model.fd import FDSet
from repro.model.instance import RelationInstance

__all__ = ["FDAlgorithm", "discover_fds"]


class FDAlgorithm(abc.ABC):
    """Base class for complete minimal-FD discovery algorithms."""

    name: str = "fd-algorithm"

    def __init__(
        self, null_equals_null: bool = True, max_lhs_size: int | None = None
    ) -> None:
        if max_lhs_size is not None and max_lhs_size < 0:
            raise ValueError("max_lhs_size must be non-negative")
        self.null_equals_null = null_equals_null
        self.max_lhs_size = max_lhs_size

    @abc.abstractmethod
    def discover(self, instance: RelationInstance) -> FDSet:
        """Return all minimal non-trivial FDs of ``instance``.

        With ``max_lhs_size`` set, FDs with wider LHSs are omitted; the
        result is then complete *up to that LHS size*.
        """

    def _within_lhs_bound(self, lhs: int) -> bool:
        return self.max_lhs_size is None or lhs.bit_count() <= self.max_lhs_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(null_equals_null={self.null_equals_null}, "
            f"max_lhs_size={self.max_lhs_size})"
        )


def resolve_fd_algorithm(algorithm: str, **kwargs) -> FDAlgorithm:
    """Instantiate an FD discoverer by name.

    Names: ``"hyfd"``, ``"tane"``, ``"dfd"``, ``"bruteforce"``.
    """
    # Imported lazily to avoid a circular import at package load time.
    from repro.discovery.bruteforce import BruteForceFD
    from repro.discovery.dfd import DFD
    from repro.discovery.hyfd import HyFD
    from repro.discovery.tane import Tane

    registry: dict[str, type[FDAlgorithm]] = {
        "hyfd": HyFD,
        "tane": Tane,
        "dfd": DFD,
        "bruteforce": BruteForceFD,
    }
    key = algorithm.lower()
    if key not in registry:
        raise ValueError(f"unknown FD algorithm {algorithm!r}; choose from {sorted(registry)}")
    return registry[key](**kwargs)


def discover_fds(
    instance: RelationInstance, algorithm: FDAlgorithm | str = "hyfd", **kwargs
) -> FDSet:
    """Convenience front door: discover FDs with a named algorithm.

    ``algorithm`` may be an :class:`FDAlgorithm` instance or one of
    ``"hyfd"``, ``"tane"``, ``"dfd"``, ``"bruteforce"``.
    """
    if isinstance(algorithm, FDAlgorithm):
        return algorithm.discover(instance)
    return resolve_fd_algorithm(algorithm, **kwargs).discover(instance)
