"""Minimal hitting set enumeration over attribute bitmasks.

Minimal FDs are exactly the minimal hitting sets of the *difference
sets* of the violating record pairs (the FDep view of discovery), and
both DFD and DUCC use minimal hitting sets of the complements of
maximal non-dependencies to prove their result complete.  This module
provides one shared enumerator for all of them.

The enumerator branches on the first not-yet-hit difference set and
maintains the MMCS-style *criticality* invariant: every chosen
attribute must be the sole hitter of at least one difference set.
Adding attributes can only destroy criticality, never restore it, so
pruning a branch the moment an attribute loses all critical sets is
safe, and every surviving leaf is a minimal hitting set by definition.
The problem is exponential in the worst case, but the attribute counts
in this library (tens, not thousands) keep it comfortably fast.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.model.attributes import iter_bits
from repro.runtime.governor import checkpoint

__all__ = ["minimal_hitting_sets"]


def minimal_hitting_sets(difference_sets: Iterable[int], universe: int) -> list[int]:
    """Enumerate all minimal subsets of ``universe`` hitting every input set.

    A *hitting set* ``H`` satisfies ``H & D != 0`` for every difference
    set ``D``.  Difference sets are intersected with ``universe`` first;
    if any becomes empty, no hitting set exists and ``[]`` is returned.
    The empty collection of difference sets is hit by the empty set
    (result ``[0]``).
    """
    sets = _minimize_inputs(difference_sets, universe)
    if sets is None:
        return []
    if not sets:
        return [0]
    found: set[int] = set()
    _extend(0, sets, found)
    return sorted(found)


def _minimize_inputs(
    difference_sets: Iterable[int], universe: int
) -> list[int] | None:
    """Restrict to the universe and drop supersets of other difference sets.

    Returns ``None`` when some difference set cannot be hit at all.
    Hitting all inclusion-minimal difference sets hits every set, so
    supersets are redundant.
    """
    restricted = []
    for mask in difference_sets:
        mask &= universe
        if mask == 0:
            return None
        restricted.append(mask)
    restricted = sorted(set(restricted), key=lambda mask: mask.bit_count())
    kept: list[int] = []
    for mask in restricted:
        if not any(other & ~mask == 0 for other in kept):
            kept.append(mask)
    return kept


def _extend(current: int, sets: Sequence[int], found: set[int]) -> None:
    checkpoint("hitting-sets")
    unhit = next((mask for mask in sets if not mask & current), None)
    if unhit is None:
        found.add(current)
        return
    for bit_index in iter_bits(unhit):
        candidate = current | (1 << bit_index)
        if candidate in found:
            continue
        if _all_critical(candidate, sets):
            _extend(candidate, sets, found)


def _all_critical(candidate: int, sets: Sequence[int]) -> bool:
    """True iff every bit of ``candidate`` is the sole hitter of some set."""
    pending = candidate
    for mask in sets:
        hit = mask & candidate
        if hit and not (hit & (hit - 1)):  # exactly one bit set
            pending &= ~hit
            if not pending:
                return True
    return not pending
