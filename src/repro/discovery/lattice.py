"""Shared lattice search for minimal satisfying attribute sets.

DFD (functional dependencies per RHS attribute) and DUCC (unique column
combinations) both solve the same abstract problem: given an *upward
monotone* predicate over subsets of a universe (supersets of a
satisfying set satisfy it too), find all inclusion-minimal satisfying
sets.  Both papers use the same machinery: classify nodes as
(non-)dependencies during random walks, record minimal dependencies and
maximal non-dependencies, and use the *minimal hitting sets of the
complements of the maximal non-dependencies* to find unexplored holes
and to prove completeness.

This module implements that machinery once:

* an optional random-walk priming phase (the DFD/DUCC flavour) that
  cheaply seeds the minimal/maximal sets,
* the hitting-set-driven completion loop, which is guaranteed to
  terminate with exactly the minimal satisfying sets.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.discovery.hitting_sets import minimal_hitting_sets
from repro.model.attributes import iter_bits
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import add_candidates, checkpoint
from repro.structures.lattice_index import LevelIndex

__all__ = ["find_minimal_satisfying"]


class _Classifier:
    """Memoized predicate with minimal/maximal boundary pruning.

    The boundary sets are :class:`LevelIndex` stores (the level-indexed
    lattice layout), so the per-evaluation subset/superset screens are
    flat mask sweeps bounded by the query's popcount.
    """

    __slots__ = ("predicate", "universe", "min_sat", "max_unsat", "cache", "evaluations")

    def __init__(self, predicate: Callable[[int], bool], universe: int) -> None:
        self.predicate = predicate
        self.universe = universe
        self.min_sat = LevelIndex()
        self.max_unsat = LevelIndex()
        self.cache: dict[int, bool] = {}
        self.evaluations = 0

    def satisfies(self, mask: int) -> bool:
        if self.min_sat.contains_subset_of(mask):
            return True
        if self.max_unsat.contains_superset_of(mask):
            return False
        cached = self.cache.get(mask)
        if cached is None:
            add_candidates(1, "lattice-eval")
            cached = self.predicate(mask)
            self.evaluations += 1
            self.cache[mask] = cached
        return cached

    def minimize(self, mask: int) -> int:
        """Walk down to an inclusion-minimal satisfying subset."""
        changed = True
        while changed:
            changed = False
            for attr in iter_bits(mask):
                smaller = mask & ~(1 << attr)
                if self.satisfies(smaller):
                    mask = smaller
                    changed = True
                    break
        return mask

    def maximize(self, mask: int) -> int:
        """Walk up to an inclusion-maximal non-satisfying superset."""
        changed = True
        while changed:
            changed = False
            for attr in iter_bits(self.universe & ~mask):
                bigger = mask | (1 << attr)
                if not self.satisfies(bigger):
                    mask = bigger
                    changed = True
                    break
        return mask


def find_minimal_satisfying(
    predicate: Callable[[int], bool],
    universe: int,
    seed: int | None = None,
    random_walks: int = 0,
) -> list[int]:
    """Return all minimal subsets of ``universe`` satisfying ``predicate``.

    ``predicate`` must be upward monotone.  ``random_walks`` > 0 enables
    the DFD/DUCC-style priming walks (seeded for determinism); the
    completion loop afterwards makes the result exact regardless.
    """
    classifier = _Classifier(predicate, universe)

    try:
        # Trivial boundaries first.
        if classifier.satisfies(0):
            return [0]
        if not classifier.satisfies(universe):
            return []

        if random_walks > 0:
            _prime_with_random_walks(classifier, seed, random_walks)

        return _complete_with_hitting_sets(classifier)
    except BudgetExceeded as exc:
        # Minimal satisfying sets found so far are exact facts; callers
        # (DFD, DUCC, AFD discovery) fold them into their own partials.
        raise exc.attach_partial(
            sorted(classifier.min_sat.iter_all()), exact=True
        )


def _prime_with_random_walks(
    classifier: _Classifier, seed: int | None, walks: int
) -> None:
    """DFD-style priming: random walks that pin down boundary elements."""
    rng = random.Random(seed)
    attributes = list(iter_bits(classifier.universe))
    for _ in range(walks):
        start = 1 << rng.choice(attributes)
        if classifier.satisfies(start):
            classifier.min_sat.insert(classifier.minimize(start))
        else:
            # Walk upward randomly until satisfied, then settle both ends.
            current = start
            while not classifier.satisfies(current):
                missing = list(iter_bits(classifier.universe & ~current))
                if not missing:
                    break
                current |= 1 << rng.choice(missing)
            if classifier.satisfies(current):
                classifier.min_sat.insert(classifier.minimize(current))
            down = classifier.maximize(start)
            classifier.max_unsat.insert(down)


def _complete_with_hitting_sets(classifier: _Classifier) -> list[int]:
    """The duality loop: candidates are minimal hitting sets of the
    complements of known maximal non-satisfying sets.

    Each round either confirms a candidate as a (new) minimal satisfying
    set or discovers a new maximal non-satisfying set; both sets are
    finite, so the loop terminates — and at a fixpoint, duality makes
    the result provably complete.
    """
    universe = classifier.universe
    while True:
        checkpoint("lattice-round")
        complements = [
            universe & ~non_sat for non_sat in classifier.max_unsat.iter_all()
        ]
        candidates = minimal_hitting_sets(complements, universe)
        new_unsat: list[int] = []
        progressed = False
        # One batched membership screen for the whole round: candidates
        # are pairwise distinct (minimal_hitting_sets dedups), so the
        # mid-round min_sat inserts below can never be hits for later
        # candidates and the pre-round screen is exact.
        known = classifier.min_sat.contains_batch(candidates)
        for candidate, already_minimal in zip(candidates, known):
            if already_minimal:
                continue
            progressed = True
            if classifier.satisfies(candidate):
                # A satisfying minimal hitting set is a minimal
                # satisfying set (its minimization also hits every
                # complement, so minimality of the hitting set pins it).
                classifier.min_sat.insert(candidate)
            else:
                new_unsat.append(classifier.maximize(candidate))
        for mask in new_unsat:
            classifier.max_unsat.insert(mask)
        if not progressed:
            return sorted(classifier.min_sat.iter_all())
