"""TANE — levelwise FD discovery with partition refinement.

An implementation of Huhtala et al. (1999), the algorithm the paper
cites for step (1) of the pipeline.  The lattice of attribute sets is
traversed level by level; every node carries a stripped partition and a
candidate-RHS set ``C+``:

* ``X\\{A} → A`` is valid iff ``e(X\\{A}) == e(X)`` (partition errors),
* ``C+`` pruning removes RHS candidates that can no longer yield
  minimal FDs,
* key pruning deletes (super)key nodes.  The TANE paper recovers the
  FDs ``X → A`` of a pruned key ``X`` through a condition over the
  ``C+`` sets of sibling nodes; those siblings may themselves never
  have been generated, so we instead apply the *direct* minimality
  test the sibling condition approximates: ``X → A`` (trivially valid
  for a key) is emitted iff ``X\\{B} → A`` is invalid for every
  ``B ∈ X`` — exact by monotonicity of FD validity in the LHS.

Partitions are kept for single attributes plus the previous and current
level (the direct key test needs the previous level), so memory stays
proportional to the widest lattice levels actually visited.

With ``workers > 1`` the per-level partition products (the dominant
cost) shard over the process pool: each worker receives its chunk's
prefix partitions as CSR bytes plus the shared-memory column codes, and
``intersect_ids`` is deterministic in those inputs, so the merged level
is byte-identical to the serial one.  The key-pruning minimality test
stays serial — it is incremental in the shared ``errors`` memo and
rarely hot.
"""

from __future__ import annotations

import itertools

from repro.discovery.base import FDAlgorithm
from repro.model.attributes import bits_of, full_mask, iter_bits
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import add_candidates, checkpoint
from repro.structures.lattice_index import LevelIndex
from repro.structures.partitions import StrippedPartition

__all__ = ["Tane"]


class Tane(FDAlgorithm):
    """Complete minimal-FD discovery via the TANE levelwise algorithm."""

    name = "tane"

    def __init__(
        self,
        null_equals_null: bool = True,
        max_lhs_size: int | None = None,
        workers: int | None = None,
    ) -> None:
        super().__init__(null_equals_null, max_lhs_size)
        self.workers = workers
        self.last_pool_stats = None

    def discover(self, instance: RelationInstance) -> FDSet:
        result = FDSet(instance.arity)
        try:
            self._discover(instance, result)
        except BudgetExceeded as exc:
            # Completed levels hold exact, minimal FDs — salvage them.
            raise exc.attach_partial(result, exact=True)
        return result

    def _discover(self, instance: RelationInstance, result: FDSet) -> None:
        from repro.parallel import RelationRun, resolve_workers
        from repro.runtime.governor import suspended

        arity = instance.arity
        if arity == 0:
            return
        self.last_pool_stats = None
        workers = resolve_workers(self.workers)
        parallel = None
        if workers > 1:
            parallel = RelationRun(
                workers, instance.encoded(self.null_equals_null)
            )
        try:
            self._discover_levels(instance, result, parallel)
        finally:
            if parallel is not None:
                with suspended():
                    parallel.close()
                self.last_pool_stats = parallel.stats

    def _discover_levels(
        self, instance: RelationInstance, result: FDSet, parallel
    ) -> None:
        arity = instance.arity
        everything = full_mask(arity)

        # Level 0 seed: the empty set's partition and error.
        empty_partition = StrippedPartition.single_cluster(instance.num_rows)
        partitions: dict[int, StrippedPartition] = {0: empty_partition}
        errors: dict[int, int] = {0: empty_partition.error}
        cplus: dict[int, int] = {0: everything}

        encoding = instance.encoded(self.null_equals_null)
        level: list[int] = []
        for attr in range(arity):
            mask = 1 << attr
            partitions[mask] = StrippedPartition.from_value_ids(
                encoding.codes[attr], encoding.null_codes[attr]
            )
            errors[mask] = partitions[mask].error
            level.append(mask)

        depth = 1
        while level:
            if self.max_lhs_size is not None and depth - 1 > self.max_lhs_size:
                break
            checkpoint("tane-level", units=len(level))
            self._compute_dependencies(level, cplus, errors, everything, result)
            survivors = self._prune(
                level, cplus, partitions, errors, everything, result,
                encoding.codes,
            )
            level, partitions = self._generate_next_level(
                survivors, partitions, errors, arity, encoding.codes, parallel
            )
            depth += 1

    # ------------------------------------------------------------------
    # COMPUTE_DEPENDENCIES (TANE §4.2)
    # ------------------------------------------------------------------
    def _compute_dependencies(
        self,
        level: list[int],
        cplus: dict[int, int],
        errors: dict[int, int],
        everything: int,
        result: FDSet,
    ) -> None:
        for x_mask in level:
            candidates = everything
            for attr in iter_bits(x_mask):
                candidates &= cplus.get(x_mask & ~(1 << attr), 0)
            for attr in iter_bits(x_mask & candidates):
                attr_bit = 1 << attr
                lhs = x_mask & ~attr_bit
                if errors[lhs] == errors[x_mask]:
                    result.add_masks(lhs, attr_bit)
                    candidates &= ~attr_bit
                    candidates &= ~(everything & ~x_mask)
            cplus[x_mask] = candidates

    # ------------------------------------------------------------------
    # PRUNE (TANE §4.3): empty-C+ pruning and key pruning
    # ------------------------------------------------------------------
    def _prune(
        self,
        level: list[int],
        cplus: dict[int, int],
        partitions: dict[int, StrippedPartition],
        errors: dict[int, int],
        everything: int,
        result: FDSet,
        codes: list,
    ) -> list[int]:
        survivors = []
        for x_mask in level:
            candidates = cplus[x_mask]
            if candidates == 0:
                continue
            if partitions[x_mask].is_unique:
                if self._within_lhs_bound(x_mask):
                    for attr in iter_bits(candidates & ~x_mask):
                        if self._key_fd_is_minimal(
                            x_mask, attr, partitions, errors, codes
                        ):
                            result.add_masks(x_mask, 1 << attr)
                continue
            survivors.append(x_mask)
        return survivors

    @staticmethod
    def _key_fd_is_minimal(
        x_mask: int,
        attr: int,
        partitions: dict[int, StrippedPartition],
        errors: dict[int, int],
        codes: list,
    ) -> bool:
        """Direct minimality test for a key's FD ``X → attr``.

        ``X → attr`` holds trivially (X is a key); it is minimal iff no
        immediate generalization ``X\\{B} → attr`` holds.  The previous
        level's partitions are retained exactly for this test.
        """
        attr_bit = 1 << attr
        for b in iter_bits(x_mask):
            sub = x_mask & ~(1 << b)
            joined = sub | attr_bit
            joined_error = errors.get(joined)
            if joined_error is None:
                add_candidates(1, "tane-key")
                joined_error = partitions[sub].intersect_ids(
                    codes[attr]
                ).error
                errors[joined] = joined_error
            if errors[sub] == joined_error:
                return False
        return True

    # ------------------------------------------------------------------
    # GENERATE_NEXT_LEVEL (prefix join with all-subsets check)
    # ------------------------------------------------------------------
    @staticmethod
    def _generate_next_level(
        survivors: list[int],
        partitions: dict[int, StrippedPartition],
        errors: dict[int, int],
        arity: int,
        codes: list,
        parallel=None,
    ) -> tuple[list[int], dict[int, StrippedPartition]]:
        survivor_index = LevelIndex(survivors)
        # Group by prefix (all attributes except the largest one).
        prefix_blocks: dict[int, list[int]] = {}
        for mask in survivors:
            top = 1 << (mask.bit_length() - 1)
            prefix_blocks.setdefault(mask & ~top, []).append(mask)

        # Enumerate the level's candidates in serial order first so the
        # parallel path shards (and merges) exactly this sequence.
        cands: list[tuple[int, int, int]] = []
        for block in prefix_blocks.values():
            block.sort()
            for first, second in itertools.combinations(block, 2):
                # first and second share the prefix, so the join only adds
                # second's top attribute: π(first) · π({top}) = π(candidate),
                # computed against the value-id vector (no probe fill/reset).
                candidate = first | second
                if _all_subsets_present(candidate, survivor_index):
                    cands.append((first, second, candidate))

        next_level: list[int] = []
        next_partitions: dict[int, StrippedPartition] = {}
        num_rows = len(codes[0]) if codes else 0
        if (
            parallel is not None
            and cands
            and parallel.should(len(cands) * num_rows)
        ):
            Tane._generate_parallel(
                cands, partitions, errors, next_level, next_partitions, parallel
            )
        else:
            for first, second, candidate in cands:
                add_candidates(1, "tane-generate")
                partition = partitions[first].intersect_ids(
                    codes[second.bit_length() - 1]
                )
                next_partitions[candidate] = partition
                errors[candidate] = partition.error
                next_level.append(candidate)
        # Retain singles and the just-finished level: the key-pruning
        # minimality test of the next level reaches one level down.
        for attr in range(arity):
            next_partitions.setdefault(1 << attr, partitions[1 << attr])
        for mask in survivors:
            next_partitions.setdefault(mask, partitions[mask])
        return next_level, next_partitions

    @staticmethod
    def _generate_parallel(
        cands: list[tuple[int, int, int]],
        partitions: dict[int, StrippedPartition],
        errors: dict[int, int],
        next_level: list[int],
        next_partitions: dict[int, StrippedPartition],
        parallel,
    ) -> None:
        """Shard the level's partition products over the pool.

        Each chunk ships the prefix partitions it needs as CSR bytes;
        the single-attribute side comes from the shared-memory codes.
        Workers account the candidates (folded back at the merge), so
        the parent must not double-count them here.
        """
        from array import array

        handle = parallel.handle
        payloads = []
        for start, stop in parallel.ranges(len(cands)):
            chunk = cands[start:stop]
            firsts = {}
            items = []
            for first, second, _ in chunk:
                if first not in firsts:
                    partition = partitions[first]
                    firsts[first] = (
                        partition.row_data.tobytes(),
                        partition.offsets.tobytes(),
                    )
                items.append((first, second.bit_length() - 1))
            payloads.append({"handle": handle, "firsts": firsts, "items": items})
        shards = parallel.map(
            "tane_generate", payloads, stage="tane-generate", items=len(cands)
        )
        num_rows = handle.num_rows
        index = 0
        for shard in shards:
            for rows_bytes, offsets_bytes, error in shard:
                candidate = cands[index][2]
                index += 1
                rows, offsets = array("i"), array("i")
                rows.frombytes(rows_bytes)
                offsets.frombytes(offsets_bytes)
                partition = StrippedPartition._from_csr(rows, offsets, num_rows)
                next_partitions[candidate] = partition
                errors[candidate] = error
                next_level.append(candidate)


def _all_subsets_present(candidate: int, survivors: LevelIndex) -> bool:
    """TANE's candidate-generation guard: every direct subset survived.

    Routed through the level index's batched membership check (all the
    subsets sit on one level, so the short-circuiting ``contains_all``
    is one level-dict sweep).
    """
    return survivors.contains_all(
        candidate & ~(1 << attr) for attr in bits_of(candidate)
    )
