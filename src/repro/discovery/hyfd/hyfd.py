"""HyFD orchestrator: sampling → induction → validation.

See the package docstring for the phase overview: a warm-up sampling
pass seeds the negative cover, induction builds the positive cover, and
validation interleaves with further guided sampling until the tree is
exact.  With ``workers > 1`` the sampling and validation hot loops
shard over the process pool (:mod:`repro.parallel`) against a
shared-memory export of the encoded relation; the shard/merge protocol
keeps the discovered cover byte-identical to a serial run (see
``docs/PARALLEL.md``).
"""

from __future__ import annotations

from repro.discovery.base import FDAlgorithm
from repro.discovery.hyfd.induction import build_positive_cover
from repro.discovery.hyfd.sampler import Sampler
from repro.discovery.hyfd.validation import validate_tree
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import suspended
from repro.structures.partitions import PLICache

__all__ = ["HyFD"]


class HyFD(FDAlgorithm):
    """Hybrid FD discovery — the paper's step-(1) algorithm.

    ``max_lhs_size`` enables the §4.3 pruning: all FDs with a LHS of at
    most that size are still discovered exactly, larger ones are
    discarded during induction (the paper notes Normalize gets this
    "for free" from HyFD).
    """

    name = "hyfd"

    def __init__(
        self,
        null_equals_null: bool = True,
        max_lhs_size: int | None = None,
        switch_threshold: float = 0.2,
        sample_rounds_per_switch: int = 4,
        max_cached_partitions: int | None = None,
        workers: int | None = None,
    ) -> None:
        super().__init__(null_equals_null, max_lhs_size)
        if not 0.0 <= switch_threshold <= 1.0:
            raise ValueError("switch_threshold must be within [0, 1]")
        self.switch_threshold = switch_threshold
        self.sample_rounds_per_switch = sample_rounds_per_switch
        self.max_cached_partitions = max_cached_partitions
        self.workers = workers
        self.last_cache_stats = None
        self.last_pool_stats = None

    def discover(self, instance: RelationInstance) -> FDSet:
        from repro.parallel import RelationRun, resolve_workers

        arity = instance.arity
        result = FDSet(arity)
        if arity == 0:
            return result
        cache = PLICache(
            instance,
            self.null_equals_null,
            max_partitions=self.max_cached_partitions,
        )
        self.last_cache_stats = cache.stats
        self.last_pool_stats = None
        workers = resolve_workers(self.workers)
        parallel = (
            RelationRun(workers, cache.encoding) if workers > 1 else None
        )
        tree = None
        try:
            sampler = Sampler(instance, cache, parallel=parallel)
            sampler.initial_rounds()
            tree = build_positive_cover(
                arity, sampler.negative_cover, self.max_lhs_size
            )
            validate_tree(
                tree,
                cache,
                sampler=sampler,
                max_lhs_size=self.max_lhs_size,
                switch_threshold=self.switch_threshold,
                sample_rounds_per_switch=self.sample_rounds_per_switch,
                parallel=parallel,
            )
        except BudgetExceeded as exc:
            # Salvage the positive cover as it stands.  Candidates on
            # levels validation never reached may be refuted by data it
            # never saw, so the partial is explicitly *not* exact.
            with suspended():
                partial = FDSet(arity)
                if tree is not None:
                    for lhs, rhs_mask in tree.iter_all():
                        partial.add_masks(lhs, rhs_mask)
            raise exc.attach_partial(partial, exact=False)
        finally:
            if parallel is not None:
                with suspended():
                    parallel.close()
                self.last_pool_stats = parallel.stats
        for lhs, rhs_mask in tree.iter_all():
            result.add_masks(lhs, rhs_mask)
        return result
