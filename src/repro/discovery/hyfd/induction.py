"""HyFD induction phase: negative cover → positive cover.

The positive cover is an :class:`~repro.structures.fdtree.FDTree` that
always satisfies two invariants:

* **antichain** — no stored FD has a stored generalization, and
* **covering** — every minimal FD that is valid on the data has a
  stored generalization.

It starts as ``∅ → R`` (everything depends on nothing) and is refined
by *agree sets*: a record pair agreeing exactly on ``V`` violates every
stored ``X → a`` with ``X ⊆ V`` and ``a ∉ V``.  Each violated FD is
removed and replaced by its direct specializations ``X ∪ {b} → a`` for
every ``b`` outside ``V ∪ {a}`` — adding any attribute inside ``V``
would leave the FD violated by the same pair.  Checking for an existing
generalization before inserting keeps the antichain invariant; choosing
``b ∉ V`` keeps the covering invariant (any valid ``Y ⊇ X`` must leave
``V`` through some such ``b``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.model.attributes import full_mask, iter_bits
from repro.runtime.governor import checkpoint
from repro.structures.fdtree import FDTree

__all__ = [
    "apply_agree_set",
    "apply_agree_sets",
    "build_positive_cover",
    "specialize",
]

#: after this many FD removals since the last compaction, the tree is
#: pruned — removal bursts leave tombstones and stale RHS
#: over-approximations that inflate every later lattice sweep
PRUNE_BURST = 64


def build_positive_cover(
    num_attributes: int,
    agree_sets: Iterable[int],
    max_lhs_size: int | None = None,
) -> FDTree:
    """Build the positive cover from scratch for the given negative cover."""
    tree = FDTree(num_attributes)
    tree.add(0, full_mask(num_attributes))
    apply_agree_sets(tree, agree_sets, max_lhs_size)
    return tree


def apply_agree_sets(
    tree: FDTree, agree_sets: Iterable[int], max_lhs_size: int | None = None
) -> int:
    """Refine the positive cover with a batch of agree sets.

    Agree sets are applied largest-first, the paper's order: large
    agree sets refute the most candidates per tree pass.  The whole
    batch is first screened against the current tree in one
    ``any_violated_batch`` sweep; sets that violate nothing are skipped
    outright.  That screen stays exact while the tree evolves: every
    FD the non-skipped sets insert has an LHS extended *outside* its
    agree set, so an agree set clean against the pre-batch tree can
    never become violated by a later specialization (its cleanliness
    already implied the new FD's RHS attribute lies inside it whenever
    the new, larger LHS does).

    Removal bursts are followed by :meth:`FDTree.prune` so tombstones
    and stale union masks don't inflate the remaining sweeps.  Returns
    the number of FDs removed.
    """
    ordered = sorted(set(agree_sets), key=lambda mask: -mask.bit_count())
    if not ordered:
        return 0
    flags = tree.any_violated_batch(ordered)
    removed = 0
    removed_since_prune = 0
    for agree, violates in zip(ordered, flags):
        if not violates:
            continue
        count = apply_agree_set(tree, agree, max_lhs_size)
        removed += count
        removed_since_prune += count
        if removed_since_prune >= PRUNE_BURST:
            tree.prune()
            removed_since_prune = 0
    return removed


def apply_agree_set(
    tree: FDTree, agree_set: int, max_lhs_size: int | None = None
) -> int:
    """Refine the positive cover with one agree set; return #removed FDs."""
    violated = tree.collect_violated(agree_set)
    removed = 0
    for lhs, rhs_mask in violated:
        checkpoint("hyfd-induct")
        tree.remove(lhs, rhs_mask)
        removed += rhs_mask.bit_count()
        for rhs_attr in iter_bits(rhs_mask):
            specialize(tree, lhs, rhs_attr, agree_set, max_lhs_size)
    return removed


def specialize(
    tree: FDTree,
    lhs: int,
    rhs_attr: int,
    agree_set: int,
    max_lhs_size: int | None = None,
) -> None:
    """Insert the minimal specializations of a just-refuted ``lhs → rhs_attr``.

    With ``max_lhs_size`` set, specializations that would exceed the
    bound are dropped — this is exactly the paper's §4.3 pruning, which
    HyFD provides "for free".
    """
    rhs_bit = 1 << rhs_attr
    new_size = lhs.bit_count() + 1
    if max_lhs_size is not None and new_size > max_lhs_size:
        return
    candidates = full_mask(tree.num_attributes) & ~(agree_set | rhs_bit | lhs)
    tree.add_minimal_specializations(lhs, rhs_attr, candidates)
