"""HyFD — hybrid FD discovery (Papenbrock & Naumann, SIGMOD 2016).

HyFD is the discoverer Normalize uses in the paper.  It alternates two
phases until a fixpoint:

1. **Sampling** (:mod:`repro.discovery.hyfd.sampler`) — compare
   similar record pairs (cluster-window neighbours) to collect *agree
   sets*, i.e. evidence of non-FDs, into a negative cover,
2. **Induction** (:mod:`repro.discovery.hyfd.induction`) — maintain a
   positive cover (an :class:`~repro.structures.fdtree.FDTree` of
   minimal FD candidates) by specializing away every candidate the
   negative cover refutes,
3. **Validation** (:mod:`repro.discovery.hyfd.validation`) — check the
   remaining candidates level-by-level against the data with stripped
   partitions; failures yield new agree sets, and a high failure rate
   switches back to sampling (the "hybrid" part).

The final tree holds exactly the complete set of minimal FDs.  The
``max_lhs_size`` option implements the paper's §4.3 pruning "for free".
"""

from repro.discovery.hyfd.hyfd import HyFD

__all__ = ["HyFD"]
