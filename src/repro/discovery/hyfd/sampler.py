"""HyFD sampling phase: focused record-pair comparisons.

Comparing *all* record pairs is quadratic; HyFD instead compares pairs
that are likely to agree on many attributes, because only such pairs
produce large agree sets — the strong non-FD evidence.  The heuristic:
within each column's PLI clusters (records already agree on that
column), sort the cluster by the full record so near neighbours are
similar, then compare each record to its neighbour at window distance
``d``.  Every run of a (column, distance) pair is scored by its
*efficiency* (new evidence per comparison), and the most efficient
column is advanced first — a faithful, single-threaded rendition of the
paper's progressive sampling queue.
"""

from __future__ import annotations

import heapq

from repro import kernels
from repro.model.instance import RelationInstance
from repro.runtime.governor import checkpoint
from repro.structures.partitions import PLICache

__all__ = ["Sampler"]


class Sampler:
    """Progressive cluster-window sampler producing agree-set evidence.

    With ``parallel`` (a :class:`repro.parallel.RelationRun`), large
    windows ship their record-pair shards to the process pool: workers
    compute the agree masks against the shared-memory columns, and the
    parent replays the dedup in the serial pair order — the negative
    cover and the efficiency queue evolve byte-identically to a serial
    run.
    """

    def __init__(
        self, instance: RelationInstance, cache: PLICache, parallel=None
    ) -> None:
        self.arity = instance.arity
        self.num_rows = instance.num_rows
        self.parallel = parallel
        self._encoding = cache.encoding
        self._probes = self._encoding.codes
        # Sort each cluster so that neighbouring records are similar.
        self._clusters: list[list[list[int]]] = []
        for attr in range(self.arity):
            sorted_clusters = [
                sorted(cluster, key=self._record_key)
                for cluster in cache.get(1 << attr).iter_clusters()
            ]
            self._clusters.append(sorted_clusters)
        # Per-attribute numpy copies of the sorted clusters, built lazily
        # on the first vectorized window (numpy backend only).
        self._np_clusters: dict[int, list] = {}
        self.negative_cover: set[int] = set()
        self._distances = [0] * self.arity
        self._queue: list[tuple[float, int]] = [
            (-1.0, attr) for attr in range(self.arity)
        ]
        heapq.heapify(self._queue)
        self.comparisons = 0

    def _record_key(self, row: int) -> tuple[int, ...]:
        return tuple(probe[row] for probe in self._probes)

    # ------------------------------------------------------------------
    # Evidence collection
    # ------------------------------------------------------------------
    def _agree_set(self, left: int, right: int) -> int:
        return self._encoding.agree_set(left, right)

    def compare(self, left: int, right: int) -> int | None:
        """Compare one record pair; return its agree set if it is new."""
        self.comparisons += 1
        agree = self._agree_set(left, right)
        if agree in self.negative_cover:
            return None
        self.negative_cover.add(agree)
        return agree

    def _run_window(self, attr: int, distance: int) -> tuple[int, list[int]]:
        """Compare all pairs at ``distance`` within ``attr``'s clusters."""
        if self.parallel is not None:
            pairs = [
                (cluster[index], cluster[index + distance])
                for cluster in self._clusters[attr]
                for index in range(len(cluster) - distance)
            ]
            if self.parallel.should(len(pairs) * self.arity):
                return len(pairs), self._merge_window(pairs)
        if kernels.backend_name() == "numpy":
            return self._run_window_numpy(attr, distance)
        compared = 0
        fresh: list[int] = []
        for cluster in self._clusters[attr]:
            checkpoint("hyfd-sample", units=max(len(cluster) - distance, 1))
            for index in range(len(cluster) - distance):
                compared += 1
                agree = self.compare(cluster[index], cluster[index + distance])
                if agree is not None:
                    fresh.append(agree)
        return compared, fresh

    def _run_window_numpy(self, attr: int, distance: int) -> tuple[int, list[int]]:
        """Vectorized window: batch every pair of the round into one
        agree-set kernel call, then replay the dedup in pair order.

        The pair order (clusters in PLI order, window positions
        ascending) and the checkpoint granularity (one call per cluster,
        same units) match the interpreted loop exactly, so the negative
        cover, the efficiency queue, and governor tick counts evolve
        identically.
        """
        np = kernels.numpy_module()
        arrays = self._np_clusters.get(attr)
        if arrays is None:
            arrays = [
                np.asarray(cluster, dtype=np.intp)
                for cluster in self._clusters[attr]
            ]
            self._np_clusters[attr] = arrays
        lefts = []
        rights = []
        for cluster in arrays:
            width = len(cluster) - distance
            checkpoint("hyfd-sample", units=max(width, 1))
            if width > 0:
                lefts.append(cluster[:width])
                rights.append(cluster[distance:])
        if not lefts:
            return 0, []
        masks = self._encoding.agree_sets_batch(
            np.concatenate(lefts), np.concatenate(rights)
        )
        self.comparisons += len(masks)
        fresh: list[int] = []
        for agree in masks:
            if agree not in self.negative_cover:
                self.negative_cover.add(agree)
                fresh.append(agree)
        return len(masks), fresh

    def _merge_window(self, pairs: list[tuple[int, int]]) -> list[int]:
        """Shard the agree-mask computation; replay the dedup in order."""
        handle = self.parallel.handle
        payloads = [
            {"handle": handle, "pairs": pairs[start:stop]}
            for start, stop in self.parallel.ranges(len(pairs))
        ]
        shards = self.parallel.map(
            "agree_pairs", payloads, stage="hyfd-sample", items=len(pairs)
        )
        fresh: list[int] = []
        for masks in shards:
            for agree in masks:
                self.comparisons += 1
                if agree not in self.negative_cover:
                    self.negative_cover.add(agree)
                    fresh.append(agree)
        return fresh

    @property
    def exhausted(self) -> bool:
        """True when every column's window has outgrown its clusters."""
        return not self._queue

    def next_round(self) -> list[int]:
        """Advance the most efficient column's window; return new agree sets.

        Returns an empty list when a round produced nothing new; callers
        typically loop until evidence arrives or the sampler is
        exhausted.
        """
        if not self._queue:
            return []
        _, attr = heapq.heappop(self._queue)
        self._distances[attr] += 1
        distance = self._distances[attr]
        largest = max((len(c) for c in self._clusters[attr]), default=0)
        compared, fresh = self._run_window(attr, distance)
        if distance < largest - 1:
            efficiency = len(fresh) / compared if compared else 0.0
            heapq.heappush(self._queue, (-efficiency, attr))
        return fresh

    def initial_rounds(self) -> list[int]:
        """Run every column once at distance 1 (HyFD's warm-up pass)."""
        fresh: list[int] = []
        for _ in range(self.arity):
            fresh.extend(self.next_round())
        return fresh
