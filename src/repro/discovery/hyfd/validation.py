"""HyFD validation phase: check positive-cover candidates against the data.

Candidates are validated level by level (by LHS size).  A candidate
``X → a`` is checked with stripped partitions: every cluster of π(X)
must agree on ``a``'s value ids.  All RHS candidates of one LHS node
are validated in a **single pass** over π(X)
(:meth:`~repro.structures.partitions.StrippedPartition.find_violations`),
as in the original HyFD: the partition data is swept once per (LHS,
level) regardless of the RHS fan-out, and every refuted attribute
yields one concrete violating record pair.  An invalid candidate is
removed and specialized — using the violating pair's *full* agree set
(computed on the shared column encoding), which simultaneously
enriches the negative cover.

The "hybrid" switch: if a level refutes more than ``switch_threshold``
of its candidates, validation is interrupted and the sampler runs more
rounds (guided evidence is cheaper than failing validations); the new
evidence is inducted into the tree and the same level is re-collected.
With the sampler exhausted the loop always falls back to pure
validation, so termination and exactness never depend on sampling.
"""

from __future__ import annotations

from repro.discovery.hyfd.induction import apply_agree_sets, specialize
from repro.discovery.hyfd.sampler import Sampler
from repro.model.attributes import iter_bits
from repro.runtime.governor import checkpoint
from repro.structures.fdtree import FDTree
from repro.structures.partitions import PLICache

__all__ = ["validate_tree"]


def validate_tree(
    tree: FDTree,
    cache: PLICache,
    sampler: Sampler | None = None,
    max_lhs_size: int | None = None,
    switch_threshold: float = 0.2,
    sample_rounds_per_switch: int = 4,
    parallel=None,
) -> None:
    """Mutate ``tree`` until it holds exactly the valid minimal FDs.

    ``parallel`` (a :class:`repro.parallel.RelationRun`) shards large
    levels over the process pool; refutations are applied in serial
    candidate order, so the tree evolves byte-identically either way
    (specialization only creates *deeper* nodes, so candidates within a
    level are independent).
    """
    level = 0
    while level <= tree.depth():
        candidates = list(tree.iter_level(level))
        total = sum(rhs.bit_count() for _, rhs in candidates)
        if total == 0:
            level += 1
            continue
        invalid = _validate_level(tree, cache, candidates, max_lhs_size, parallel)
        if (
            sampler is not None
            and not sampler.exhausted
            and invalid / total > switch_threshold
        ):
            # Hybrid switch: gather cheap evidence, induct it, redo level.
            fresh: list[int] = []
            for _ in range(sample_rounds_per_switch):
                fresh.extend(sampler.next_round())
                if sampler.exhausted:
                    break
            apply_agree_sets(tree, fresh, max_lhs_size)
            continue  # re-collect the same level
        level += 1


def _validate_level(
    tree: FDTree,
    cache: PLICache,
    candidates: list[tuple[int, int]],
    max_lhs_size: int | None,
    parallel=None,
) -> int:
    """Validate one level's candidates; return the number refuted.

    All RHS attributes of one LHS node are checked with a single
    partition sweep (multi-RHS validation); refuted attributes are
    specialized in ascending attribute order, matching the historical
    per-attribute iteration.
    """
    if parallel is not None:
        work = [
            (lhs, [attr for attr in iter_bits(rhs_mask)])
            for lhs, rhs_mask in candidates
        ]
        units = sum(len(rhs) for _, rhs in work) * cache.encoding.num_rows
        if parallel.should(units):
            return _validate_level_parallel(tree, work, max_lhs_size, parallel)
    invalid = 0
    for lhs, rhs_mask in candidates:
        checkpoint("hyfd-validate")
        rhs_attrs = [
            attr
            for attr in iter_bits(rhs_mask)
            if tree.contains_fd(lhs, attr)  # not specialized away meanwhile
        ]
        if not rhs_attrs:
            continue
        probes = [cache.probe(attr) for attr in rhs_attrs]
        violations = cache.get(lhs).find_violations(rhs_attrs, probes)
        for rhs_attr in rhs_attrs:
            pair = violations.get(rhs_attr)
            if pair is None:
                continue
            invalid += 1
            tree.remove(lhs, 1 << rhs_attr)
            agree = cache.agree_set(*pair)
            specialize(tree, lhs, rhs_attr, agree, max_lhs_size)
    return invalid


def _validate_level_parallel(
    tree: FDTree,
    work: list[tuple[int, list[int]]],
    max_lhs_size: int | None,
    parallel,
) -> int:
    """Dispatch one level's validations to the pool, merge in order.

    Within a level, no candidate's outcome can affect another's data
    sweep — ``specialize`` only adds deeper nodes and ``remove`` only
    touches the processed ``(lhs, attr)`` — so the full level can be
    snapshot up front; the parent then replays each refutation
    (``remove`` + ``specialize``) in serial candidate order using the
    agree sets the workers computed.
    """
    handle = parallel.handle
    payloads = [
        {"handle": handle, "items": work[start:stop]}
        for start, stop in parallel.ranges(len(work))
    ]
    shards = parallel.map(
        "hyfd_validate", payloads, stage="hyfd-validate", items=len(work)
    )
    invalid = 0
    index = 0
    for shard in shards:
        for refuted in shard:
            lhs, _ = work[index]
            index += 1
            for rhs_attr, agree in refuted:
                invalid += 1
                tree.remove(lhs, 1 << rhs_attr)
                specialize(tree, lhs, rhs_attr, agree, max_lhs_size)
    return invalid
