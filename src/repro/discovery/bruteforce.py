"""FDep-style exact FD discovery: agree sets + minimal hitting sets.

For every pair of records, the *agree set* is the set of attributes on
which the two records agree.  An FD ``X → A`` is violated exactly by the
pairs whose agree set contains ``X`` but not ``A``; hence the minimal
valid LHSs for ``A`` are the minimal hitting sets of the complements of
the (maximal) agree sets that miss ``A``.

This is quadratic in the number of records and exponential in the
attribute count, so it is no competitor to TANE/HyFD — but it is short,
obviously correct, and therefore the ideal oracle for the property-based
tests of the faster discoverers.
"""

from __future__ import annotations

from repro.discovery.base import FDAlgorithm
from repro.discovery.hitting_sets import minimal_hitting_sets
from repro.model.attributes import full_mask
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import checkpoint
from repro.structures.partitions import column_value_ids

__all__ = ["BruteForceFD", "distinct_agree_sets"]


def distinct_agree_sets(
    instance: RelationInstance, null_equals_null: bool = True
) -> list[int]:
    """Compute the distinct agree sets over all record pairs.

    The result never contains the full attribute set (duplicate rows
    agree everywhere and violate nothing).  An empty list means every
    pair of records is either fully identical or absent (≤1 distinct
    row), in which case every FD holds.  Reduction to *per-attribute
    maximal* sets happens inside the hitting-set enumerator: globally
    maximal agree sets would be wrong, because a set subsumed by a
    superset that contains the RHS attribute still witnesses violations
    for that attribute.
    """
    probes = [
        column_value_ids(column, null_equals_null)
        for column in instance.columns_data
    ]
    rows = instance.num_rows
    arity = instance.arity
    everything = full_mask(arity)
    agree_sets: set[int] = set()
    for left in range(rows):
        checkpoint("bruteforce-pairs", units=max(rows - left - 1, 1))
        left_values = [probes[col][left] for col in range(arity)]
        for right in range(left + 1, rows):
            agree = 0
            for col in range(arity):
                if left_values[col] == probes[col][right]:
                    agree |= 1 << col
            if agree != everything:
                agree_sets.add(agree)
    return sorted(agree_sets)


class BruteForceFD(FDAlgorithm):
    """Exact minimal-FD discovery from pairwise agree sets."""

    name = "bruteforce"

    def discover(self, instance: RelationInstance) -> FDSet:
        arity = instance.arity
        result = FDSet(arity)
        if arity == 0:
            return result
        try:
            agree_sets = distinct_agree_sets(instance, self.null_equals_null)
            everything = full_mask(arity)
            for attr in range(arity):
                checkpoint("bruteforce-rhs")
                attr_bit = 1 << attr
                universe = everything & ~attr_bit
                difference_sets = [
                    ~agree & universe
                    for agree in agree_sets
                    if not agree & attr_bit
                ]
                for lhs in minimal_hitting_sets(difference_sets, universe):
                    if self._within_lhs_bound(lhs):
                        result.add_masks(lhs, attr_bit)
        except BudgetExceeded as exc:
            # FDs for completed RHS attributes are exact and minimal.
            raise exc.attach_partial(result, exact=True)
        return result
