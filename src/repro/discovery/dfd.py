"""DFD — FD discovery via lattice random walks (Abedjan et al., 2014).

DFD treats each attribute ``A`` as a potential RHS and searches the
lattice of LHS candidates (subsets of ``R \\ {A}``) for the minimal
dependencies.  "X → A holds" is an upward-monotone predicate — if
``X → A`` holds then ``XZ → A`` holds — so the search is exactly the
generic boundary search of :mod:`repro.discovery.lattice`: random walks
classify nodes, minimal dependencies and maximal non-dependencies prune
the space, and minimal hitting sets of the non-dependency complements
find unexplored holes and certify completeness.

The FD predicate itself is the classic partition-refinement check:
``X → A`` iff every cluster of the stripped partition π(X) agrees on
the value of ``A``.
"""

from __future__ import annotations

from repro.discovery.base import FDAlgorithm
from repro.discovery.lattice import find_minimal_satisfying
from repro.model.attributes import full_mask
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import checkpoint
from repro.structures.partitions import PLICache

__all__ = ["DFD"]


class DFD(FDAlgorithm):
    """Complete minimal-FD discovery via per-RHS lattice walks."""

    name = "dfd"

    def __init__(
        self,
        null_equals_null: bool = True,
        max_lhs_size: int | None = None,
        seed: int = 42,
        random_walks: int = 8,
        max_cached_partitions: int | None = None,
    ) -> None:
        super().__init__(null_equals_null, max_lhs_size)
        self.seed = seed
        self.random_walks = random_walks
        self.max_cached_partitions = max_cached_partitions
        self.last_cache_stats = None

    def discover(self, instance: RelationInstance) -> FDSet:
        arity = instance.arity
        result = FDSet(arity)
        if arity == 0:
            return result
        cache = PLICache(
            instance,
            self.null_equals_null,
            max_partitions=self.max_cached_partitions,
        )
        self.last_cache_stats = cache.stats
        everything = full_mask(arity)
        for rhs_attr in range(arity):
            checkpoint("dfd-rhs")
            rhs_bit = 1 << rhs_attr
            universe = everything & ~rhs_bit
            probe = cache.probe(rhs_attr)

            def holds(lhs: int) -> bool:
                return cache.get(lhs).refines_column(probe)

            try:
                minimal_lhss = find_minimal_satisfying(
                    holds,
                    universe,
                    seed=self.seed + rhs_attr,
                    random_walks=self.random_walks,
                )
            except BudgetExceeded as exc:
                # Completed RHS attributes are exact; the in-flight one
                # contributes the minimal LHSs its lattice search pinned.
                if isinstance(exc.partial, list):
                    for lhs in exc.partial:
                        if self._within_lhs_bound(lhs):
                            result.add_masks(lhs, rhs_bit)
                exc.partial = None
                raise exc.attach_partial(result, exact=True)
            for lhs in minimal_lhss:
                if self._within_lhs_bound(lhs):
                    result.add_masks(lhs, rhs_bit)
        return result
