"""Sampled FD discovery with full-relation g3 verification.

This is the degradation ladder's "sampled + g3-verified" rung
(:mod:`repro.runtime.degrade`, rung 3) promoted to a first-class
algorithm so callers can *opt in* to approximate discovery up front —
``repro --approximate`` on the CLI — instead of only reaching it after
two budget breaches.

The procedure follows TANE's error measure [Huhtala et al. 1999] and
the approximate-discovery framing of the paper's §9 discussion:

1. draw a deterministic row sample (order-preserving, seeded),
2. run exact HyFD on the sample — complete for the sample,
3. verify every candidate FD against the **full** relation with the
   g3 error (minimal fraction of rows to drop), keeping those with
   ``g3 <= approx_error``.

With the default ``approx_error = 0.0`` every reported FD holds
exactly on the full relation (the sample only prunes the search
space), so the result is sound but possibly incomplete.  With a
positive error bound the result is an approximate-FD set in the g3
sense.  Either way the measured per-FD errors are retained on the
instance (:attr:`SampledG3FD.last_errors`, :attr:`SampledG3FD.reports`)
so profiles and CLI reports can print the bounds next to the schema.
"""

from __future__ import annotations

from repro.discovery.base import FDAlgorithm
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded, InputError
from repro.runtime.governor import checkpoint

__all__ = ["SampledG3FD"]


class SampledG3FD(FDAlgorithm):
    """Discover FDs on a row sample, then g3-verify on the full data.

    Parameters mirror the degradation ladder's knobs: ``sample_rows``
    caps the sample size, ``approx_error`` is the g3 ceiling a
    candidate must meet to be kept, ``seed`` fixes the sample.

    After each :meth:`discover` call:

    * :attr:`last_sampled_rows` — rows actually sampled, or ``None``
      when the relation fit inside the sample (the result is exact),
    * :attr:`last_errors` — ``{(lhs_mask, rhs_attr): g3}`` for every
      kept FD,
    * :attr:`last_dropped` — candidates discarded for exceeding the
      error bound,
    * :attr:`reports` — per-relation formatted bound lines, keyed by
      relation name, accumulated across calls (one pipeline run
      discovers every relation through the same instance).
    """

    name = "sampled-g3"

    def __init__(
        self,
        null_equals_null: bool = True,
        max_lhs_size: int | None = None,
        sample_rows: int = 512,
        approx_error: float = 0.0,
        seed: int = 42,
    ) -> None:
        super().__init__(null_equals_null, max_lhs_size)
        if sample_rows < 1:
            raise InputError("sample_rows must be >= 1")
        if not 0.0 <= approx_error < 1.0:
            raise InputError("approx_error must be in [0.0, 1.0)")
        self.sample_rows = sample_rows
        self.approx_error = approx_error
        self.seed = seed
        self.last_sampled_rows: int | None = None
        self.last_errors: dict[tuple[int, int], float] = {}
        self.last_dropped: int = 0
        self.reports: dict[str, list[str]] = {}

    def discover(self, instance: RelationInstance) -> FDSet:
        from repro.discovery.hyfd import HyFD
        from repro.runtime.degrade import sample_instance_rows

        self.last_sampled_rows = None
        self.last_errors = {}
        self.last_dropped = 0

        sample, sampled = sample_instance_rows(
            instance, self.sample_rows, self.seed
        )
        candidates = HyFD(
            null_equals_null=self.null_equals_null,
            max_lhs_size=self.max_lhs_size,
        ).discover(sample)

        if sampled == instance.num_rows:
            # The sample covered the relation: exact result, zero error.
            for lhs, rhs_mask in sorted(candidates.items()):
                for attr in _bits(rhs_mask):
                    self.last_errors[(lhs, attr)] = 0.0
            self._record_report(instance)
            return candidates

        self.last_sampled_rows = sampled
        kept = FDSet(instance.arity)
        try:
            from repro.structures.partitions import column_value_ids

            probes = [
                column_value_ids(column, self.null_equals_null)
                for column in instance.columns_data
            ]
            for lhs, rhs_mask in sorted(candidates.items()):
                for attr in _bits(rhs_mask):
                    checkpoint(
                        "sampled-verify", units=max(instance.num_rows, 1)
                    )
                    error = _g3(instance, lhs, attr, self.null_equals_null, probes)
                    if error <= self.approx_error:
                        kept.add_masks(lhs, 1 << attr)
                        self.last_errors[(lhs, attr)] = error
                    else:
                        self.last_dropped += 1
        except BudgetExceeded as exc:
            # Unverified candidates are dropped, never trusted.
            exc.partial = kept
            exc.partial_exact = self.approx_error == 0.0
            raise
        self._record_report(instance)
        return kept

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _record_report(self, instance: RelationInstance) -> None:
        lines = self.format_bounds(instance.columns)
        self.reports[instance.name] = lines

    def format_bounds(self, columns) -> list[str]:
        """Human-readable ``lhs -> rhs: g3=...`` lines, sorted."""

        def attr_names(mask: int) -> str:
            names = [columns[i] for i in _bits(mask)]
            return ",".join(names) if names else "{}"

        lines = []
        for (lhs, attr), error in sorted(self.last_errors.items()):
            lines.append(
                f"{attr_names(lhs)} -> {columns[attr]}: g3={error:.4f}"
            )
        if self.last_dropped:
            lines.append(
                f"({self.last_dropped} sampled candidates exceeded "
                f"the g3 bound {self.approx_error} and were dropped)"
            )
        return lines


def _g3(instance, lhs, attr, null_equals_null, probes) -> float:
    from repro.extensions.approximate import g3_error

    return g3_error(instance, lhs, attr, null_equals_null, probes=probes)


def _bits(mask: int):
    attr = 0
    while mask:
        if mask & 1:
            yield attr
        mask >>= 1
        attr += 1
