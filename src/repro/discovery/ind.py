"""Inclusion dependency (IND) discovery and foreign-key verification.

The paper's foreign-key scoring (§7.2) is "inspired by [Rostin et al.],
who extracted foreign keys from inclusion dependencies"; this module
supplies the IND side of that picture for the *output* of Normalize:

* :func:`discover_unary_inds` — all unary INDs ``R.A ⊆ S.B`` across a
  set of relation instances (value-set inclusion, NULLs ignored as in
  SQL foreign-key semantics),
* :func:`ind_holds` — n-ary IND check for explicit column tuples,
* :func:`verify_foreign_keys` — audit every declared foreign key of a
  normalized schema: the referencing values must be included in the
  referenced columns *and* the referenced columns must be unique.
  Normalize's decompositions guarantee both by construction; the
  verifier makes that guarantee checkable, and flags violations when
  data was edited afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import RelationInstance

__all__ = [
    "IND",
    "ForeignKeyAudit",
    "discover_unary_inds",
    "ind_holds",
    "verify_foreign_keys",
]


@dataclass(frozen=True, slots=True)
class IND:
    """A (possibly n-ary) inclusion dependency between two relations."""

    dependent_relation: str
    dependent_columns: tuple[str, ...]
    referenced_relation: str
    referenced_columns: tuple[str, ...]

    def to_str(self) -> str:
        dep = ",".join(self.dependent_columns)
        ref = ",".join(self.referenced_columns)
        return (
            f"{self.dependent_relation}({dep}) <= "
            f"{self.referenced_relation}({ref})"
        )


def _non_null_values(instance: RelationInstance, columns) -> set[tuple]:
    data = [instance.column(col) for col in columns]
    return {
        row
        for row in zip(*data)
        if all(value is not None for value in row)
    }


def ind_holds(
    dependent: RelationInstance,
    dependent_columns,
    referenced: RelationInstance,
    referenced_columns,
) -> bool:
    """True iff every non-NULL dependent combination appears referenced.

    Rows with a NULL in any dependent column are exempt, matching SQL's
    foreign-key semantics (MATCH SIMPLE).
    """
    if len(dependent_columns) != len(referenced_columns):
        raise ValueError("column lists differ in width")
    if not dependent_columns:
        raise ValueError("need at least one column")
    left = _non_null_values(dependent, dependent_columns)
    right = _non_null_values(referenced, referenced_columns)
    return left <= right


def discover_unary_inds(
    instances: dict[str, RelationInstance],
    allow_self: bool = False,
) -> list[IND]:
    """All valid unary INDs across the given relations.

    Columns with no non-NULL values are skipped (they are trivially
    included everywhere and carry no signal).  ``allow_self`` includes
    INDs between different columns of the same relation.
    """
    value_sets: list[tuple[str, str, set]] = []
    for name, instance in instances.items():
        for column in instance.columns:
            values = _non_null_values(instance, [column])
            if values:
                value_sets.append((name, column, values))

    inds: list[IND] = []
    for dep_rel, dep_col, dep_values in value_sets:
        for ref_rel, ref_col, ref_values in value_sets:
            if dep_rel == ref_rel and (not allow_self or dep_col == ref_col):
                continue
            if dep_values <= ref_values:
                inds.append(
                    IND(dep_rel, (dep_col,), ref_rel, (ref_col,))
                )
    return inds


@dataclass(frozen=True, slots=True)
class ForeignKeyAudit:
    """The verification result of one declared foreign key."""

    relation: str
    foreign_key: str
    inclusion_holds: bool
    referenced_unique: bool
    dangling_values: tuple[tuple, ...]

    @property
    def valid(self) -> bool:
        return self.inclusion_holds and self.referenced_unique

    def to_str(self) -> str:
        status = "OK" if self.valid else "BROKEN"
        details = []
        if not self.inclusion_holds:
            sample = ", ".join(map(repr, self.dangling_values[:3]))
            details.append(f"dangling values: {sample}")
        if not self.referenced_unique:
            details.append("referenced columns are not unique")
        suffix = f" ({'; '.join(details)})" if details else ""
        return f"[{status}] {self.relation}.{self.foreign_key}{suffix}"


def verify_foreign_keys(
    instances: dict[str, RelationInstance],
) -> list[ForeignKeyAudit]:
    """Audit every declared foreign key across the given instances."""
    audits: list[ForeignKeyAudit] = []
    for name, instance in instances.items():
        for fk in instance.relation.foreign_keys:
            target = instances.get(fk.ref_relation)
            if target is None:
                audits.append(
                    ForeignKeyAudit(
                        relation=name,
                        foreign_key=fk.to_str(),
                        inclusion_holds=False,
                        referenced_unique=False,
                        dangling_values=(),
                    )
                )
                continue
            left = _non_null_values(instance, fk.columns)
            right = _non_null_values(target, fk.ref_columns)
            dangling = tuple(sorted(left - right))
            ref_data = [target.column(col) for col in fk.ref_columns]
            ref_rows = list(zip(*ref_data))
            audits.append(
                ForeignKeyAudit(
                    relation=name,
                    foreign_key=fk.to_str(),
                    inclusion_holds=not dangling,
                    referenced_unique=len(set(ref_rows)) == len(ref_rows),
                    dangling_values=dangling,
                )
            )
    return audits
