"""An FD "discoverer" that returns known FD sets.

Useful whenever the complete minimal FDs of a relation are already
known — from a previous discovery run, a cached profiling result, or a
test — and re-running discovery would waste time.  The benchmark
harness uses it to share one discovery run across several pipeline
configurations (the paper's ablation-style comparisons).
"""

from __future__ import annotations

from repro.discovery.base import FDAlgorithm
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance

__all__ = ["PrecomputedFDs"]


class PrecomputedFDs(FDAlgorithm):
    """Serves stored FD sets, keyed by relation name.

    The stored sets must be complete sets of minimal FDs (the contract
    every pipeline stage relies on); they are returned as copies so the
    pipeline can never corrupt the originals.
    """

    name = "precomputed"

    def __init__(self, fds_by_relation: dict[str, FDSet]) -> None:
        super().__init__()
        self._fds_by_relation = dict(fds_by_relation)

    def discover(self, instance: RelationInstance) -> FDSet:
        stored = self._fds_by_relation.get(instance.name)
        if stored is None:
            raise KeyError(
                f"no precomputed FDs for relation {instance.name!r}; "
                f"known: {sorted(self._fds_by_relation)}"
            )
        if stored.num_attributes != instance.arity:
            raise ValueError(
                f"precomputed FDs for {instance.name!r} cover "
                f"{stored.num_attributes} attributes but the instance has "
                f"{instance.arity}"
            )
        return stored.copy()
