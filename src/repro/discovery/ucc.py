"""Unique column combination (UCC / key candidate) discovery.

The primary-key selection component of Normalize (paper §5/§7.1) must
find *all* minimal keys of relations that did not inherit one from a
decomposition.  The paper delegates this to DUCC [Heise et al. 2013];
we provide three implementations:

* :class:`DuccUCC` — DUCC-style boundary search: "π(X) has no
  non-singleton cluster" is upward monotone, so the generic lattice
  machinery (random walks + hitting-set completion) applies directly,
* :class:`NaiveUCC` — an Apriori-levelwise enumerator used as the test
  oracle,
* :class:`~repro.discovery.hyucc.HyUCC` — the hybrid
  sampling/validation variant (separate module).

Both return the minimal UCCs as attribute bitmasks.  Note that a UCC is
a key *candidate*; NULL handling follows the same convention as FD
discovery, and Normalize separately refuses NULL-containing primary
keys.
"""

from __future__ import annotations

import itertools

from repro.discovery.lattice import find_minimal_satisfying
from repro.model.attributes import full_mask, iter_bits
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import checkpoint
from repro.structures.partitions import PLICache
from repro.structures.settrie import SetTrie

__all__ = ["DuccUCC", "NaiveUCC", "discover_uccs"]


class DuccUCC:
    """DUCC-style minimal-UCC discovery via lattice boundary search."""

    name = "ducc"

    def __init__(
        self,
        null_equals_null: bool = True,
        seed: int = 42,
        random_walks: int = 8,
        max_cached_partitions: int | None = None,
    ) -> None:
        self.null_equals_null = null_equals_null
        self.seed = seed
        self.random_walks = random_walks
        self.max_cached_partitions = max_cached_partitions
        self.last_cache_stats = None

    def discover(self, instance: RelationInstance) -> list[int]:
        """Return all minimal unique column combinations as bitmasks."""
        arity = instance.arity
        if arity == 0:
            return []
        cache = PLICache(
            instance,
            self.null_equals_null,
            max_partitions=self.max_cached_partitions,
        )
        self.last_cache_stats = cache.stats

        def is_unique(mask: int) -> bool:
            return cache.get(mask).is_unique

        return find_minimal_satisfying(
            is_unique,
            full_mask(arity),
            seed=self.seed,
            random_walks=self.random_walks,
        )


class NaiveUCC:
    """Levelwise (Apriori) minimal-UCC discovery — the test oracle."""

    name = "naive-ucc"

    def __init__(self, null_equals_null: bool = True) -> None:
        self.null_equals_null = null_equals_null
        self.last_cache_stats = None

    def discover(self, instance: RelationInstance) -> list[int]:
        """Return all minimal unique column combinations as bitmasks."""
        arity = instance.arity
        if arity == 0:
            return []
        cache = PLICache(instance, self.null_equals_null)
        self.last_cache_stats = cache.stats
        if cache.get(0).is_unique:  # ≤ 1 row: the empty set is unique
            return [0]
        minimal = SetTrie()
        try:
            level = [1 << attr for attr in range(arity)]
            while level:
                checkpoint("naive-ucc", units=len(level))
                survivors = []
                for mask in level:
                    if minimal.contains_subset_of(mask):
                        continue
                    if cache.get(mask).is_unique:
                        minimal.insert(mask)
                    else:
                        survivors.append(mask)
                level = _next_level(survivors)
        except BudgetExceeded as exc:
            raise exc.attach_partial(sorted(minimal.iter_all()), exact=True)
        return sorted(minimal.iter_all())


def _next_level(survivors: list[int]) -> list[int]:
    """Prefix-join generation with the all-subsets-survive check."""
    survivor_set = set(survivors)
    blocks: dict[int, list[int]] = {}
    for mask in survivors:
        top = 1 << (mask.bit_length() - 1)
        blocks.setdefault(mask & ~top, []).append(mask)
    next_level = []
    for block in blocks.values():
        block.sort()
        for first, second in itertools.combinations(block, 2):
            candidate = first | second
            if all(
                candidate & ~(1 << attr) in survivor_set
                for attr in iter_bits(candidate)
            ):
                next_level.append(candidate)
    return next_level


def resolve_ucc_algorithm(algorithm: str = "ducc", **kwargs):
    """Instantiate a UCC discoverer by name.

    Algorithms: ``"ducc"`` (default), ``"hyucc"``, ``"naive"``.
    """
    from repro.discovery.hyucc import HyUCC

    registry = {"ducc": DuccUCC, "hyucc": HyUCC, "naive": NaiveUCC}
    key = algorithm.lower()
    if key not in registry:
        raise ValueError(f"unknown UCC algorithm {algorithm!r}; choose from {sorted(registry)}")
    return registry[key](**kwargs)


def discover_uccs(
    instance: RelationInstance, algorithm: str = "ducc", **kwargs
) -> list[int]:
    """Convenience front door for UCC discovery (see :func:`resolve_ucc_algorithm`)."""
    return resolve_ucc_algorithm(algorithm, **kwargs).discover(instance)
