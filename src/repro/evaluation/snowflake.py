"""ASCII rendering of a schema's foreign-key topology.

The paper's Figures 3 and 4 draw the normalized relations as a
hierarchy along the foreign keys (BCNF decomposition always yields a
"tree-shaped snowflake schema", §3).  This module renders exactly that
view in text: referencing relations on top, referenced relations
indented below, shared dimensions repeated with a back-reference
marker.
"""

from __future__ import annotations

from repro.model.schema import Schema

__all__ = ["schema_tree"]


def schema_tree(schema: Schema) -> str:
    """Render the FK hierarchy, roots (unreferenced relations) first."""
    referenced = {
        fk.ref_relation
        for relation in schema
        for fk in relation.foreign_keys
        if fk.ref_relation in schema
    }
    roots = [relation.name for relation in schema if relation.name not in referenced]
    if not roots:  # pure cycle: pick a stable starting point
        roots = sorted(relation.name for relation in schema)

    lines: list[str] = []
    printed: set[str] = set()
    for root in roots:
        _render(schema, root, "", "", lines, printed, frozenset())
    # Anything unreachable from the roots (isolated cycles).
    for relation in schema:
        if relation.name not in printed:
            _render(schema, relation.name, "", "", lines, printed, frozenset())
    return "\n".join(lines)


def _render(
    schema: Schema,
    name: str,
    prefix: str,
    connector: str,
    lines: list[str],
    printed: set[str],
    path: frozenset[str],
) -> None:
    relation = schema[name]
    repeat = name in printed
    marker = "  (see above)" if repeat else ""
    lines.append(f"{prefix}{connector}{relation.to_str()}{marker}")
    printed.add(name)
    if repeat or name in path:
        return
    children = [fk for fk in relation.foreign_keys if fk.ref_relation in schema]
    if connector == "":
        child_prefix = prefix
    elif connector == "`-- ":
        child_prefix = prefix + "    "
    else:  # "|-- "
        child_prefix = prefix + "|   "
    for index, fk in enumerate(children):
        next_connector = "`-- " if index == len(children) - 1 else "|-- "
        _render(
            schema,
            fk.ref_relation,
            child_prefix,
            next_connector,
            lines,
            printed,
            path | {name},
        )
