"""Minimal timing utilities for the benchmark harness."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating stopwatch with named laps.

    Usage::

        watch = Stopwatch()
        with watch.lap("closure"):
            ...
        watch.seconds("closure")
    """

    def __init__(self) -> None:
        self._laps: dict[str, float] = {}

    class _Lap:
        def __init__(self, watch: "Stopwatch", name: str) -> None:
            self._watch = watch
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Stopwatch._Lap":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._start
            laps = self._watch._laps
            laps[self._name] = laps.get(self._name, 0.0) + elapsed

    def lap(self, name: str) -> "Stopwatch._Lap":
        return Stopwatch._Lap(self, name)

    def seconds(self, name: str) -> float:
        return self._laps.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._laps)
