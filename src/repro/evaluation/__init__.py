"""Evaluation harness: schema-recovery metrics, timing, report tables."""

from repro.evaluation.metrics import (
    GoldRelation,
    SchemaRecoveryReport,
    evaluate_schema_recovery,
)
from repro.evaluation.redundancy import redundancy_report
from repro.evaluation.reporting import format_table
from repro.evaluation.snowflake import schema_tree
from repro.evaluation.timing import Stopwatch

__all__ = [
    "GoldRelation",
    "SchemaRecoveryReport",
    "Stopwatch",
    "evaluate_schema_recovery",
    "format_table",
    "redundancy_report",
    "schema_tree",
]
