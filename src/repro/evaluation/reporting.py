"""ASCII table rendering for benchmark output.

The benchmarks print paper-style tables (Table 3, the Figure 2 series)
to stdout; this module renders them with aligned columns so the output
is directly comparable with the paper's layout.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted
    by the caller so precision stays under its control.
    """
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator))
    lines.append(render_row(list(headers)))
    lines.append(separator)
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)
