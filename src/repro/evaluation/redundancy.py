"""Redundancy accounting: what normalization actually saved.

The paper's §1 motivates normalization by counting stored values
("the total size of the dataset was reduced from 36 to 27 values") and
by the update anomalies duplicate values cause.  This module turns
that motivation into a measurable report for any normalization result:

* per-relation and total stored-value counts before/after,
* per-column duplication in the original vs. where the column ended
  up (how many redundant copies of each value disappeared),
* the anomaly surface: how many cell *updates* a single logical change
  costs before vs. after (the paper's Mr.-Schmidt-becomes-mayor
  example: 3 cell updates before, 1 after).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import NormalizationResult

__all__ = ["ColumnRedundancy", "RedundancyReport", "redundancy_report"]


@dataclass(frozen=True, slots=True)
class ColumnRedundancy:
    """Duplication of one original column, before and after."""

    column: str
    relation_after: str
    values_before: int
    values_after: int
    distinct: int

    @property
    def redundant_before(self) -> int:
        """Stored copies beyond the first per distinct value, originally."""
        return self.values_before - self.distinct

    @property
    def redundant_after(self) -> int:
        return self.values_after - self.distinct

    @property
    def max_update_cost_before(self) -> int:
        """Worst-case cell updates to change one logical value, before."""
        return self.values_before - self.distinct + 1 if self.distinct else 0

    @property
    def max_update_cost_after(self) -> int:
        return self.values_after - self.distinct + 1 if self.distinct else 0


@dataclass(slots=True)
class RedundancyReport:
    """The savings of one normalization run."""

    original: str
    values_before: int
    values_after: int
    columns: list[ColumnRedundancy]

    @property
    def values_saved(self) -> int:
        return self.values_before - self.values_after

    @property
    def savings_ratio(self) -> float:
        if self.values_before == 0:
            return 0.0
        return self.values_saved / self.values_before

    def to_str(self) -> str:
        lines = [
            f"Redundancy report for {self.original!r}: "
            f"{self.values_before} -> {self.values_after} stored values "
            f"({self.savings_ratio:.0%} saved)"
        ]
        interesting = [
            col for col in self.columns if col.redundant_before > col.redundant_after
        ]
        interesting.sort(
            key=lambda col: col.redundant_after - col.redundant_before
        )
        for col in interesting:
            lines.append(
                f"  {col.column}: {col.values_before} -> {col.values_after} "
                f"copies ({col.distinct} distinct; worst-case update cost "
                f"{col.max_update_cost_before} -> {col.max_update_cost_after})"
            )
        return "\n".join(lines)


def redundancy_report(
    result: NormalizationResult, original_name: str
) -> RedundancyReport:
    """Account for every original column's duplication before and after.

    A column's "after" home is the final relation that contains it; the
    BCNF decomposition keeps each non-LHS attribute in exactly one
    relation, and shared LHS/foreign-key columns are charged to every
    relation storing them (they are the price of joinability).
    """
    original = result.originals.get(original_name)
    if original is None:
        raise ValueError(f"unknown original relation {original_name!r}")

    descendants = {original_name}
    for step in result.steps:
        if step.parent in descendants:
            descendants.discard(step.parent)
            descendants.add(step.r1)
            descendants.add(step.r2)

    columns: list[ColumnRedundancy] = []
    values_after_total = 0
    for column_index, column in enumerate(original.columns):
        homes = [
            result.instances[name]
            for name in descendants
            if column in result.instances[name].columns
        ]
        values_after = sum(instance.num_rows for instance in homes)
        values_after_total += values_after
        distinct = original.distinct_count(1 << column_index)
        columns.append(
            ColumnRedundancy(
                column=column,
                relation_after=",".join(sorted(h.name for h in homes)),
                values_before=original.num_rows,
                values_after=values_after,
                distinct=distinct,
            )
        )
    return RedundancyReport(
        original=original_name,
        values_before=original.num_values,
        values_after=values_after_total,
        columns=columns,
    )
