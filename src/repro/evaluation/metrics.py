"""Schema-recovery metrics against a gold standard (paper §8.3).

The paper judges normalization quality visually (Figures 3 and 4: "we
can identify all original relations in the normalized result").  To
make that comparable and regression-testable, this module quantifies
it:

* **attribute co-location** — treat each schema as a partition-ish
  grouping of attributes and compare the sets of *attribute pairs that
  share a relation*: precision (recovered pairs that are real), recall
  (real pairs that were recovered), F1,
* **relation recovery** — for every gold relation, the best-matching
  recovered relation by Jaccard similarity over attribute sets,
* **key accuracy** — among matched relations, how often the chosen
  primary key equals the gold key,
* **foreign-key accuracy** — how many gold foreign-key links (pairs of
  relations connected via a column) appear in the recovered schema.

Attributes listed in ``GoldRelation.wildcard`` (e.g. a constant column
like TPC-H's ``o_shippriority``, which any relation determines) are
excluded from the pair metrics — the paper itself treats their
placement as an understandable flaw, not an error of the method.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.model.schema import Schema

__all__ = ["GoldRelation", "SchemaRecoveryReport", "evaluate_schema_recovery"]


@dataclass(frozen=True, slots=True)
class GoldRelation:
    """One relation of the gold-standard schema, in universal-relation
    column names (after the denormalizing join collapsed FK/PK pairs)."""

    name: str
    columns: frozenset[str]
    key: frozenset[str]
    references: tuple[tuple[str, str], ...] = ()  # (via column, target relation)
    wildcard: frozenset[str] = frozenset()


@dataclass(slots=True)
class SchemaRecoveryReport:
    """All §8.3-style quality numbers of one normalization result."""

    pair_precision: float
    pair_recall: float
    pair_f1: float
    relation_matches: dict[str, tuple[str, float]]  # gold -> (recovered, jaccard)
    mean_jaccard: float
    perfectly_recovered: list[str]
    key_accuracy: float
    fk_recall: float
    num_recovered_relations: int
    notes: list[str] = field(default_factory=list)

    def to_str(self) -> str:
        lines = [
            f"attribute co-location: precision={self.pair_precision:.3f} "
            f"recall={self.pair_recall:.3f} f1={self.pair_f1:.3f}",
            f"mean best-match Jaccard: {self.mean_jaccard:.3f} "
            f"({len(self.perfectly_recovered)} gold relations exactly recovered)",
            f"key accuracy: {self.key_accuracy:.3f}",
            f"foreign-key recall: {self.fk_recall:.3f}",
            f"recovered relations: {self.num_recovered_relations}",
        ]
        for gold, (recovered, jaccard) in sorted(self.relation_matches.items()):
            marker = "=" if jaccard == 1.0 else "~"
            lines.append(f"  {marker} {gold} -> {recovered} (J={jaccard:.2f})")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def evaluate_schema_recovery(
    recovered: Schema, gold: list[GoldRelation]
) -> SchemaRecoveryReport:
    """Compare a recovered schema against the gold standard."""
    wildcard = frozenset(itertools.chain.from_iterable(g.wildcard for g in gold))

    gold_pairs = set()
    for relation in gold:
        scorable = sorted(relation.columns - wildcard)
        gold_pairs.update(itertools.combinations(scorable, 2))

    recovered_sets = {
        relation.name: frozenset(relation.columns) for relation in recovered
    }
    recovered_pairs = set()
    for columns in recovered_sets.values():
        scorable = sorted(columns - wildcard)
        recovered_pairs.update(itertools.combinations(scorable, 2))

    true_positives = len(gold_pairs & recovered_pairs)
    precision = true_positives / len(recovered_pairs) if recovered_pairs else 1.0
    recall = true_positives / len(gold_pairs) if gold_pairs else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )

    matches: dict[str, tuple[str, float]] = {}
    perfect: list[str] = []
    key_hits = 0
    key_total = 0
    for relation in gold:
        target = relation.columns - wildcard
        best_name, best_jaccard = "", 0.0
        for name, columns in recovered_sets.items():
            candidate = columns - wildcard
            union = len(target | candidate)
            jaccard = len(target & candidate) / union if union else 1.0
            if jaccard > best_jaccard:
                best_name, best_jaccard = name, jaccard
        matches[relation.name] = (best_name, best_jaccard)
        if best_jaccard == 1.0:
            perfect.append(relation.name)
        if relation.key and best_name:
            key_total += 1
            chosen = recovered[best_name].primary_key or ()
            if frozenset(chosen) == relation.key:
                key_hits += 1

    fk_gold = {
        (relation.name, via, target)
        for relation in gold
        for via, target in relation.references
    }
    fk_hits = 0
    for source, via, target in fk_gold:
        source_match = matches.get(source, ("", 0.0))[0]
        target_match = matches.get(target, ("", 0.0))[0]
        if not source_match or not target_match:
            continue
        for fk in recovered[source_match].foreign_keys:
            if fk.ref_relation == target_match and via in fk.columns:
                fk_hits += 1
                break

    return SchemaRecoveryReport(
        pair_precision=precision,
        pair_recall=recall,
        pair_f1=f1,
        relation_matches=matches,
        mean_jaccard=(
            sum(j for _, j in matches.values()) / len(matches) if matches else 1.0
        ),
        perfectly_recovered=sorted(perfect),
        key_accuracy=key_hits / key_total if key_total else 1.0,
        fk_recall=fk_hits / len(fk_gold) if fk_gold else 1.0,
        num_recovered_relations=len(recovered_sets),
    )
