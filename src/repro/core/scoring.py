"""Constraint scoring — the paper's §7 quality features.

All syntactically valid keys and violating FDs are equally *correct*;
the features below score how likely each is to be a semantically *true*
constraint, so candidates can be ranked for the (semi-)automatic
selection.  The formulas follow §7 exactly:

Primary-key candidates ``X`` (mean of three scores):

* length  — ``1/|X|``: designers prefer short keys,
* value   — ``1/max(1, maxlen(X) − 7)``: key values are short; values
  of multi-attribute keys are concatenated,
* position — ``(1/(left(X)+1) + 1/(between(X)+1)) / 2``: keys sit left
  and contiguous in the column order.

Violating FDs ``X → Y`` (mean of four scores):

* length  — ``(1/|X| + |Y|/(|R|−2)) / 2``: short LHS (it becomes a
  key), long RHS (larger split-off relation, higher confidence).  The
  RHS can be at most ``|R|−2`` attributes long, which normalizes the
  second term,
* value   — as for keys, on ``X``,
* position — ``(1/(between(X)+1) + 1/(between(Y)+1)) / 2``: coherent
  FDs have contiguous sides; the gap *between* the sides is ignored,
* duplication — ``(2 − uniq(X)/n − uniq(Y)/n) / 2``: many duplicates
  mean much removable redundancy, and duplicate LHS values that never
  violate the FD are evidence it is no accident.  Distinct counts are
  estimated with Bloom filters (``exact=True`` switches to exact
  counting, used by the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.attributes import bits_of, count_bits
from repro.model.fd import FD
from repro.model.instance import RelationInstance
from repro.structures.bloom import BloomFilter

__all__ = [
    "DistinctEstimator",
    "KeyScore",
    "ViolatingFDScore",
    "rank_keys",
    "rank_violating_fds",
    "score_key",
    "score_violating_fd",
]


# ----------------------------------------------------------------------
# Shared feature helpers
# ----------------------------------------------------------------------
def _length_score_key(mask: int) -> float:
    return 1.0 / max(1, count_bits(mask))


def _value_score(instance: RelationInstance, mask: int) -> float:
    return 1.0 / max(1, instance.max_value_length(mask) - 7)


def _left_count(mask: int) -> int:
    """Attributes positioned before the first attribute of ``mask``."""
    if not mask:
        return 0
    return (mask & -mask).bit_length() - 1


def _between_count(mask: int) -> int:
    """Non-member attributes between the first and last member of ``mask``."""
    if not mask:
        return 0
    span = mask.bit_length() - _left_count(mask)
    return span - count_bits(mask)


class DistinctEstimator:
    """Bloom-filter distinct-count estimation per attribute set (§7.2).

    One filter per queried mask, sized for the row count; estimates are
    cached.  ``exact=True`` bypasses the filters and counts exactly —
    slower, but useful as a baseline and in tests.
    """

    def __init__(self, instance: RelationInstance, exact: bool = False) -> None:
        self.instance = instance
        self.exact = exact
        self._cache: dict[int, float] = {}

    def distinct(self, mask: int) -> float:
        cached = self._cache.get(mask)
        if cached is None:
            if self.exact:
                cached = float(self.instance.distinct_count(mask))
            else:
                bloom = BloomFilter.with_capacity(max(16, self.instance.num_rows))
                for row in self.instance.iter_projected_rows(mask):
                    bloom.add(row)
                cached = bloom.estimated_cardinality()
            self._cache[mask] = cached
        return cached

    def duplication_ratio(self, mask: int) -> float:
        """``1 − uniq(mask)/n``, clamped into [0, 1]."""
        rows = self.instance.num_rows
        if rows == 0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.distinct(mask) / rows))


# ----------------------------------------------------------------------
# Primary-key scoring (§7.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class KeyScore:
    """A key candidate with its §7.1 feature scores."""

    key: int
    length_score: float
    value_score: float
    position_score: float

    @property
    def total(self) -> float:
        """Mean of the individual scores; a perfect key scores 1.0."""
        return (self.length_score + self.value_score + self.position_score) / 3.0


def score_key(instance: RelationInstance, key: int) -> KeyScore:
    """Score one key candidate of ``instance`` (bitmask) per §7.1."""
    position = 0.5 * (
        1.0 / (_left_count(key) + 1) + 1.0 / (_between_count(key) + 1)
    )
    return KeyScore(
        key=key,
        length_score=_length_score_key(key),
        value_score=_value_score(instance, key),
        position_score=position,
    )


def rank_keys(instance: RelationInstance, keys: list[int]) -> list[KeyScore]:
    """Score and rank key candidates, best first (deterministic ties)."""
    scored = [score_key(instance, key) for key in keys]
    scored.sort(key=lambda s: (-s.total, count_bits(s.key), s.key))
    return scored


# ----------------------------------------------------------------------
# Violating-FD scoring (§7.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ViolatingFDScore:
    """A violating FD with its §7.2 foreign-key-quality feature scores."""

    fd: FD
    length_score: float
    value_score: float
    position_score: float
    duplication_score: float

    @property
    def total(self) -> float:
        """Mean of the individual scores."""
        return (
            self.length_score
            + self.value_score
            + self.position_score
            + self.duplication_score
        ) / 4.0


def score_violating_fd(
    instance: RelationInstance,
    fd: FD,
    estimator: DistinctEstimator | None = None,
    features: tuple[str, ...] = ("length", "value", "position", "duplication"),
) -> ViolatingFDScore:
    """Score a violating FD as a foreign-key candidate per §7.2.

    ``features`` allows ablation: scores of disabled features are fixed
    to 0.5 (neutral), so the mean stays comparable.
    """
    if estimator is None:
        estimator = DistinctEstimator(instance)
    arity = instance.arity
    rhs_capacity = max(1, arity - 2)

    length = 0.5 * (
        1.0 / max(1, count_bits(fd.lhs)) + count_bits(fd.rhs) / rhs_capacity
    )
    value = _value_score(instance, fd.lhs)
    position = 0.5 * (
        1.0 / (_between_count(fd.lhs) + 1) + 1.0 / (_between_count(fd.rhs) + 1)
    )
    # 0.5 * (2 - uniq(X)/n - uniq(Y)/n) == 0.5 * (dup(X) + dup(Y))
    # with dup = 1 - uniq/n.
    if "duplication" in features:
        duplication = 0.5 * (
            estimator.duplication_ratio(fd.lhs)
            + estimator.duplication_ratio(fd.rhs)
        )
    else:
        duplication = 0.5
    return ViolatingFDScore(
        fd=fd,
        length_score=length if "length" in features else 0.5,
        value_score=value if "value" in features else 0.5,
        position_score=position if "position" in features else 0.5,
        duplication_score=duplication,
    )


def rank_violating_fds(
    instance: RelationInstance,
    violating: list[FD],
    estimator: DistinctEstimator | None = None,
    features: tuple[str, ...] = ("length", "value", "position", "duplication"),
) -> list[ViolatingFDScore]:
    """Score and rank violating FDs, best first (deterministic ties)."""
    if estimator is None:
        estimator = DistinctEstimator(instance)
    scored = [
        score_violating_fd(instance, fd, estimator, features) for fd in violating
    ]
    scored.sort(
        key=lambda s: (-s.total, count_bits(s.fd.lhs), s.fd.lhs, s.fd.rhs)
    )
    return scored


def shared_rhs_attributes(fd: FD, others: list[FD]) -> int:
    """RHS attributes of ``fd`` that other violating FDs also determine.

    The paper presents these to the user, who may remove them from the
    chosen FD's RHS so a later decomposition can use them (§7.2 end).
    """
    shared = 0
    for other in others:
        if other.lhs != fd.lhs or other.rhs != fd.rhs:
            shared |= fd.rhs & other.rhs
    return shared


def positions_of(mask: int) -> tuple[int, ...]:
    """Expose bit positions for reporting (thin wrapper over bits_of)."""
    return bits_of(mask)
