"""Key derivation from extended FDs (paper §5).

A key of relation ``R`` is an attribute set that functionally
determines all other attributes.  Given the *extended* FDs (RHSs
maximized by the closure), the keys among the FD LHSs are exactly those
with ``lhs ∪ rhs = R``.

This does **not** reveal every minimal key of the relation — the
paper's professor/teaches/class example shows a key that is no minimal
FD LHS — but Lemma 2 proves the derived keys are the only ones the
BCNF-violation check ever consults: any key contained in some FD's LHS
is itself a (fully extended) FD LHS.  The primary-key selection
component later runs full UCC discovery (DUCC) for relations that still
lack a key.
"""

from __future__ import annotations

from repro.model.fd import FDSet

__all__ = ["derive_keys"]


def derive_keys(extended_fds: FDSet, relation_mask: int) -> list[int]:
    """Return the FD-derivable keys of the relation as bitmasks.

    ``extended_fds`` must already be closed (each FD's ``lhs | rhs``
    equals the LHS's attribute closure); ``relation_mask`` is the full
    attribute mask of the relation.  The result is sorted for
    determinism.
    """
    keys = [
        lhs
        for lhs, rhs in extended_fds.items()
        if lhs | rhs == relation_mask
    ]
    keys.sort()
    return keys
