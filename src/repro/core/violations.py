"""Violating-FD identification (paper §6, Algorithm 4).

A relation is in BCNF iff every FD's LHS is a key or superkey.  With
the derived keys in a set-trie, the check per FD is one subset query:
if no key is a subset of the LHS, the FD violates BCNF.  On top of the
core check, Algorithm 4 adds three constraint-preservation rules:

* FDs whose LHS contains a NULL are skipped — the LHS would become a
  primary key after decomposition, and SQL forbids NULLs in keys,
* attributes of an existing primary key are removed from the violating
  RHS, so a decomposition can never tear the primary key apart,
* FDs whose decomposition would tear an existing foreign key apart
  (the FK overlaps the RHS but is not fully inside ``lhs ∪ rhs``) are
  skipped.

A ``target="3nf"`` mode additionally drops violating FDs that would
split the LHS of some other FD — 3NF is dependency-preserving, so no
decomposition may break a dependency other than the chosen one (§6).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.model.fd import FD, FDSet
from repro.structures.settrie import SetTrie

__all__ = ["find_violating_fds"]

_TARGETS = ("bcnf", "3nf")


def find_violating_fds(
    extended_fds: FDSet,
    keys: Sequence[int],
    null_mask: int = 0,
    primary_key: int = 0,
    foreign_keys: Sequence[int] = (),
    target: str = "bcnf",
) -> list[FD]:
    """Algorithm 4: the constraint-preserving BCNF (or 3NF) violations.

    ``null_mask`` flags attributes that contain NULLs; ``primary_key``
    and ``foreign_keys`` are masks of the relation's current
    constraints.  The returned FDs carry the (possibly reduced) RHS the
    decomposition step should use.
    """
    if target not in _TARGETS:
        raise ValueError(f"unknown target {target!r}; choose from {_TARGETS}")

    key_trie = SetTrie()
    for key in keys:
        key_trie.insert(key)

    violating: list[FD] = []
    for lhs, rhs in extended_fds.items():
        if lhs == 0:
            # Constant columns: every attribute set determines them, so
            # they travel to R2 with whichever decomposition includes
            # them in its RHS — but an empty LHS can never become a
            # key/foreign key itself (this reproduces the paper's
            # "shippriority lands in REGION" behaviour on TPC-H).
            continue
        if lhs & null_mask:
            continue  # NULL in LHS: cannot become a primary key
        if key_trie.contains_subset_of(lhs):
            continue  # LHS is a key or superkey: BCNF-conform
        if primary_key:
            rhs &= ~primary_key  # never tear the primary key apart
            if not rhs:
                continue
        if _breaks_foreign_key(lhs, rhs, foreign_keys):
            continue
        violating.append(FD(lhs, rhs))

    if target == "3nf":
        violating = _dependency_preserving_only(violating)
    return violating


def _breaks_foreign_key(lhs: int, rhs: int, foreign_keys: Sequence[int]) -> bool:
    """True iff decomposing on ``lhs → rhs`` would split some FK apart.

    After the split, an FK survives iff it lies fully in ``R1``
    (disjoint from the RHS) or fully in ``R2`` (inside ``lhs ∪ rhs``).
    """
    for fk in foreign_keys:
        if fk & rhs and fk & ~(lhs | rhs):
            return True
    return False


def _dependency_preserving_only(violating: list[FD]) -> list[FD]:
    """Drop violating FDs whose decomposition splits another one's LHS.

    §6: "remove all those groups of violating FDs … that are mutually
    exclusive, i.e., any FD that would split the Lhs of some other FD."
    Splitting on ``X → Y`` produces ``R1 = R \\ Y`` and ``R2 = X ∪ Y``;
    an LHS ``V`` is torn apart iff it fits in neither part, i.e. it
    overlaps ``Y`` *and* reaches outside ``X ∪ Y``.  The check runs
    against the other *violating* FDs (the mutually exclusive
    decomposition options), not against every accidental FD of the
    instance — otherwise spurious FDs would veto almost any split.
    """
    kept = []
    for fd in violating:
        splits_some_lhs = any(
            other.lhs != fd.lhs
            and other.lhs & fd.rhs
            and other.lhs & ~(fd.lhs | fd.rhs)
            for other in violating
        )
        if not splits_some_lhs:
            kept.append(fd)
    return kept
