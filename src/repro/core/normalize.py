"""Normalize — the data-driven (semi-)automatic normalization driver.

This is the paper's Figure 1 wired together:

1. FD discovery (any :class:`~repro.discovery.base.FDAlgorithm`,
   HyFD by default),
2. closure calculation (optimized by default — the discoverers
   guarantee complete minimal input),
3. key derivation,
4. violating-FD identification (BCNF by default, 3NF optional),
5. violating-FD selection (scored, ranked, decided),
6. schema decomposition — back to 3 for both halves,
7. primary-key selection (DUCC key discovery + scoring for relations
   that did not inherit a key).

Steps 3–6 loop per relation until it is conform or the decider stops;
steps 1–2 run once per input relation up front.

The pipeline is *resource-governed*: give it a
:class:`~repro.runtime.governor.Budget` and every hot loop becomes a
cooperative cancellation point.  On breach, discovery steps down the
degradation ladder (:func:`~repro.runtime.degrade.discover_with_ladder`)
and the decomposition loop finishes early with whatever is already
conform — the run always returns a usable, fidelity-tagged
:class:`~repro.core.result.NormalizationResult` instead of dying.
Decomposition on less-than-sound FD sets re-verifies the chosen FD
against the data before splitting, so degraded schemas stay lossless.

With a ``checkpoint_path`` the run journals discovered FD sets and
every decision to disk (atomically, after each event); a killed run
resumes via ``run(..., resume_state=load_state(path))`` and replays the
recorded prefix into the identical final schema.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.core.closure import calculate_closure
from repro.core.decomposition import decompose
from repro.core.key_derivation import derive_keys
from repro.core.result import DecompositionStep, NormalizationResult, PipelineStats
from repro.core.scoring import (
    DistinctEstimator,
    rank_keys,
    rank_violating_fds,
    shared_rhs_attributes,
)
from repro.core.selection import AutoDecider, Decider
from repro.core.violations import find_violating_fds
from repro.discovery.base import FDAlgorithm
from repro.discovery.ucc import DuccUCC
from repro.model.attributes import iter_bits
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.parallel import RelationRun, resolve_workers
from repro.runtime.checkpointing import PipelineState, save_state
from repro.runtime.degrade import (
    FidelityReport,
    RelationFidelity,
    discover_with_ladder,
)
from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    DegradedResultWarning,
    InputError,
)
from repro.runtime.governor import Budget, Governor, activate, suspended

__all__ = ["Normalizer", "normalize"]


@dataclass(slots=True)
class _WorkItem:
    instance: RelationInstance
    fds: FDSet  # extended (closed) FDs of this relation
    #: the FDs are a *complete* set of minimal FDs (exact discovery)
    exact: bool = True
    #: every FD is *known to hold* on the data (may still be incomplete)
    sound: bool = True
    #: parallel fan-out result: (FD fingerprint, keys, violating FDs).
    #: Consumed only while the fingerprint still matches ``fds`` — keys
    #: and violations are pure functions of the FD set and relation
    #: metadata, so a fresh serial computation would be identical.
    prefetch: tuple | None = None


class Normalizer:
    """Configurable Normalize pipeline.

    Parameters mirror the paper's degrees of freedom: the discovery
    algorithm, the closure algorithm, the normal form target, the
    decision maker, and the scoring mode (Bloom-estimated vs. exact
    distinct counts).

    Robustness knobs (all optional; the default pipeline is ungoverned
    and behaves exactly as before):

    * ``budget`` — resource ceilings enforced at cooperative
      checkpoints throughout the run,
    * ``degrade`` — on a discovery breach, walk the degradation ladder
      instead of propagating the breach,
    * ``sample_rows`` / ``approx_error`` — parameters of the ladder's
      sampled rung,
    * ``checkpoint_path`` — journal progress to this file after every
      discovery and decision (atomic writes),
    * ``fault_plan`` — deterministic fault injection for testing
      (:class:`~repro.runtime.faults.FaultPlan`).
    """

    def __init__(
        self,
        algorithm: FDAlgorithm | str = "hyfd",
        decider: Decider | None = None,
        target: str = "bcnf",
        closure_algorithm: str = "optimized",
        null_equals_null: bool = True,
        max_lhs_size: int | None = None,
        exact_distinct: bool = False,
        score_features: tuple[str, ...] = (
            "length",
            "value",
            "position",
            "duplication",
        ),
        ucc_seed: int = 42,
        budget: Budget | None = None,
        degrade: bool = True,
        sample_rows: int = 512,
        approx_error: float = 0.0,
        checkpoint_path: str | Path | None = None,
        fault_plan=None,
        workers: int | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if isinstance(algorithm, str):
            from repro.discovery.bruteforce import BruteForceFD
            from repro.discovery.dfd import DFD
            from repro.discovery.hyfd import HyFD
            from repro.discovery.tane import Tane

            registry = {
                "hyfd": HyFD,
                "tane": Tane,
                "dfd": DFD,
                "bruteforce": BruteForceFD,
            }
            if algorithm.lower() not in registry:
                raise InputError(
                    f"unknown FD algorithm {algorithm!r}; "
                    f"choose from {sorted(registry)}"
                )
            cls = registry[algorithm.lower()]
            kwargs = dict(
                null_equals_null=null_equals_null, max_lhs_size=max_lhs_size
            )
            if cls in (HyFD, Tane):
                kwargs["workers"] = self.workers
            algorithm = cls(**kwargs)
        self.algorithm = algorithm
        self.decider = decider if decider is not None else AutoDecider()
        self.target = target
        self.closure_algorithm = closure_algorithm
        self.null_equals_null = null_equals_null
        self.exact_distinct = exact_distinct
        self.score_features = score_features
        self.ucc_seed = ucc_seed
        self.budget = budget
        self.degrade = degrade
        self.sample_rows = sample_rows
        self.approx_error = approx_error
        self.checkpoint_path = checkpoint_path
        self.fault_plan = fault_plan
        #: Optional cache of steps 2–4 results, keyed by (relation name,
        #: closure algorithm, cover fingerprint).  The incremental engine
        #: installs a dict here so relations whose maintained cover did
        #: not change skip closure/key/violation recomputation entirely.
        #: Callers must feed canonically-ordered FD sets (same content ⇒
        #: same iteration order), which every discoverer guarantees.
        self.closure_cache: dict | None = None

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def run(
        self,
        data: RelationInstance | Iterable[RelationInstance],
        resume_state: PipelineState | None = None,
    ) -> NormalizationResult:
        """Normalize one or more relation instances into BCNF (or 3NF).

        Pass ``resume_state`` (from
        :func:`repro.runtime.checkpointing.load_state`) to continue a
        killed run: recorded discoveries and decisions are replayed,
        everything after the recorded prefix is recomputed.
        """
        inputs = [data] if isinstance(data, RelationInstance) else list(data)
        if not inputs:
            raise InputError("no input relations given")
        used_names = {instance.name for instance in inputs}
        if len(used_names) != len(inputs):
            raise InputError("input relation names must be unique")

        state = resume_state if resume_state is not None else PipelineState()
        if resume_state is not None:
            state.validate_against(self._config(), inputs)
            state.cursor = 0
            state.complete = False
        else:
            state.config = self._config()
            state.record_inputs(inputs)

        governor = self._make_governor()
        report = FidelityReport()

        timings: dict[str, float] = {
            "fd_discovery": 0.0,
            "closure": 0.0,
            "key_derivation": 0.0,
            "violation_detection": 0.0,
            "selection": 0.0,
            "decomposition": 0.0,
            "primary_key_selection": 0.0,
        }
        stats: list[PipelineStats] = []
        steps: list[DecompositionStep] = []
        stopped: list[str] = []

        with activate(governor):
            # Steps 1 + 2 per input relation, with Table 3 bookkeeping.
            queue: list[_WorkItem] = []
            discovered: dict[str, FDSet] = {}
            for instance in inputs:
                # Work on a fresh Relation object so callers' schemas
                # are never mutated.
                instance = instance.rename(instance.name)
                started = time.perf_counter()
                fds, fidelity = self._discover(instance, state, governor)
                discovery_seconds = time.perf_counter() - started
                discovered[instance.name] = fds.copy()
                report.relations[instance.name] = fidelity
                avg_before = fds.average_rhs_size()

                item = _WorkItem(
                    instance, fds, exact=fidelity.exact, sound=fidelity.sound
                )
                cache_key = None
                if self.closure_cache is not None:
                    cache_key = (
                        instance.name,
                        self._closure_for(fidelity),
                        tuple(sorted(fds.items())),
                    )
                cached = (
                    self.closure_cache.get(cache_key)
                    if cache_key is not None
                    else None
                )
                started = time.perf_counter()
                try:
                    if cached is not None:
                        # Cover unchanged since a previous run: reuse its
                        # closure and derived keys (the violating-FD scan
                        # here only feeds timing stats and is recomputed
                        # per work item anyway).
                        extended = cached[0].copy()
                        keys = list(cached[1])
                        closure_seconds = time.perf_counter() - started
                        key_seconds = violation_seconds = 0.0
                        item.fds = extended
                    else:
                        extended = calculate_closure(
                            fds,
                            self._closure_for(fidelity),
                            n_workers=self.workers,
                        )
                        closure_seconds = time.perf_counter() - started
                        item.fds = extended

                        started = time.perf_counter()
                        keys = derive_keys(extended, instance.full_mask())
                        key_seconds = time.perf_counter() - started

                        started = time.perf_counter()
                        find_violating_fds(
                            extended,
                            keys,
                            null_mask=self._null_mask(instance),
                            primary_key=instance.relation.primary_key_mask,
                            foreign_keys=instance.relation.foreign_key_masks(),
                            target=self.target,
                        )
                        violation_seconds = time.perf_counter() - started
                        if cache_key is not None:
                            self.closure_cache[cache_key] = (
                                extended.copy(),
                                list(keys),
                            )
                except BudgetExceeded as exc:
                    # Closure / key-derivation breached: keep the raw
                    # (unextended) FDs — fewer violations will be found,
                    # but every decomposition stays sound and lossless.
                    closure_seconds = key_seconds = violation_seconds = 0.0
                    keys = []
                    with suspended():
                        report.events.append(
                            f"closure truncated for {instance.name!r} by "
                            f"budget breach ({exc.reason}); proceeding "
                            "with unextended FDs"
                        )

                stats.append(
                    PipelineStats(
                        relation=instance.name,
                        num_attributes=instance.arity,
                        num_records=instance.num_rows,
                        num_fds=fds.count_single_rhs(),
                        num_fd_keys=len(keys),
                        avg_rhs_before_closure=avg_before,
                        avg_rhs_after_closure=item.fds.average_rhs_size(),
                        fd_discovery_seconds=discovery_seconds,
                        closure_seconds=closure_seconds,
                        key_derivation_seconds=key_seconds,
                        violation_detection_seconds=violation_seconds,
                    )
                )
                timings["fd_discovery"] += discovery_seconds
                timings["closure"] += closure_seconds
                timings["key_derivation"] += key_seconds
                timings["violation_detection"] += violation_seconds
                queue.append(item)

            # Steps 3–6: the decomposition loop.  With workers the
            # per-relation fan-out (key derivation + violating-FD
            # detection) of the whole queue is prefetched in parallel;
            # results are pure functions of each item's FD set, so the
            # schema produced is byte-identical to the serial loop.
            parallel = RelationRun(self.workers) if self.workers > 1 else None
            final: list[_WorkItem] = []
            try:
                while queue:
                    item = queue.pop()
                    try:
                        if parallel is not None:
                            self._prefetch_queue(item, queue, timings, parallel)
                        outcome = self._normalize_one(
                            item, used_names, steps, timings, stopped, state
                        )
                    except BudgetExceeded as exc:
                        final.append(item)
                        final.extend(queue)
                        queue.clear()
                        with suspended():
                            report.events.append(
                                "decomposition loop stopped by budget breach "
                                f"({exc.reason}); {len(final)} relation(s) "
                                "kept without further decomposition"
                            )
                        break
                    if outcome is None:
                        final.append(item)
                    else:
                        queue.extend(outcome)
            finally:
                if parallel is not None:
                    with suspended():
                        parallel.close()

            # Step 7: primary keys for relations that did not inherit one.
            started = time.perf_counter()
            for index, item in enumerate(final):
                try:
                    self._select_primary_key(item, state, report)
                except BudgetExceeded as exc:
                    with suspended():
                        report.events.append(
                            "primary-key selection stopped by budget "
                            f"breach ({exc.reason}); "
                            f"{len(final) - index} relation(s) left "
                            "without a selected key"
                        )
                    break
            timings["primary_key_selection"] += time.perf_counter() - started

        state.complete = True
        self._flush(state)

        if governor is not None and report.degraded:
            warnings.warn(
                DegradedResultWarning(
                    "normalization completed at reduced fidelity; see the "
                    "result's fidelity report"
                ),
                stacklevel=2,
            )

        return NormalizationResult(
            instances={item.instance.name: item.instance for item in final},
            steps=steps,
            stats=stats,
            timings=timings,
            originals={instance.name: instance for instance in inputs},
            stopped_relations=stopped,
            discovered_fds=discovered,
            fidelity=report if governor is not None else None,
        )

    # ------------------------------------------------------------------
    # Step 1: discovery (governed: the degradation ladder; replayed:
    # straight from the checkpoint)
    # ------------------------------------------------------------------
    def _discover(
        self,
        instance: RelationInstance,
        state: PipelineState,
        governor: Governor | None,
    ) -> tuple[FDSet, RelationFidelity]:
        name = instance.name
        recorded = state.discovered.get(name)
        if recorded is not None:
            fidelity = state.fidelity.get(name) or RelationFidelity(
                relation=name
            )
            return recorded.copy(), fidelity
        fds, fidelity = discover_with_ladder(
            instance,
            self.algorithm,
            governor=governor,
            degrade=self.degrade,
            sample_rows=self.sample_rows,
            approx_error=self.approx_error,
            seed=self.ucc_seed,
        )
        state.record_discovery(name, fds, fidelity)
        self._flush(state)
        return fds, fidelity

    # ------------------------------------------------------------------
    # Parallel fan-out over the decomposition queue
    # ------------------------------------------------------------------
    def _prefetch_queue(
        self,
        item: _WorkItem,
        queue: list[_WorkItem],
        timings: dict[str, float],
        parallel: RelationRun,
    ) -> None:
        """Fan the queue's key/violation computations out to the pool.

        Every pending relation (the one about to be processed plus the
        whole LIFO backlog) gets one ``keys_violations`` task; results
        are cached on the work items keyed by their FD-set fingerprint,
        so a later mutation of an item's FDs (degraded-mode refutation)
        simply invalidates its prefetch.
        """
        pending = [
            entry
            for entry in [item, *queue]
            if entry.prefetch is None
            or entry.prefetch[0] != tuple(entry.fds.items())
        ]
        if len(pending) < 2:
            return
        units = sum(
            entry.fds.count_single_rhs() * entry.instance.arity
            for entry in pending
        )
        if not parallel.should(units):
            return
        started = time.perf_counter()
        payloads = []
        for entry in pending:
            instance = entry.instance
            relation = instance.relation
            payloads.append(
                {
                    "num_attributes": instance.arity,
                    "items": list(entry.fds.items()),
                    "relation_mask": instance.full_mask(),
                    "null_mask": self._null_mask(instance),
                    "primary_key": relation.primary_key_mask,
                    "foreign_keys": list(relation.foreign_key_masks()),
                    "target": self.target,
                }
            )
        results = parallel.map(
            "keys_violations",
            payloads,
            stage="decompose-prefetch",
            items=len(pending),
        )
        for entry, payload, (keys, violating) in zip(
            pending, payloads, results
        ):
            entry.prefetch = (
                tuple(payload["items"]),
                list(keys),
                [FD(lhs, rhs) for lhs, rhs in violating],
            )
        timings["key_derivation"] += time.perf_counter() - started

    # ------------------------------------------------------------------
    # One iteration of steps 3–6 for a single relation
    # ------------------------------------------------------------------
    def _normalize_one(
        self,
        item: _WorkItem,
        used_names: set[str],
        steps: list[DecompositionStep],
        timings: dict[str, float],
        stopped: list[str],
        state: PipelineState,
    ) -> list[_WorkItem] | None:
        instance = item.instance
        relation = instance.relation

        prefetch = item.prefetch
        item.prefetch = None
        if prefetch is not None and prefetch[0] == tuple(item.fds.items()):
            keys, violating = list(prefetch[1]), list(prefetch[2])
        else:
            started = time.perf_counter()
            keys = derive_keys(item.fds, instance.full_mask())
            timings["key_derivation"] += time.perf_counter() - started

            started = time.perf_counter()
            violating = find_violating_fds(
                item.fds,
                keys,
                null_mask=self._null_mask(instance),
                primary_key=relation.primary_key_mask,
                foreign_keys=relation.foreign_key_masks(),
                target=self.target,
            )
            timings["violation_detection"] += time.perf_counter() - started
        if not violating:
            return None

        started = time.perf_counter()
        estimator = DistinctEstimator(instance, exact=self.exact_distinct)
        ranking = rank_violating_fds(
            instance, violating, estimator, self.score_features
        )

        recorded = state.next_decision("fd", instance.name)
        if recorded is not None and recorded["kind"] == "stop":
            stopped.append(instance.name)
            timings["selection"] += time.perf_counter() - started
            return None
        if recorded is not None:
            chosen = self._match_recorded(relation, ranking, recorded)
            choice = ranking.index(chosen)
            rhs = relation.mask_of(recorded["edited_rhs"])
            refuted = relation.mask_of(recorded.get("refuted_rhs", ()))
            if refuted:
                # Replay the degraded-mode refutation so the children's
                # projected FD sets match the recording run's exactly.
                item.fds.remove_masks(chosen.fd.lhs, refuted)
        else:
            choice = self.decider.choose_violating_fd(instance, ranking)
            if choice is None:
                stopped.append(instance.name)
                state.record_decision(
                    {"kind": "stop", "relation": instance.name}
                )
                self._flush(state)
                timings["selection"] += time.perf_counter() - started
                return None
            chosen = ranking[choice]
            shared = shared_rhs_attributes(
                chosen.fd, [score.fd for score in ranking]
            )
            rhs = self.decider.edit_rhs(instance, chosen, shared)

            refuted = 0
            if not item.sound:
                # Degraded FD sets may contain unvalidated candidates:
                # verify the FD actually holds before splitting on it —
                # this is what keeps degraded decompositions lossless.
                verified = self._verified_rhs(instance, chosen.fd.lhs, rhs)
                refuted = (rhs & ~chosen.fd.lhs) & ~verified
                if refuted:
                    item.fds.remove_masks(chosen.fd.lhs, refuted)
                if not verified:
                    # The whole candidate was bogus; re-rank without it.
                    timings["selection"] += time.perf_counter() - started
                    return [item]
                rhs = verified

            state.record_decision(
                {
                    "kind": "fd",
                    "relation": instance.name,
                    "lhs": list(relation.names_of(chosen.fd.lhs)),
                    "rhs": list(relation.names_of(chosen.fd.rhs)),
                    "edited_rhs": list(relation.names_of(rhs)),
                    "refuted_rhs": list(relation.names_of(refuted)),
                }
            )
            self._flush(state)
        timings["selection"] += time.perf_counter() - started

        started = time.perf_counter()
        lhs_names = relation.names_of(chosen.fd.lhs)
        r2_name = _fresh_name(f"{relation.name}_{lhs_names[0]}", used_names)
        outcome = decompose(instance, item.fds, FD(chosen.fd.lhs, rhs), r2_name)
        timings["decomposition"] += time.perf_counter() - started

        steps.append(
            DecompositionStep(
                parent=relation.name,
                parent_columns=relation.columns,
                r1=outcome.r1.name,
                r2=outcome.r2.name,
                lhs=lhs_names,
                rhs=relation.names_of(rhs & ~chosen.fd.lhs),
                chosen_rank=choice,
                num_candidates=len(ranking),
                score=chosen.total,
            )
        )
        return [
            _WorkItem(
                outcome.r1, outcome.r1_fds, exact=item.exact, sound=item.sound
            ),
            _WorkItem(
                outcome.r2, outcome.r2_fds, exact=item.exact, sound=item.sound
            ),
        ]

    @staticmethod
    def _match_recorded(relation, ranking, recorded):
        """Find the recorded decision's FD in the freshly computed ranking.

        Matching by content (attribute names) both restores the original
        choice and proves the replayed pipeline is still consistent with
        the checkpoint.
        """
        lhs = relation.mask_of(recorded["lhs"])
        rhs = relation.mask_of(recorded["rhs"])
        for entry in ranking:
            if entry.fd.lhs == lhs and entry.fd.rhs == rhs:
                return entry
        raise CheckpointError(
            "checkpoint replay diverged: recorded FD "
            f"{recorded['lhs']} -> {recorded['rhs']} is not among the "
            f"violating FDs of relation {relation.name!r}"
        )

    def _verified_rhs(
        self, instance: RelationInstance, lhs: int, rhs: int
    ) -> int:
        """The subset of ``rhs`` for which ``lhs → attr`` holds exactly."""
        from repro.extensions.approximate import g3_error

        verified = 0
        for attr in iter_bits(rhs & ~lhs):
            if g3_error(instance, lhs, attr, self.null_equals_null) == 0.0:
                verified |= 1 << attr
        return verified

    # ------------------------------------------------------------------
    # Step 7: primary-key selection
    # ------------------------------------------------------------------
    def _select_primary_key(
        self,
        item: _WorkItem,
        state: PipelineState,
        report: FidelityReport,
    ) -> None:
        relation = item.instance.relation
        if relation.primary_key is not None:
            return
        recorded = state.next_decision("key", item.instance.name)
        if recorded is not None:
            if recorded["key"] is not None:
                relation.primary_key = tuple(recorded["key"])
            return
        # The paper uses DUCC here: decompositions never assigned this
        # relation a key, and derived FD keys may miss minimal keys.
        try:
            uccs = DuccUCC(
                null_equals_null=self.null_equals_null, seed=self.ucc_seed
            ).discover(item.instance)
        except BudgetExceeded as exc:
            # The lattice search salvages verified minimal UCCs; choose
            # among those rather than leaving the relation keyless.
            if not isinstance(exc.partial, list) or not exc.partial:
                raise
            uccs = exc.partial
            with suspended():
                report.events.append(
                    f"key discovery for {item.instance.name!r} truncated "
                    f"by budget breach ({exc.reason}); choosing among "
                    f"{len(uccs)} salvaged key candidate(s)"
                )
        with suspended():
            null_mask = self._null_mask(item.instance)
            candidates = [key for key in uccs if key and not key & null_mask]
            key_names = None
            if candidates:
                ranking = rank_keys(item.instance, candidates)
                choice = self.decider.choose_primary_key(
                    item.instance, ranking
                )
                if choice is not None:
                    key_names = relation.names_of(ranking[choice].key)
                    relation.primary_key = key_names
            state.record_decision(
                {
                    "kind": "key",
                    "relation": item.instance.name,
                    "key": list(key_names) if key_names is not None else None,
                }
            )
            self._flush(state)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _make_governor(self) -> Governor | None:
        if self.budget is not None and not self.budget.unbounded:
            return Governor(self.budget, fault_plan=self.fault_plan)
        if self.fault_plan is not None:
            return Governor(self.budget or Budget(), fault_plan=self.fault_plan)
        return None

    def _closure_for(self, fidelity: RelationFidelity) -> str:
        """Degraded FD sets are not complete minimal input, which the
        optimized closure (Lemma 1) requires — fall back to improved."""
        if self.closure_algorithm == "optimized" and not fidelity.exact:
            return "improved"
        return self.closure_algorithm

    def _config(self) -> dict:
        return {
            "algorithm": getattr(
                self.algorithm, "name", type(self.algorithm).__name__
            ),
            "target": self.target,
            "closure_algorithm": self.closure_algorithm,
            "null_equals_null": self.null_equals_null,
            "max_lhs_size": getattr(self.algorithm, "max_lhs_size", None),
            "exact_distinct": self.exact_distinct,
            "score_features": list(self.score_features),
            "ucc_seed": self.ucc_seed,
            "sample_rows": self.sample_rows,
            "approx_error": self.approx_error,
        }

    def _flush(self, state: PipelineState) -> None:
        if self.checkpoint_path is None:
            return
        with suspended():
            save_state(state, self.checkpoint_path)

    @staticmethod
    def _null_mask(instance: RelationInstance) -> int:
        mask = 0
        for index in range(instance.arity):
            if any(value is None for value in instance.columns_data[index]):
                mask |= 1 << index
        return mask


def _fresh_name(base: str, used_names: set[str]) -> str:
    name = base
    suffix = 2
    while name in used_names:
        name = f"{base}_{suffix}"
        suffix += 1
    used_names.add(name)
    return name


def normalize(
    data: RelationInstance | Iterable[RelationInstance], **kwargs
) -> NormalizationResult:
    """One-call front door: ``normalize(instance)`` → BCNF schema.

    Keyword arguments are forwarded to :class:`Normalizer`.
    """
    return Normalizer(**kwargs).run(data)
