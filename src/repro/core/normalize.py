"""Normalize — the data-driven (semi-)automatic normalization driver.

This is the paper's Figure 1 wired together:

1. FD discovery (any :class:`~repro.discovery.base.FDAlgorithm`,
   HyFD by default),
2. closure calculation (optimized by default — the discoverers
   guarantee complete minimal input),
3. key derivation,
4. violating-FD identification (BCNF by default, 3NF optional),
5. violating-FD selection (scored, ranked, decided),
6. schema decomposition — back to 3 for both halves,
7. primary-key selection (DUCC key discovery + scoring for relations
   that did not inherit a key).

Steps 3–6 loop per relation until it is conform or the decider stops;
steps 1–2 run once per input relation up front.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.closure import calculate_closure
from repro.core.decomposition import decompose
from repro.core.key_derivation import derive_keys
from repro.core.result import DecompositionStep, NormalizationResult, PipelineStats
from repro.core.scoring import (
    DistinctEstimator,
    rank_keys,
    rank_violating_fds,
    shared_rhs_attributes,
)
from repro.core.selection import AutoDecider, Decider
from repro.core.violations import find_violating_fds
from repro.discovery.base import FDAlgorithm
from repro.discovery.ucc import DuccUCC
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance

__all__ = ["Normalizer", "normalize"]


@dataclass(slots=True)
class _WorkItem:
    instance: RelationInstance
    fds: FDSet  # extended (closed) FDs of this relation


class Normalizer:
    """Configurable Normalize pipeline.

    Parameters mirror the paper's degrees of freedom: the discovery
    algorithm, the closure algorithm, the normal form target, the
    decision maker, and the scoring mode (Bloom-estimated vs. exact
    distinct counts).
    """

    def __init__(
        self,
        algorithm: FDAlgorithm | str = "hyfd",
        decider: Decider | None = None,
        target: str = "bcnf",
        closure_algorithm: str = "optimized",
        null_equals_null: bool = True,
        max_lhs_size: int | None = None,
        exact_distinct: bool = False,
        score_features: tuple[str, ...] = (
            "length",
            "value",
            "position",
            "duplication",
        ),
        ucc_seed: int = 42,
    ) -> None:
        if isinstance(algorithm, str):
            from repro.discovery.bruteforce import BruteForceFD
            from repro.discovery.dfd import DFD
            from repro.discovery.hyfd import HyFD
            from repro.discovery.tane import Tane

            registry = {
                "hyfd": HyFD,
                "tane": Tane,
                "dfd": DFD,
                "bruteforce": BruteForceFD,
            }
            if algorithm.lower() not in registry:
                raise ValueError(
                    f"unknown FD algorithm {algorithm!r}; "
                    f"choose from {sorted(registry)}"
                )
            algorithm = registry[algorithm.lower()](
                null_equals_null=null_equals_null, max_lhs_size=max_lhs_size
            )
        self.algorithm = algorithm
        self.decider = decider if decider is not None else AutoDecider()
        self.target = target
        self.closure_algorithm = closure_algorithm
        self.null_equals_null = null_equals_null
        self.exact_distinct = exact_distinct
        self.score_features = score_features
        self.ucc_seed = ucc_seed

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def run(
        self, data: RelationInstance | Iterable[RelationInstance]
    ) -> NormalizationResult:
        """Normalize one or more relation instances into BCNF (or 3NF)."""
        inputs = [data] if isinstance(data, RelationInstance) else list(data)
        if not inputs:
            raise ValueError("no input relations given")
        used_names = {instance.name for instance in inputs}
        if len(used_names) != len(inputs):
            raise ValueError("input relation names must be unique")

        timings: dict[str, float] = {
            "fd_discovery": 0.0,
            "closure": 0.0,
            "key_derivation": 0.0,
            "violation_detection": 0.0,
            "selection": 0.0,
            "decomposition": 0.0,
            "primary_key_selection": 0.0,
        }
        stats: list[PipelineStats] = []
        steps: list[DecompositionStep] = []
        stopped: list[str] = []

        # Steps 1 + 2 per input relation, with Table 3 bookkeeping.
        queue: list[_WorkItem] = []
        discovered: dict[str, FDSet] = {}
        for instance in inputs:
            # Work on a fresh Relation object so callers' schemas are
            # never mutated.
            instance = instance.rename(instance.name)
            started = time.perf_counter()
            fds = self.algorithm.discover(instance)
            discovery_seconds = time.perf_counter() - started
            discovered[instance.name] = fds.copy()
            avg_before = fds.average_rhs_size()

            started = time.perf_counter()
            extended = calculate_closure(fds, self.closure_algorithm)
            closure_seconds = time.perf_counter() - started

            started = time.perf_counter()
            keys = derive_keys(extended, instance.full_mask())
            key_seconds = time.perf_counter() - started

            started = time.perf_counter()
            find_violating_fds(
                extended,
                keys,
                null_mask=self._null_mask(instance),
                primary_key=instance.relation.primary_key_mask,
                foreign_keys=instance.relation.foreign_key_masks(),
                target=self.target,
            )
            violation_seconds = time.perf_counter() - started

            stats.append(
                PipelineStats(
                    relation=instance.name,
                    num_attributes=instance.arity,
                    num_records=instance.num_rows,
                    num_fds=fds.count_single_rhs(),
                    num_fd_keys=len(keys),
                    avg_rhs_before_closure=avg_before,
                    avg_rhs_after_closure=extended.average_rhs_size(),
                    fd_discovery_seconds=discovery_seconds,
                    closure_seconds=closure_seconds,
                    key_derivation_seconds=key_seconds,
                    violation_detection_seconds=violation_seconds,
                )
            )
            timings["fd_discovery"] += discovery_seconds
            timings["closure"] += closure_seconds
            timings["key_derivation"] += key_seconds
            timings["violation_detection"] += violation_seconds
            queue.append(_WorkItem(instance, extended))

        # Steps 3–6: the decomposition loop.
        final: list[_WorkItem] = []
        while queue:
            item = queue.pop()
            outcome = self._normalize_one(item, used_names, steps, timings, stopped)
            if outcome is None:
                final.append(item)
            else:
                queue.extend(outcome)

        # Step 7: primary keys for relations that did not inherit one.
        started = time.perf_counter()
        for item in final:
            self._select_primary_key(item)
        timings["primary_key_selection"] += time.perf_counter() - started

        return NormalizationResult(
            instances={item.instance.name: item.instance for item in final},
            steps=steps,
            stats=stats,
            timings=timings,
            originals={instance.name: instance for instance in inputs},
            stopped_relations=stopped,
            discovered_fds=discovered,
        )

    # ------------------------------------------------------------------
    # One iteration of steps 3–6 for a single relation
    # ------------------------------------------------------------------
    def _normalize_one(
        self,
        item: _WorkItem,
        used_names: set[str],
        steps: list[DecompositionStep],
        timings: dict[str, float],
        stopped: list[str],
    ) -> list[_WorkItem] | None:
        instance = item.instance
        relation = instance.relation

        started = time.perf_counter()
        keys = derive_keys(item.fds, instance.full_mask())
        timings["key_derivation"] += time.perf_counter() - started

        started = time.perf_counter()
        violating = find_violating_fds(
            item.fds,
            keys,
            null_mask=self._null_mask(instance),
            primary_key=relation.primary_key_mask,
            foreign_keys=relation.foreign_key_masks(),
            target=self.target,
        )
        timings["violation_detection"] += time.perf_counter() - started
        if not violating:
            return None

        started = time.perf_counter()
        estimator = DistinctEstimator(instance, exact=self.exact_distinct)
        ranking = rank_violating_fds(
            instance, violating, estimator, self.score_features
        )
        choice = self.decider.choose_violating_fd(instance, ranking)
        if choice is None:
            stopped.append(instance.name)
            timings["selection"] += time.perf_counter() - started
            return None
        chosen = ranking[choice]
        shared = shared_rhs_attributes(chosen.fd, [score.fd for score in ranking])
        rhs = self.decider.edit_rhs(instance, chosen, shared)
        timings["selection"] += time.perf_counter() - started

        started = time.perf_counter()
        lhs_names = relation.names_of(chosen.fd.lhs)
        r2_name = _fresh_name(f"{relation.name}_{lhs_names[0]}", used_names)
        outcome = decompose(instance, item.fds, FD(chosen.fd.lhs, rhs), r2_name)
        timings["decomposition"] += time.perf_counter() - started

        steps.append(
            DecompositionStep(
                parent=relation.name,
                parent_columns=relation.columns,
                r1=outcome.r1.name,
                r2=outcome.r2.name,
                lhs=lhs_names,
                rhs=relation.names_of(rhs & ~chosen.fd.lhs),
                chosen_rank=choice,
                num_candidates=len(ranking),
                score=chosen.total,
            )
        )
        return [
            _WorkItem(outcome.r1, outcome.r1_fds),
            _WorkItem(outcome.r2, outcome.r2_fds),
        ]

    # ------------------------------------------------------------------
    # Step 7: primary-key selection
    # ------------------------------------------------------------------
    def _select_primary_key(self, item: _WorkItem) -> None:
        relation = item.instance.relation
        if relation.primary_key is not None:
            return
        # The paper uses DUCC here: decompositions never assigned this
        # relation a key, and derived FD keys may miss minimal keys.
        uccs = DuccUCC(
            null_equals_null=self.null_equals_null, seed=self.ucc_seed
        ).discover(item.instance)
        null_mask = self._null_mask(item.instance)
        candidates = [key for key in uccs if key and not key & null_mask]
        if not candidates:
            return  # no SQL-legal key exists; leave the relation as-is
        ranking = rank_keys(item.instance, candidates)
        choice = self.decider.choose_primary_key(item.instance, ranking)
        if choice is None:
            return
        relation.primary_key = relation.names_of(ranking[choice].key)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _null_mask(instance: RelationInstance) -> int:
        mask = 0
        for index in range(instance.arity):
            if any(value is None for value in instance.columns_data[index]):
                mask |= 1 << index
        return mask


def _fresh_name(base: str, used_names: set[str]) -> str:
    name = base
    suffix = 2
    while name in used_names:
        name = f"{base}_{suffix}"
        suffix += 1
    used_names.add(name)
    return name


def normalize(
    data: RelationInstance | Iterable[RelationInstance], **kwargs
) -> NormalizationResult:
    """One-call front door: ``normalize(instance)`` → BCNF schema.

    Keyword arguments are forwarded to :class:`Normalizer`.
    """
    return Normalizer(**kwargs).run(data)
