"""Closure calculation over sets of functional dependencies (paper §4).

Given FDs ``F``, the closure ``F+`` extends each FD's RHS with every
attribute transitively reachable from its LHS, so that for each
``X → Y ∈ F+`` we have ``X ∪ Y = X+``.  Reflexivity stays implicit
(LHS attributes are never copied to the RHS) and augmentation is never
needed, exactly as the paper argues.

Three algorithms, in the paper's order:

* :func:`naive_closure` (Algorithm 1) — repeated full passes over all
  FD pairs until a fixpoint; O(|fds|³),
* :func:`improved_closure` (Algorithm 2) — one LHS-trie per RHS
  attribute, so only FDs that can deliver a *missing* attribute are
  examined, with the change loop moved inside the FD loop; works for
  arbitrary FD sets; O(|fds|²),
* :func:`optimized_closure` (Algorithm 3) — requires the input to be a
  *complete set of minimal FDs*; Lemma 1 then guarantees that a single
  pass checking subsets of the (original) LHS suffices; O(|fds|).

Algorithms 2 and 3 can shard their FD loop over the process pool
(:mod:`repro.parallel`), reproducing the paper's parallelization: the
tries are built from the *original* FD pairs and never mutated, each
worker extends only its own FDs, so any sharding yields the serial
result exactly (the paper's "workers may, but need not, see other
workers' updates" holds trivially — updates are invisible across
processes).  The former ``ThreadPoolExecutor`` path was a GIL-bound
no-op and has been removed; the cost model keeps small FD sets on the
serial path.
"""

from __future__ import annotations

from repro.model.attributes import iter_bits
from repro.model.fd import FDSet
from repro.runtime.governor import checkpoint
from repro.structures.settrie import SetTrie

__all__ = [
    "calculate_closure",
    "improved_closure",
    "naive_closure",
    "optimized_closure",
]


def naive_closure(fds: FDSet) -> FDSet:
    """Algorithm 1: iterate all FD pairs until nothing changes."""
    pairs = [[lhs, rhs] for lhs, rhs in fds.items()]
    something_changed = True
    while something_changed:
        something_changed = False
        for fd in pairs:
            checkpoint("closure-naive")
            for other in pairs:
                if other[0] & ~(fd[0] | fd[1]):
                    continue  # other's LHS not contained in this FD
                additional = other[1] & ~(fd[0] | fd[1])
                if additional:
                    fd[1] |= additional
                    something_changed = True
    return _to_fdset(pairs, fds.num_attributes)


def improved_closure(fds: FDSet, n_workers: int = 1) -> FDSet:
    """Algorithm 2: per-RHS-attribute LHS tries + inner change loop.

    Correct for *arbitrary* FD sets (useful beyond normalization, e.g.
    query optimization or data cleansing, as the paper notes).
    """
    pairs = [[lhs, rhs] for lhs, rhs in fds.items()]
    _run("improved", pairs, fds.num_attributes, n_workers)
    return _to_fdset(pairs, fds.num_attributes)


def optimized_closure(fds: FDSet, n_workers: int = 1) -> FDSet:
    """Algorithm 3: single pass; requires a complete set of minimal FDs.

    By Lemma 1, if ``X → A`` is valid then some minimal ``X' ⊂ X`` with
    ``X' → A`` is in the input, so testing subsets of the *LHS alone*,
    once per missing attribute, is enough.
    """
    pairs = [[lhs, rhs] for lhs, rhs in fds.items()]
    _run("optimized", pairs, fds.num_attributes, n_workers)
    return _to_fdset(pairs, fds.num_attributes)


def calculate_closure(
    fds: FDSet, algorithm: str = "optimized", n_workers: int = 1
) -> FDSet:
    """Front door: compute ``F+`` with a named algorithm.

    ``"optimized"`` (default) assumes complete minimal input — which is
    what every discoverer in :mod:`repro.discovery` produces.
    """
    registry = {
        "naive": lambda f: naive_closure(f),
        "improved": lambda f: improved_closure(f, n_workers),
        "optimized": lambda f: optimized_closure(f, n_workers),
    }
    key = algorithm.lower()
    if key not in registry:
        raise ValueError(
            f"unknown closure algorithm {algorithm!r}; choose from {sorted(registry)}"
        )
    return registry[key](fds)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _build_lhs_tries(pairs: list[list[int]], num_attributes: int) -> list[SetTrie]:
    """One trie per RHS attribute holding the LHSs that deliver it."""
    tries = [SetTrie() for _ in range(num_attributes)]
    for lhs, rhs in pairs:
        for attr in iter_bits(rhs):
            tries[attr].insert(lhs)
    return tries


def _extend_improved(fd: list[int], tries: list[SetTrie], all_attrs: int) -> None:
    """Algorithm 2's per-FD extension: inner change loop over the tries."""
    checkpoint("closure-improved")
    something_changed = True
    while something_changed:
        something_changed = False
        for attr in iter_bits(all_attrs & ~(fd[0] | fd[1])):
            if tries[attr] and tries[attr].contains_subset_of(fd[0] | fd[1]):
                fd[1] |= 1 << attr
                something_changed = True


def _extend_optimized(fd: list[int], tries: list[SetTrie], all_attrs: int) -> None:
    """Algorithm 3's per-FD extension: one LHS-subset pass (Lemma 1)."""
    checkpoint("closure-optimized")
    for attr in iter_bits(all_attrs & ~(fd[0] | fd[1])):
        if tries[attr] and tries[attr].contains_subset_of(fd[0]):
            fd[1] |= 1 << attr


_EXTENDERS = {"improved": _extend_improved, "optimized": _extend_optimized}


def _run(
    algorithm: str, pairs: list[list[int]], num_attributes: int, n_workers: int
) -> None:
    """Apply the per-FD extension to every FD, sharded over the pool.

    Each worker extends only its own contiguous shard against tries
    built from the original pairs, so the merged result (written back
    in shard order) is exactly the serial one.  The cost model keeps
    small inputs serial; a parallel dispatch that breaches the active
    budget propagates :class:`BudgetExceeded` like a serial checkpoint
    would.
    """
    if n_workers > 1 and len(pairs) > 1:
        if _run_parallel(algorithm, pairs, num_attributes, n_workers):
            return
    extend = _EXTENDERS[algorithm]
    tries = _build_lhs_tries(pairs, num_attributes)
    all_attrs = (1 << num_attributes) - 1
    for fd in pairs:
        extend(fd, tries, all_attrs)


def _run_parallel(
    algorithm: str, pairs: list[list[int]], num_attributes: int, n_workers: int
) -> bool:
    """Dispatch the extension to the process pool; False → go serial."""
    from repro.parallel import get_pool, should_parallelize, split_ranges

    pool = get_pool(n_workers)
    if not should_parallelize(len(pairs) * max(num_attributes, 1), n_workers):
        pool.stats.serial_fallbacks += 1
        return False
    data = [(fd[0], fd[1]) for fd in pairs]
    payloads = [
        {
            "algorithm": algorithm,
            "pairs": data,
            "start": start,
            "stop": stop,
            "num_attributes": num_attributes,
        }
        for start, stop in split_ranges(len(pairs), pool.workers)
    ]
    pool.stats.shard_items += len(pairs)
    results = pool.map_tasks(
        "closure_shard", payloads, stage=f"closure-{algorithm}"
    )
    for payload, rhs_values in zip(payloads, results):
        for index, rhs in enumerate(rhs_values, start=payload["start"]):
            pairs[index][1] = rhs
    return True


def _to_fdset(pairs: list[list[int]], num_attributes: int) -> FDSet:
    out = FDSet(num_attributes)
    for lhs, rhs in pairs:
        out.add_masks(lhs, rhs)
    return out
