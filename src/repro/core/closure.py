"""Closure calculation over sets of functional dependencies (paper §4).

Given FDs ``F``, the closure ``F+`` extends each FD's RHS with every
attribute transitively reachable from its LHS, so that for each
``X → Y ∈ F+`` we have ``X ∪ Y = X+``.  Reflexivity stays implicit
(LHS attributes are never copied to the RHS) and augmentation is never
needed, exactly as the paper argues.

Three algorithms, in the paper's order:

* :func:`naive_closure` (Algorithm 1) — repeated full passes over all
  FD pairs until a fixpoint; O(|fds|³),
* :func:`improved_closure` (Algorithm 2) — one LHS-trie per RHS
  attribute, so only FDs that can deliver a *missing* attribute are
  examined, with the change loop moved inside the FD loop; works for
  arbitrary FD sets; O(|fds|²),
* :func:`optimized_closure` (Algorithm 3) — requires the input to be a
  *complete set of minimal FDs*; Lemma 1 then guarantees that a single
  pass checking subsets of the (original) LHS suffices; O(|fds|).

All three can shard their FD loop over a thread pool (the paper's
parallelization: each worker extends only its own FDs and may — but
need not — see other workers' updates).  CPython threads add no speed
here, but the parallel path exercises the same memory-visibility
argument and is covered by tests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.model.attributes import iter_bits
from repro.model.fd import FDSet
from repro.runtime.governor import checkpoint
from repro.structures.settrie import SetTrie

__all__ = [
    "calculate_closure",
    "improved_closure",
    "naive_closure",
    "optimized_closure",
]


def naive_closure(fds: FDSet) -> FDSet:
    """Algorithm 1: iterate all FD pairs until nothing changes."""
    pairs = [[lhs, rhs] for lhs, rhs in fds.items()]
    something_changed = True
    while something_changed:
        something_changed = False
        for fd in pairs:
            checkpoint("closure-naive")
            for other in pairs:
                if other[0] & ~(fd[0] | fd[1]):
                    continue  # other's LHS not contained in this FD
                additional = other[1] & ~(fd[0] | fd[1])
                if additional:
                    fd[1] |= additional
                    something_changed = True
    return _to_fdset(pairs, fds.num_attributes)


def improved_closure(fds: FDSet, n_workers: int = 1) -> FDSet:
    """Algorithm 2: per-RHS-attribute LHS tries + inner change loop.

    Correct for *arbitrary* FD sets (useful beyond normalization, e.g.
    query optimization or data cleansing, as the paper notes).
    """
    pairs = [[lhs, rhs] for lhs, rhs in fds.items()]
    tries = _build_lhs_tries(pairs, fds.num_attributes)
    all_attrs = (1 << fds.num_attributes) - 1

    def extend(fd: list[int]) -> None:
        checkpoint("closure-improved")
        something_changed = True
        while something_changed:
            something_changed = False
            for attr in iter_bits(all_attrs & ~(fd[0] | fd[1])):
                if tries[attr] and tries[attr].contains_subset_of(fd[0] | fd[1]):
                    fd[1] |= 1 << attr
                    something_changed = True

    _run(extend, pairs, n_workers)
    return _to_fdset(pairs, fds.num_attributes)


def optimized_closure(fds: FDSet, n_workers: int = 1) -> FDSet:
    """Algorithm 3: single pass; requires a complete set of minimal FDs.

    By Lemma 1, if ``X → A`` is valid then some minimal ``X' ⊂ X`` with
    ``X' → A`` is in the input, so testing subsets of the *LHS alone*,
    once per missing attribute, is enough.
    """
    pairs = [[lhs, rhs] for lhs, rhs in fds.items()]
    tries = _build_lhs_tries(pairs, fds.num_attributes)
    all_attrs = (1 << fds.num_attributes) - 1

    def extend(fd: list[int]) -> None:
        checkpoint("closure-optimized")
        for attr in iter_bits(all_attrs & ~(fd[0] | fd[1])):
            if tries[attr] and tries[attr].contains_subset_of(fd[0]):
                fd[1] |= 1 << attr

    _run(extend, pairs, n_workers)
    return _to_fdset(pairs, fds.num_attributes)


def calculate_closure(
    fds: FDSet, algorithm: str = "optimized", n_workers: int = 1
) -> FDSet:
    """Front door: compute ``F+`` with a named algorithm.

    ``"optimized"`` (default) assumes complete minimal input — which is
    what every discoverer in :mod:`repro.discovery` produces.
    """
    registry = {
        "naive": lambda f: naive_closure(f),
        "improved": lambda f: improved_closure(f, n_workers),
        "optimized": lambda f: optimized_closure(f, n_workers),
    }
    key = algorithm.lower()
    if key not in registry:
        raise ValueError(
            f"unknown closure algorithm {algorithm!r}; choose from {sorted(registry)}"
        )
    return registry[key](fds)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _build_lhs_tries(pairs: list[list[int]], num_attributes: int) -> list[SetTrie]:
    """One trie per RHS attribute holding the LHSs that deliver it."""
    tries = [SetTrie() for _ in range(num_attributes)]
    for lhs, rhs in pairs:
        for attr in iter_bits(rhs):
            tries[attr].insert(lhs)
    return tries


def _run(extend, pairs: list[list[int]], n_workers: int) -> None:
    """Apply ``extend`` to every FD, optionally sharded over threads.

    Each worker mutates only its own FDs; the tries are read-only.
    """
    if n_workers <= 1 or len(pairs) < 2:
        for fd in pairs:
            extend(fd)
        return
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        chunks = [pairs[i::n_workers] for i in range(n_workers)]

        def work(chunk: list[list[int]]) -> None:
            for fd in chunk:
                extend(fd)

        list(pool.map(work, chunks))


def _to_fdset(pairs: list[list[int]], num_attributes: int) -> FDSet:
    out = FDSet(num_attributes)
    for lhs, rhs in pairs:
        out.add_masks(lhs, rhs)
    return out
