"""Normal-form checking: the read-only inverse of Normalize.

Given an instance, report whether it satisfies BCNF (or 3NF/4NF) and,
if not, which dependencies violate it.  This is the question the
paper's step (4) answers internally — "Given a set of FDs and a
relational schema that embodies it, does the schema violate BCNF?"
(Beeri & Bernstein's NP-complete membership problem, §1) — exposed as
a public API so a user can audit existing schemas without normalizing
them.

The checker runs the same pipeline prefix as Normalize (discovery →
closure → key derivation → Algorithm 4), so its verdicts match what
the normalizer would act on, including the NULL/empty-LHS exemptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.closure import optimized_closure
from repro.core.key_derivation import derive_keys
from repro.core.violations import find_violating_fds
from repro.discovery.base import FDAlgorithm, discover_fds
from repro.model.fd import FD
from repro.model.instance import RelationInstance

__all__ = ["NormalFormReport", "check_normal_form"]


@dataclass(slots=True)
class NormalFormReport:
    """The verdict for one relation instance."""

    relation: str
    target: str
    conforms: bool
    violating_fds: list[FD] = field(default_factory=list)
    violating_mvds: list = field(default_factory=list)
    keys: list[int] = field(default_factory=list)
    num_fds: int = 0

    def to_str(self, columns) -> str:
        verdict = "conforms to" if self.conforms else "VIOLATES"
        lines = [
            f"{self.relation!r} {verdict} {self.target.upper()} "
            f"({self.num_fds} minimal FDs, {len(self.keys)} derivable keys)"
        ]
        for fd in self.violating_fds:
            lines.append(f"  violating FD:  {fd.to_str(columns)}")
        for mvd in self.violating_mvds:
            lines.append(f"  violating MVD: {mvd.to_str(columns)}")
        return "\n".join(lines)


def check_normal_form(
    instance: RelationInstance,
    target: str = "bcnf",
    algorithm: FDAlgorithm | str = "hyfd",
    null_equals_null: bool = True,
    max_mvd_lhs_size: int = 2,
) -> NormalFormReport:
    """Check one relation for BCNF / 3NF / 4NF conformance.

    ``target="4nf"`` additionally discovers MVDs (LHS size bounded by
    ``max_mvd_lhs_size``) and reports the non-FD MVDs whose LHS is no
    superkey; the FD part of the 4NF check is the BCNF check.
    """
    targets = ("bcnf", "3nf", "4nf")
    if target not in targets:
        raise ValueError(f"unknown target {target!r}; choose from {targets}")

    if isinstance(algorithm, str):
        fds = discover_fds(
            instance, algorithm, null_equals_null=null_equals_null
        )
    else:
        fds = algorithm.discover(instance)
    extended = optimized_closure(fds)
    keys = derive_keys(extended, instance.full_mask())

    null_mask = 0
    for index in range(instance.arity):
        if any(v is None for v in instance.columns_data[index]):
            null_mask |= 1 << index

    fd_target = "3nf" if target == "3nf" else "bcnf"
    violating = find_violating_fds(
        extended,
        keys,
        null_mask=null_mask,
        primary_key=instance.relation.primary_key_mask,
        foreign_keys=instance.relation.foreign_key_masks(),
        target=fd_target,
    )

    violating_mvds: list = []
    if target == "4nf" and instance.arity >= 3:
        from repro.discovery.ucc import DuccUCC
        from repro.extensions.mvd import discover_mvds
        from repro.structures.settrie import SetTrie

        key_trie = SetTrie()
        for key in DuccUCC(null_equals_null=null_equals_null).discover(
            instance
        ):
            key_trie.insert(key)
        for mvd in discover_mvds(
            instance,
            max_lhs_size=min(max_mvd_lhs_size, instance.arity - 2),
            null_equals_null=null_equals_null,
        ):
            if mvd.lhs == 0 or instance.has_null_in(mvd.lhs):
                continue
            if not key_trie.contains_subset_of(mvd.lhs):
                violating_mvds.append(mvd)

    return NormalFormReport(
        relation=instance.name,
        target=target,
        conforms=not violating and not violating_mvds,
        violating_fds=violating,
        violating_mvds=violating_mvds,
        keys=keys,
        num_fds=fds.count_single_rhs(),
    )
