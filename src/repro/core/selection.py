"""The decision layer: automatic, scripted, and interactive selection.

Normalize is "(semi-)automatic": at every decomposition the ranked
violating FDs are offered to a decision maker, who picks one, edits its
RHS, or stops normalizing the relation; the same happens for primary
keys at the end.  Three implementations cover the paper's usage modes:

* :class:`AutoDecider` — no user present: always take the top-ranked
  candidate (the paper's default behaviour and what §8.3 evaluates),
* :class:`ScriptedDecider` — a replayable sequence of answers; this is
  how "user sessions" are tested and how the CLI's batch mode works,
* :class:`CallbackDecider` — arbitrary callables, used by the
  interactive console front-end.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable

from repro.core.scoring import KeyScore, ViolatingFDScore
from repro.model.instance import RelationInstance

__all__ = ["AutoDecider", "CallbackDecider", "Decider", "ScriptedDecider"]


class Decider(abc.ABC):
    """Interface for the two §7 selection points (violating FD, key)."""

    @abc.abstractmethod
    def choose_violating_fd(
        self, instance: RelationInstance, ranking: list[ViolatingFDScore]
    ) -> int | None:
        """Pick an index into ``ranking``; ``None`` stops normalizing
        this relation (the user deems all candidates accidental)."""

    @abc.abstractmethod
    def choose_primary_key(
        self, instance: RelationInstance, ranking: list[KeyScore]
    ) -> int | None:
        """Pick an index into ``ranking``; ``None`` leaves the relation
        without a primary key."""

    def edit_rhs(
        self, instance: RelationInstance, chosen: ViolatingFDScore, shared_rhs: int
    ) -> int:
        """Optionally remove attributes from the chosen FD's RHS.

        ``shared_rhs`` flags RHS attributes that other violating FDs
        also determine (the paper shows these to the user).  Returns
        the RHS mask to decompose with; the default keeps everything —
        "If no user is present, nothing is removed" (§7.2).
        """
        return chosen.fd.rhs


class AutoDecider(Decider):
    """Fully automatic: always the top-ranked candidate, full RHS."""

    def choose_violating_fd(
        self, instance: RelationInstance, ranking: list[ViolatingFDScore]
    ) -> int | None:
        return 0 if ranking else None

    def choose_primary_key(
        self, instance: RelationInstance, ranking: list[KeyScore]
    ) -> int | None:
        return 0 if ranking else None


class ScriptedDecider(Decider):
    """Replays a fixed sequence of answers (a recorded user session).

    ``fd_choices`` and ``key_choices`` are consumed in call order; each
    entry is an index or ``None``.  When a sequence runs out the
    decider behaves like :class:`AutoDecider`.  ``rhs_edits`` maps the
    call ordinal to a set of attribute *names* to strip from the RHS.
    """

    def __init__(
        self,
        fd_choices: Iterable[int | None] = (),
        key_choices: Iterable[int | None] = (),
        rhs_edits: dict[int, frozenset[str]] | None = None,
    ) -> None:
        self._fd_choices = list(fd_choices)
        self._key_choices = list(key_choices)
        self._rhs_edits = dict(rhs_edits or {})
        self._fd_calls = 0
        self._key_calls = 0

    def choose_violating_fd(
        self, instance: RelationInstance, ranking: list[ViolatingFDScore]
    ) -> int | None:
        index = self._fd_calls
        self._fd_calls += 1
        if index < len(self._fd_choices):
            choice = self._fd_choices[index]
            if choice is not None and not 0 <= choice < len(ranking):
                raise IndexError(
                    f"scripted FD choice {choice} out of range "
                    f"(ranking has {len(ranking)} entries)"
                )
            return choice
        return 0 if ranking else None

    def choose_primary_key(
        self, instance: RelationInstance, ranking: list[KeyScore]
    ) -> int | None:
        index = self._key_calls
        self._key_calls += 1
        if index < len(self._key_choices):
            choice = self._key_choices[index]
            if choice is not None and not 0 <= choice < len(ranking):
                raise IndexError(
                    f"scripted key choice {choice} out of range "
                    f"(ranking has {len(ranking)} entries)"
                )
            return choice
        return 0 if ranking else None

    def edit_rhs(
        self, instance: RelationInstance, chosen: ViolatingFDScore, shared_rhs: int
    ) -> int:
        edit = self._rhs_edits.get(self._fd_calls - 1)
        if not edit:
            return chosen.fd.rhs
        strip = instance.relation.mask_of(edit)
        remaining = chosen.fd.rhs & ~strip
        if not remaining:
            raise ValueError("RHS edit would remove every RHS attribute")
        return remaining


class CallbackDecider(Decider):
    """Delegates every decision to user-supplied callables.

    Missing callbacks fall back to the automatic behaviour, so an
    interactive front-end can override only what it cares about.
    """

    def __init__(
        self,
        on_violating_fd: Callable[[RelationInstance, list[ViolatingFDScore]], int | None]
        | None = None,
        on_primary_key: Callable[[RelationInstance, list[KeyScore]], int | None]
        | None = None,
        on_edit_rhs: Callable[[RelationInstance, ViolatingFDScore, int], int]
        | None = None,
    ) -> None:
        self._on_violating_fd = on_violating_fd
        self._on_primary_key = on_primary_key
        self._on_edit_rhs = on_edit_rhs

    def choose_violating_fd(
        self, instance: RelationInstance, ranking: list[ViolatingFDScore]
    ) -> int | None:
        if self._on_violating_fd is None:
            return 0 if ranking else None
        return self._on_violating_fd(instance, ranking)

    def choose_primary_key(
        self, instance: RelationInstance, ranking: list[KeyScore]
    ) -> int | None:
        if self._on_primary_key is None:
            return 0 if ranking else None
        return self._on_primary_key(instance, ranking)

    def edit_rhs(
        self, instance: RelationInstance, chosen: ViolatingFDScore, shared_rhs: int
    ) -> int:
        if self._on_edit_rhs is None:
            return chosen.fd.rhs
        return self._on_edit_rhs(instance, chosen, shared_rhs)
