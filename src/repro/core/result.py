"""Result objects of a normalization run: log, timings, reconstruction.

:class:`NormalizationResult` carries everything a caller needs after
:func:`repro.core.normalize.normalize`:

* the final relation instances (with primary/foreign keys assigned),
* the decomposition log — one :class:`DecompositionStep` per split,
  including the ranked alternatives the decider saw,
* per-component timings and FD statistics (the paper's Table 3
  columns),
* :meth:`NormalizationResult.reconstruct` — the lossless-join guarantee
  made executable: natural-joining the parts back along the recorded
  foreign keys reproduces the original relation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.instance import RelationInstance
from repro.model.schema import Schema

__all__ = ["DecompositionStep", "NormalizationResult", "PipelineStats"]


@dataclass(slots=True)
class DecompositionStep:
    """One schema decomposition, as the decider saw it."""

    parent: str
    parent_columns: tuple[str, ...]
    r1: str
    r2: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    chosen_rank: int
    num_candidates: int
    score: float

    def to_str(self) -> str:
        lhs = ",".join(self.lhs)
        rhs = ",".join(self.rhs)
        return (
            f"{self.parent}: split on {lhs} -> {rhs} "
            f"(rank {self.chosen_rank + 1}/{self.num_candidates}, "
            f"score {self.score:.3f}) => {self.r1} + {self.r2}"
        )


@dataclass(slots=True)
class PipelineStats:
    """Per-input-relation statistics — the paper's Table 3 columns."""

    relation: str
    num_attributes: int
    num_records: int
    num_fds: int
    num_fd_keys: int
    avg_rhs_before_closure: float
    avg_rhs_after_closure: float
    fd_discovery_seconds: float
    closure_seconds: float
    key_derivation_seconds: float
    violation_detection_seconds: float


@dataclass(slots=True)
class NormalizationResult:
    """Everything produced by one Normalize run."""

    instances: dict[str, RelationInstance]
    steps: list[DecompositionStep]
    stats: list[PipelineStats]
    timings: dict[str, float] = field(default_factory=dict)
    originals: dict[str, RelationInstance] = field(default_factory=dict)
    stopped_relations: list[str] = field(default_factory=list)
    #: the minimal FDs discovered per *input* relation (before closure);
    #: reusable via PrecomputedFDs / save_fdset
    discovered_fds: dict = field(default_factory=dict)
    #: fidelity report of a resource-governed run (None for ungoverned
    #: runs); see :class:`repro.runtime.degrade.FidelityReport`
    fidelity: object = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The final schema (relations with their key constraints)."""
        return Schema(instance.relation for instance in self.instances.values())

    @property
    def total_values(self) -> int:
        """Total stored cells across the final relations.

        The paper reports normalization shrinking the address example
        from 36 to 27 values; compare with ``original_values``.
        """
        return sum(instance.num_values for instance in self.instances.values())

    @property
    def original_values(self) -> int:
        return sum(instance.num_values for instance in self.originals.values())

    def to_str(self) -> str:
        """Human-readable summary: schema, then the decomposition log."""
        lines = [self.schema.to_str()]
        if self.steps:
            lines.append("")
            lines.append("Decomposition log:")
            lines.extend(f"  {step.to_str()}" for step in self.steps)
        lines.append("")
        lines.append(
            f"values: {self.original_values} -> {self.total_values}"
        )
        if self.fidelity is not None:
            lines.append("")
            lines.append(self.fidelity.to_str())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Lossless-join reconstruction
    # ------------------------------------------------------------------
    def reconstruct(self, original_name: str) -> RelationInstance:
        """Rebuild an input relation by replaying decompositions backwards.

        Each decomposition is undone by joining ``R1`` with ``R2`` on the
        split FD's LHS.  The result has the original's column order, so
        equality with the input can be checked directly.
        """
        if original_name not in self.originals:
            raise ValueError(f"unknown original relation {original_name!r}")
        current = dict(self.instances)
        for step in reversed(self.steps):
            left = current.pop(step.r1)
            right = current.pop(step.r2)
            current[step.parent] = _join(
                left, right, step.lhs, step.parent, step.parent_columns
            )
        return current[original_name]


def _join(
    left: RelationInstance,
    right: RelationInstance,
    on: tuple[str, ...],
    name: str,
    column_order: tuple[str, ...],
) -> RelationInstance:
    """Natural join on ``on`` columns; ``right``'s join key is unique."""
    from repro.model.schema import Relation

    right_key_cols = [right.column(col) for col in on]
    right_rows: dict[tuple, tuple] = {}
    for index, key in enumerate(zip(*right_key_cols)):
        right_rows[key] = right.row(index)

    left_key_cols = [left.column(col) for col in on]
    left_positions = {col: i for i, col in enumerate(left.columns)}
    right_positions = {col: i for i, col in enumerate(right.columns)}

    rows = []
    for index, key in enumerate(zip(*left_key_cols)):
        match = right_rows.get(key)
        if match is None:
            raise ValueError(
                f"dangling foreign key {key!r} while reconstructing {name!r}"
            )
        left_row = left.row(index)
        combined = []
        for col in column_order:
            if col in left_positions:
                combined.append(left_row[left_positions[col]])
            else:
                combined.append(match[right_positions[col]])
        rows.append(tuple(combined))
    return RelationInstance.from_rows(Relation(name, column_order), rows)
