"""Schema decomposition (paper §3 step 6, justified by Lemma 3).

Splitting relation ``R`` on a violating FD ``X → Y`` yields

* ``R1 = R \\ Y`` — the original rows minus the redundant attributes;
  it keeps ``R``'s name, primary key, and every foreign key disjoint
  from ``Y``, plus a new foreign key on ``X`` referencing ``R2``,
* ``R2 = X ∪ Y`` — the *distinct* ``X ∪ Y`` rows; ``X`` becomes its
  primary key, and foreign keys fully inside ``X ∪ Y`` move here.

Lemma 3 guarantees the FDs of the parts are exactly the parent's FDs
projected onto their attributes, so the extended FD sets are projected
rather than re-discovered — this is what makes repeated decompositions
cheap.  Projection preserves minimality and completeness within each
part, keeping the optimized-closure invariants intact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.attributes import bits_of, iter_bits
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey

__all__ = ["DecompositionOutcome", "decompose", "project_fds"]


@dataclass(slots=True)
class DecompositionOutcome:
    """The two halves of a decomposition plus their projected FD sets."""

    r1: RelationInstance
    r2: RelationInstance
    r1_fds: FDSet
    r2_fds: FDSet


def decompose(
    instance: RelationInstance,
    extended_fds: FDSet,
    violating: FD,
    r2_name: str,
) -> DecompositionOutcome:
    """Split ``instance`` on the violating FD ``lhs → rhs``.

    ``extended_fds`` must be the relation's closed FD set; ``r2_name``
    names the split-off relation (callers use
    :meth:`~repro.model.schema.Schema.unique_name`).
    """
    relation = instance.relation
    full = instance.full_mask()
    rhs = violating.rhs & ~violating.lhs
    if not rhs:
        raise ValueError("violating FD has an empty effective RHS")
    if violating.lhs == 0:
        # An empty LHS (constant columns) cannot become a key/foreign
        # key; the violation detector never emits such FDs.
        raise ValueError("cannot decompose on an FD with an empty LHS")
    if (violating.lhs | rhs) & ~full:
        raise ValueError("violating FD mentions attributes outside the relation")

    r1_mask = full & ~rhs
    r2_mask = violating.lhs | rhs

    r1_instance = instance.project(r1_mask, name=relation.name)
    r2_instance = instance.project(r2_mask, name=r2_name, dedup=True)

    lhs_names = relation.names_of(violating.lhs)

    # --- Constraint wiring -------------------------------------------
    # R2: the violating LHS becomes the primary key.
    r2_relation = r2_instance.relation
    r2_relation.primary_key = lhs_names

    # R1: keep the parent's primary key (Algorithm 4 removed its
    # attributes from every violating RHS, so it survives intact) and
    # reference R2 via the LHS.
    r1_relation = r1_instance.relation
    r1_relation.primary_key = relation.primary_key
    r1_relation.foreign_keys.append(
        ForeignKey(lhs_names, r2_name, lhs_names)
    )

    # Distribute the parent's foreign keys: disjoint from the RHS they
    # stay in R1; otherwise Algorithm 4 guaranteed they fit inside R2.
    for fk in relation.foreign_keys:
        fk_mask = relation.mask_of(fk.columns)
        if fk_mask & rhs:
            r2_relation.foreign_keys.append(fk)
        else:
            r1_relation.foreign_keys.append(fk)

    # --- FD projection (Lemma 3) -------------------------------------
    r1_fds = project_fds(extended_fds, r1_mask, instance.arity)
    r2_fds = project_fds(extended_fds, r2_mask, instance.arity)
    return DecompositionOutcome(r1_instance, r2_instance, r1_fds, r2_fds)


def project_fds(extended_fds: FDSet, part_mask: int, parent_arity: int) -> FDSet:
    """Project a closed FD set onto the attributes of ``part_mask``.

    Keeps every FD whose LHS lies inside the part, restricted to the
    part's attributes, and renumbers attribute indices to the part's
    column positions.  By Lemma 3 the result is the part's complete
    extended FD set.
    """
    positions = bits_of(part_mask)
    renumber = {parent_index: child_index for child_index, parent_index in enumerate(positions)}
    projected = FDSet(len(positions))
    for lhs, rhs in extended_fds.items():
        if lhs & ~part_mask:
            continue
        kept_rhs = rhs & part_mask
        if not kept_rhs:
            continue
        projected.add_masks(
            _remap(lhs, renumber), _remap(kept_rhs, renumber)
        )
    return projected


def _remap(mask: int, renumber: dict[int, int]) -> int:
    out = 0
    for index in iter_bits(mask):
        out |= 1 << renumber[index]
    return out
