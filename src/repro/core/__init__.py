"""The Normalize pipeline — the paper's primary contribution.

Components (paper Figure 1):

* :mod:`repro.core.closure` — closure calculation over FD sets
  (Algorithms 1–3: naive, improved, optimized; §4),
* :mod:`repro.core.key_derivation` — keys from extended FDs (§5),
* :mod:`repro.core.violations` — BCNF/3NF violation detection
  (Algorithm 4; §6),
* :mod:`repro.core.scoring` — key and violating-FD quality features
  (§7),
* :mod:`repro.core.selection` — the (semi-)automatic decision layer:
  auto, scripted, and callback deciders,
* :mod:`repro.core.decomposition` — relation splitting with FD
  projection (Lemma 3) and constraint wiring,
* :mod:`repro.core.normalize` — the driver tying it all together,
* :mod:`repro.core.result` — result objects, logs, and reporting.
"""

from repro.core.closure import (
    calculate_closure,
    improved_closure,
    naive_closure,
    optimized_closure,
)
from repro.core.decomposition import decompose
from repro.core.key_derivation import derive_keys
from repro.core.normalize import Normalizer, normalize
from repro.core.result import DecompositionStep, NormalizationResult
from repro.core.scoring import (
    KeyScore,
    ViolatingFDScore,
    rank_keys,
    rank_violating_fds,
    score_key,
    score_violating_fd,
)
from repro.core.selection import (
    AutoDecider,
    CallbackDecider,
    Decider,
    ScriptedDecider,
)
from repro.core.violations import find_violating_fds

__all__ = [
    "AutoDecider",
    "CallbackDecider",
    "Decider",
    "DecompositionStep",
    "KeyScore",
    "NormalizationResult",
    "Normalizer",
    "ScriptedDecider",
    "ViolatingFDScore",
    "calculate_closure",
    "decompose",
    "derive_keys",
    "find_violating_fds",
    "improved_closure",
    "naive_closure",
    "normalize",
    "optimized_closure",
    "rank_keys",
    "rank_violating_fds",
    "score_key",
    "score_violating_fd",
]
