"""``repro serve`` — the multi-tenant normalization-as-a-service daemon.

ROADMAP item 1.  A stdlib-only asyncio HTTP/JSON server that keeps
per-tenant incremental-normalization sessions hot: upload a CSV once,
then stream change batches and read schema/DDL/migration views without
ever paying rediscovery.  See ``docs/SERVER.md`` for the protocol.

Layers (import order matters — lowest first):

* :mod:`repro.server.protocol` — HTTP/1.1 + JSON wire format,
* :mod:`repro.server.sessions` — per-tenant state, LRU/expiry,
  journal-backed durability,
* :mod:`repro.server.app` — routing, fairness gate, drain lifecycle,
* :mod:`repro.server.client` — the blocking client (``repro submit``,
  tests, benchmarks).
"""

from repro.server.app import ReproServer, ServerConfig, serve
from repro.server.client import ReproClient, ServerError
from repro.server.sessions import (
    Session,
    SessionExistsError,
    SessionOptions,
    SessionRegistry,
)

__all__ = [
    "ReproClient",
    "ReproServer",
    "ServerConfig",
    "ServerError",
    "Session",
    "SessionExistsError",
    "SessionOptions",
    "SessionRegistry",
    "serve",
]
