"""Per-tenant session state for the normalization daemon.

A **session** is one uploaded dataset plus the live machinery that
keeps its normalization hot: the
:class:`~repro.incremental.engine.IncrementalNormalizer` (which owns
the :class:`~repro.incremental.structures.LiveRelation` encoded
columns, the PLI caches, and the maintained
:class:`~repro.incremental.cover.IncrementalCover`), the accumulated
migration log, and the bookkeeping the registry needs for fairness and
eviction.  Repeat requests against a session never pay rediscovery —
that is the entire point of the daemon (ROADMAP item 1).

The :class:`SessionRegistry` maps ``(tenant, session_id)`` to sessions
with two bounded-resource policies on top:

* **LRU eviction** — above ``max_sessions`` the least-recently-used
  idle session is dropped from memory (its persisted form, if any,
  survives and revives on next touch);
* **idle expiry** — sessions untouched for ``idle_ttl`` seconds are
  dropped the same way.

Neither policy ever touches a session with in-flight work: eviction
candidates must have a zero ``busy`` count, so an active tenant cannot
lose its session mid-request (pinned by
``tests/test_server.py::TestEvictionSafety``).

**Durability.**  With a resume directory, every session persists its
three durable inputs — the raw uploaded CSV, the applied-batch change
log (JSONL, one fsynced append per batch), and the engine's incremental
journal (atomic rewrite after every batch, the same
:mod:`repro.incremental.journal` format the CLI uses) — plus the
accumulated migration log.  :meth:`SessionRegistry.revive` rebuilds a
session from that directory: if the journal is present the engine is
restored via :func:`~repro.incremental.journal.resume_engine` — covers
intact, **no rediscovery** — and only a missing/unreadable journal
falls back to a fresh discovery run.  The ``journal_hits`` /
``journal_misses`` / ``discovery_runs`` counters make the difference
observable (``GET /v1/stats``), which is how the kill-9 acceptance test
proves a restart never rediscovers.

Write ordering per batch: changelog append → engine apply (which
rewrites the journal) → migration-log rewrite.  A crash between the
first two leaves a changelog tail the journal has not seen; revival
replays the journaled prefix and then *applies* the tail through the
engine, so the session converges to the state the batch would have
produced.  A torn final changelog line (the append itself was cut) is
detected and dropped.  On a :class:`BudgetExceeded` inside an apply the
registry rolls the changelog back to its pre-batch length and drops the
in-memory engine, so the next touch revives the last journaled state.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from contextlib import ExitStack

from repro.incremental.changes import ChangeBatch
from repro.incremental.engine import BatchOutcome, IncrementalNormalizer
from repro.incremental.journal import resume_engine
from repro.io.csv_io import read_csv
from repro.model.instance import RelationInstance
from repro.runtime.errors import CheckpointError, InputError
from repro.runtime.governor import Budget, parse_duration, parse_memory
from repro.structures import storage

__all__ = [
    "Session",
    "SessionExistsError",
    "SessionOptions",
    "SessionRegistry",
]

#: tenants, session ids, and relation names become path components of
#: the resume directory; keep them boring
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_META_FILE = "meta.json"
_DATASET_FILE = "dataset.csv"
_CHANGES_FILE = "changes.jsonl"
_JOURNAL_FILE = "journal.json"
_MIGRATIONS_FILE = "migrations.json"


def validate_name(kind: str, value: str) -> str:
    """Validate a tenant/session/relation identifier (path-safe)."""
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise InputError(
            f"invalid {kind} {value!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], starting with a letter or digit"
        )
    return value


class SessionExistsError(InputError):
    """Duplicate ``(tenant, session_id)``; the app maps this to 409."""


@dataclass(frozen=True, slots=True)
class SessionOptions:
    """The per-session knob set; everything the engine config needs.

    Budget fields keep their human-readable CLI spellings (``"5s"``,
    ``"512MB"``) so the persisted form round-trips exactly and the
    served results stay byte-identical to an offline
    ``repro apply-batch`` run with the same flags.
    """

    algorithm: str = "hyfd"
    target: str = "bcnf"
    closure: str = "optimized"
    delimiter: str = ","
    has_header: bool = True
    csv_errors: str = "strict"
    deadline: str | None = None
    memory_limit: str | None = None
    max_candidates: int | None = None
    #: column-store residency policy for this session's encodings;
    #: ``None`` inherits the daemon-wide policy (--storage / env)
    storage: str | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("hyfd", "tane", "dfd", "bruteforce"):
            raise InputError(f"unknown algorithm {self.algorithm!r}")
        if self.target not in ("bcnf", "3nf"):
            raise InputError(
                f"unknown target {self.target!r} (the incremental engine "
                "maintains bcnf or 3nf)"
            )
        if self.closure not in ("naive", "improved", "optimized"):
            raise InputError(f"unknown closure algorithm {self.closure!r}")
        if self.csv_errors not in ("strict", "pad", "skip"):
            raise InputError(f"unknown csv_errors policy {self.csv_errors!r}")
        if self.storage is not None and self.storage not in storage.POLICY_CHOICES:
            raise InputError(
                f"unknown storage policy {self.storage!r}; choose from "
                f"{storage.POLICY_CHOICES}"
            )
        # Parse eagerly so a bad budget string is a 400 at session
        # creation, not a surprise inside the first governed batch.
        self.budget()

    def budget(self) -> Budget | None:
        if not (self.deadline or self.memory_limit or self.max_candidates):
            return None
        max_candidates = self.max_candidates
        if max_candidates is not None:
            max_candidates = int(max_candidates)
            if max_candidates <= 0:
                raise InputError("max_candidates must be positive")
        return Budget(
            deadline_seconds=(
                parse_duration(self.deadline) if self.deadline else None
            ),
            max_memory_bytes=(
                parse_memory(self.memory_limit) if self.memory_limit else None
            ),
            max_candidates=max_candidates,
        )

    def engine_kwargs(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "target": self.target,
            "closure_algorithm": self.closure,
            "budget": self.budget(),
        }

    def to_json(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "target": self.target,
            "closure": self.closure,
            "delimiter": self.delimiter,
            "has_header": self.has_header,
            "csv_errors": self.csv_errors,
            "deadline": self.deadline,
            "memory_limit": self.memory_limit,
            "max_candidates": self.max_candidates,
            "storage": self.storage,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SessionOptions":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_params(cls, params: dict) -> "SessionOptions":
        """Build options from query parameters (all strings)."""
        kwargs: dict = {}
        for key in ("algorithm", "target", "closure", "delimiter",
                    "deadline", "memory_limit", "csv_errors", "storage"):
            value = params.get(key)
            if value:
                kwargs[key] = value
        if params.get("max_candidates"):
            try:
                kwargs["max_candidates"] = int(params["max_candidates"])
            except ValueError:
                raise InputError(
                    f"max_candidates must be an integer, got "
                    f"{params['max_candidates']!r}"
                ) from None
        header = params.get("header")
        if header is not None:
            kwargs["has_header"] = header not in ("0", "false", "no")
        return cls(**kwargs)


class Session:
    """One tenant's live dataset + engine + bookkeeping."""

    __slots__ = (
        "tenant",
        "session_id",
        "relation_name",
        "options",
        "engine",
        "migration_log",
        "created_at",
        "last_used",
        "busy",
        "resumed_from_journal",
        "directory",
        "requests",
    )

    def __init__(
        self,
        tenant: str,
        session_id: str,
        relation_name: str,
        options: SessionOptions,
        engine: IncrementalNormalizer,
        directory: Path | None,
        resumed_from_journal: bool = False,
    ) -> None:
        self.tenant = tenant
        self.session_id = session_id
        self.relation_name = relation_name
        self.options = options
        self.engine = engine
        self.migration_log: list[str] = []
        self.created_at = time.time()
        self.last_used = time.monotonic()
        self.busy = 0
        self.resumed_from_journal = resumed_from_journal
        self.directory = directory
        self.requests = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.tenant, self.session_id)

    def touch(self) -> None:
        self.last_used = time.monotonic()
        self.requests += 1

    def info(self) -> dict:
        """The JSON view of this session (``GET /v1/sessions/{id}``)."""
        engine = self.engine
        live = engine.live(self.relation_name)
        return {
            "tenant": self.tenant,
            "session": self.session_id,
            "relation": self.relation_name,
            "columns": list(live.instance.columns),
            "rows": live.num_rows,
            "applied_batches": engine.applied_batches,
            "relations": len(engine.result.instances)
            if engine.result is not None
            else 0,
            "options": self.options.to_json(),
            "resumed_from_journal": self.resumed_from_journal,
            "persisted": self.directory is not None,
            "requests": self.requests,
            "created_at": self.created_at,
        }

    # ------------------------------------------------------------------
    # Batch application with durable write ordering
    # ------------------------------------------------------------------
    def apply_batch(self, batch: ChangeBatch) -> BatchOutcome:
        """Changelog append → engine apply (journals) → migration log.

        Raises whatever the engine raises; on :class:`BudgetExceeded`
        the caller (registry) rolls the changelog back and invalidates
        the in-memory engine so the journaled state is what survives.
        """
        self._append_changelog(batch)
        outcome = self.engine.apply_batch(batch)
        if outcome.schema_changed:
            self.migration_log.append(
                f"-- batch {outcome.batch_index} "
                f"({outcome.relation})\n" + outcome.migration.to_sql()
            )
        self._write_migrations()
        return outcome

    def migration_sql(self) -> str:
        """The accumulated migration plans, CLI ``--migration`` format."""
        return (
            "\n".join(self.migration_log)
            if self.migration_log
            else "-- No schema changes.\n"
        )

    # ------------------------------------------------------------------
    # Persistence plumbing
    # ------------------------------------------------------------------
    def _append_changelog(self, batch: ChangeBatch) -> None:
        if self.directory is None:
            return
        line = json.dumps(batch.to_json(), sort_keys=True)
        path = self.directory / _CHANGES_FILE
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def rollback_changelog(self, applied: int) -> None:
        """Truncate the changelog back to ``applied`` batches."""
        if self.directory is None:
            return
        path = self.directory / _CHANGES_FILE
        if not path.exists():
            return
        lines = path.read_text(encoding="utf-8").splitlines()[:applied]
        text = "".join(line + "\n" for line in lines)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def _write_migrations(self) -> None:
        if self.directory is None:
            return
        path = self.directory / _MIGRATIONS_FILE
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.migration_log, indent=2), encoding="utf-8"
        )
        os.replace(tmp, path)


def _load_changelog_lines(path: Path) -> list[ChangeBatch]:
    """Parse the session changelog, dropping a torn final line.

    A crash can cut the final append mid-line; that batch was never
    acknowledged nor applied, so dropping it is the correct recovery.
    A malformed line anywhere *else* means real corruption.
    """
    if not path.exists():
        return []
    lines = path.read_text(encoding="utf-8").splitlines()
    batches: list[ChangeBatch] = []
    for number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            batches.append(ChangeBatch.from_json(payload, coerce_str=True))
        except (ValueError, InputError) as exc:
            if number == len(lines) - 1:
                break  # torn tail append; the batch was never applied
            raise CheckpointError(
                f"changelog {path} line {number + 1} is corrupt: {exc}"
            ) from exc
    return batches


class SessionRegistry:
    """All live sessions + the LRU/expiry policies + durable storage."""

    def __init__(
        self,
        max_sessions: int = 64,
        idle_ttl: float = 3600.0,
        resume_dir: str | Path | None = None,
    ) -> None:
        if max_sessions < 1:
            raise InputError("max_sessions must be >= 1")
        if idle_ttl <= 0:
            raise InputError("idle_ttl must be positive")
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.resume_dir = Path(resume_dir) if resume_dir is not None else None
        if self.resume_dir is not None:
            self.resume_dir.mkdir(parents=True, exist_ok=True)
        #: insertion order == recency order (moved on every touch)
        self._sessions: dict[tuple[str, str], Session] = {}
        self.counters = {
            "sessions_created": 0,
            "sessions_revived": 0,
            "sessions_evicted": 0,
            "sessions_expired": 0,
            "sessions_deleted": 0,
            "journal_hits": 0,
            "journal_misses": 0,
            "discovery_runs": 0,
            "batches_applied": 0,
        }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, tenant: str, session_id: str) -> Session | None:
        session = self._sessions.get((tenant, session_id))
        if session is not None:
            self._touch(session)
        return session

    def _touch(self, session: Session) -> None:
        session.touch()
        # dicts preserve insertion order; re-inserting moves to the end,
        # which keeps iteration order == LRU order with O(1) updates.
        self._sessions.pop(session.key, None)
        self._sessions[session.key] = session

    def sessions_of(self, tenant: str) -> list[Session]:
        return [s for s in self._sessions.values() if s.tenant == tenant]

    def __len__(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Creation (runs in a worker thread — does discovery)
    # ------------------------------------------------------------------
    def create(
        self,
        tenant: str,
        csv_source: "bytes | str | Path",
        relation_name: str,
        options: SessionOptions,
        session_id: str | None = None,
    ) -> Session:
        """Ingest a dataset and run governed discovery + normalization.

        ``csv_source`` is either the raw CSV bytes or a *path* to a
        spooled upload (see :func:`repro.server.protocol.read_request`).
        A path is taken over: with persistence it is moved (renamed)
        into the session directory and parsed straight off disk, so the
        dataset never occupies the server's heap whole.
        """
        validate_name("tenant", tenant)
        validate_name("relation name", relation_name)
        if session_id is None:
            session_id = uuid.uuid4().hex[:12]
        validate_name("session id", session_id)
        if (tenant, session_id) in self._sessions or self._persisted_dir(
            tenant, session_id
        ):
            raise SessionExistsError(
                f"session {session_id!r} already exists for tenant "
                f"{tenant!r}",
            )

        source_path = (
            Path(csv_source) if isinstance(csv_source, (str, Path)) else None
        )
        directory = self._session_dir(tenant, session_id)
        journal_path = None
        created_directory = False
        if directory is not None:
            created_directory = not directory.exists()
            directory.mkdir(parents=True, exist_ok=True)
            dataset = directory / _DATASET_FILE
            if source_path is not None:
                shutil.move(str(source_path), dataset)
            else:
                dataset.write_bytes(csv_source)
            source_path = dataset
            journal_path = directory / _JOURNAL_FILE

        try:
            with self._session_storage(directory, options):
                instance = read_csv(
                    source_path if source_path is not None else csv_source,
                    name=relation_name,
                    delimiter=options.delimiter,
                    has_header=options.has_header,
                    on_error=options.csv_errors,
                )
                engine = IncrementalNormalizer(
                    instance,
                    journal_path=journal_path,
                    **options.engine_kwargs(),
                )
        except BaseException:
            # The dataset was moved in but the session never came to
            # exist (bad CSV, budget breach, ...); leave no half-made
            # directory behind.  meta.json is written only on success,
            # so a crash here can never revive as a broken session.
            if created_directory and directory is not None:
                shutil.rmtree(directory, ignore_errors=True)
            raise
        if directory is not None:
            meta = {
                "tenant": tenant,
                "session": session_id,
                "relation": relation_name,
                "options": options.to_json(),
            }
            (directory / _META_FILE).write_text(
                json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
            )
        self.counters["discovery_runs"] += 1
        session = Session(
            tenant, session_id, instance.name, options, engine, directory
        )
        self._register(session)
        self.counters["sessions_created"] += 1
        return session

    @staticmethod
    def _session_storage(
        directory: Path | None, options: SessionOptions
    ) -> ExitStack:
        """The storage context for one session's heavy work.

        Applies the session's residency policy override (if any) and —
        for persisted sessions — routes spill pages into the session's
        own ``spill/`` subdirectory so ``DELETE`` and daemon restarts
        reclaim them with the directory.
        """
        stack = ExitStack()
        stack.enter_context(storage.policy_override(options.storage))
        if directory is not None:
            stack.enter_context(
                storage.spill_dir_override(directory / "spill")
            )
        return stack

    # ------------------------------------------------------------------
    # Revival (runs in a worker thread — restores without rediscovery)
    # ------------------------------------------------------------------
    def has_persisted(self, tenant: str, session_id: str) -> bool:
        return self._persisted_dir(tenant, session_id) is not None

    def revive(self, tenant: str, session_id: str) -> Session:
        """Rebuild a persisted session; journal present ⇒ no rediscovery.

        Any changelog tail the journal has not seen (a crash between
        append and apply, or a budget rollback race) is applied through
        the engine, so the revived session converges to the last state
        the change stream describes.
        """
        directory = self._persisted_dir(tenant, session_id)
        if directory is None:
            raise InputError(
                f"no persisted session {session_id!r} for tenant {tenant!r}"
            )
        try:
            meta = json.loads(
                (directory / _META_FILE).read_text(encoding="utf-8")
            )
            options = SessionOptions.from_json(meta["options"])
            relation_name = meta["relation"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CheckpointError(
                f"session directory {directory} is corrupt: {exc}"
            ) from exc

        batches = _load_changelog_lines(directory / _CHANGES_FILE)
        journal_path = directory / _JOURNAL_FILE

        resumed = False
        with self._session_storage(directory, options):
            # The dataset is parsed off its on-disk path (not slurped
            # into bytes first); under a spill policy the revived
            # encodings land back in this session's spill/ directory.
            source = read_csv(
                directory / _DATASET_FILE,
                name=relation_name,
                delimiter=options.delimiter,
                has_header=options.has_header,
                on_error=options.csv_errors,
            )
            if journal_path.exists():
                engine = resume_engine(
                    [source],
                    batches,
                    journal_path,
                    **options.engine_kwargs(),
                )
                self.counters["journal_hits"] += 1
                resumed = True
            else:
                # The process died before the first journal write (or the
                # journal was lost); discovery is unavoidable exactly once.
                engine = IncrementalNormalizer(
                    source, journal_path=journal_path, **options.engine_kwargs()
                )
                self.counters["journal_misses"] += 1
                self.counters["discovery_runs"] += 1

        session = Session(
            tenant,
            session_id,
            relation_name,
            options,
            engine,
            directory,
            resumed_from_journal=resumed,
        )
        try:
            migrations = directory / _MIGRATIONS_FILE
            if migrations.exists():
                session.migration_log = list(
                    json.loads(migrations.read_text(encoding="utf-8"))
                )
        except (OSError, ValueError):
            session.migration_log = []

        # Converge: apply the changelog tail the journal never saw.
        with self._session_storage(directory, options):
            for batch in batches[engine.applied_batches:]:
                outcome = engine.apply_batch(batch)
                if outcome.schema_changed:
                    session.migration_log.append(
                        f"-- batch {outcome.batch_index} "
                        f"({outcome.relation})\n" + outcome.migration.to_sql()
                    )
                self.counters["batches_applied"] += 1
        session._write_migrations()

        self._register(session)
        self.counters["sessions_revived"] += 1
        return session

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def apply_batch(
        self, session: Session, batch: ChangeBatch
    ) -> BatchOutcome:
        """Apply one batch with budget-rollback semantics.

        On :class:`BudgetExceeded` the changelog is rolled back and the
        in-memory engine dropped; a persisted session revives at its
        last journaled (pre-batch) state on next touch, so a 429 means
        "not applied — retry with a bigger budget".  Without
        persistence the pre-batch state cannot be restored and the
        session is dropped outright (the 429 payload says so).
        """
        from repro.runtime.errors import BudgetExceeded

        applied_before = session.engine.applied_batches
        try:
            with self._session_storage(session.directory, session.options):
                outcome = session.apply_batch(batch)
        except BudgetExceeded:
            session.rollback_changelog(applied_before)
            self.discard(session)
            raise
        self.counters["batches_applied"] += 1
        return outcome

    # ------------------------------------------------------------------
    # Eviction policies
    # ------------------------------------------------------------------
    def _register(self, session: Session) -> None:
        self._sessions[session.key] = session
        self.evict_over_capacity()

    def evict_over_capacity(self) -> list[Session]:
        """Drop LRU idle sessions until within ``max_sessions``.

        Busy sessions are never dropped, and neither is the
        most-recently-used entry (the session just created or touched);
        if that leaves no victim the registry runs over capacity rather
        than killing live work.
        """
        evicted = []
        while len(self._sessions) > self.max_sessions:
            candidates = list(self._sessions.values())[:-1]
            victim = next(
                (s for s in candidates if s.busy == 0), None
            )
            if victim is None:
                break
            del self._sessions[victim.key]
            self.counters["sessions_evicted"] += 1
            evicted.append(victim)
        return evicted

    def expire_idle(self, now: float | None = None) -> list[Session]:
        """Drop sessions idle longer than ``idle_ttl`` (never busy ones)."""
        now = time.monotonic() if now is None else now
        expired = [
            s
            for s in self._sessions.values()
            if s.busy == 0 and now - s.last_used > self.idle_ttl
        ]
        for session in expired:
            del self._sessions[session.key]
            self.counters["sessions_expired"] += 1
        return expired

    def discard(self, session: Session) -> None:
        """Drop the in-memory engine only (persisted state survives)."""
        self._sessions.pop(session.key, None)

    def delete(self, session: Session) -> None:
        """Drop a session *and* its persisted state (``DELETE`` verb)."""
        self._sessions.pop(session.key, None)
        if session.directory is not None and session.directory.exists():
            shutil.rmtree(session.directory, ignore_errors=True)
        self.counters["sessions_deleted"] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "live_sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "idle_ttl_seconds": self.idle_ttl,
            "persistence": self.resume_dir is not None,
            **self.counters,
        }

    # ------------------------------------------------------------------
    # Disk layout
    # ------------------------------------------------------------------
    def _session_dir(self, tenant: str, session_id: str) -> Path | None:
        if self.resume_dir is None:
            return None
        # Every caller-supplied identifier becomes a path component
        # here; validating at the choke point means no lookup path
        # (has_persisted/revive/delete) can escape resume_dir even if a
        # route forgets to validate first.
        validate_name("tenant", tenant)
        validate_name("session id", session_id)
        return self.resume_dir / tenant / session_id

    def _persisted_dir(self, tenant: str, session_id: str) -> Path | None:
        directory = self._session_dir(tenant, session_id)
        if directory is None:
            return None
        if not (directory / _META_FILE).exists():
            return None
        return directory


# Re-exported for the app layer's width checks; not part of the public
# session API.
RelationInstance = RelationInstance
