"""Minimal HTTP/1.1 + JSON protocol layer for ``repro serve``.

The daemon speaks just enough HTTP/1.1 for real clients — request line,
headers, ``Content-Length`` bodies, keep-alive — over plain asyncio
streams.  No framework, no dependency: the whole wire format the server
understands fits in this module, and ``docs/SERVER.md`` documents it.

Deliberate restrictions (each one rejected with a structured status
instead of undefined behaviour):

* ``Transfer-Encoding: chunked`` requests → 501 (bodies must carry
  ``Content-Length``; every supported client does),
* header blocks over :data:`MAX_HEADER_BYTES` → 431,
* bodies over the server's configured limit → 413,
* anything else malformed → 400.

Responses are always framed with ``Content-Length`` so keep-alive needs
no chunking on the way out either.  JSON is the payload language of
every endpoint except the raw SQL/text views, and
:class:`ProtocolError` is the module's one exception: it carries the
status code the connection loop turns into a response.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "MAX_HEADER_BYTES",
    "DEFAULT_SPOOL_THRESHOLD",
    "ProtocolError",
    "error_payload",
    "Request",
    "Response",
    "STATUS_REASONS",
    "json_response",
    "read_request",
    "text_response",
    "write_response",
]

#: request line + header block ceiling; a client that needs more is
#: confused or hostile
MAX_HEADER_BYTES = 32 * 1024

#: bodies above this are spooled to disk instead of buffered in RAM
#: (uploaded CSVs used to cost O(dataset) heap per in-flight request)
DEFAULT_SPOOL_THRESHOLD = 1 * 1024 * 1024

#: read granularity while streaming a spooled body off the socket
_SPOOL_CHUNK = 64 * 1024

#: reason phrases for every status the server emits
STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_SERVER_NAME = "repro-serve"


class ProtocolError(Exception):
    """A request the protocol layer refuses; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass(slots=True)
class Request:
    """One parsed HTTP request.

    Large bodies are *spooled*: ``body`` stays empty and ``body_path``
    names an on-disk file holding the bytes (see :func:`read_request`).
    The connection loop owns the file's lifetime via
    :meth:`discard_body`; a handler that wants to keep the bytes (the
    upload endpoint) must move the file before the request completes.
    """

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    body_path: Path | None = None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def has_body(self) -> bool:
        return bool(self.body) or self.body_path is not None

    def json(self):
        """The body parsed as JSON; 400 on anything else."""
        body = self.body
        if not body and self.body_path is not None:
            try:
                body = self.body_path.read_bytes()
            except OSError as exc:
                raise ProtocolError(
                    400, f"spooled request body unreadable: {exc}"
                ) from None
        if not body:
            raise ProtocolError(400, "request body must be a JSON document")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                400, f"request body is not valid JSON: {exc}"
            ) from None

    def discard_body(self) -> None:
        """Delete the spool file, if any; idempotent, never raises."""
        if self.body_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.body_path)
            self.body_path = None

    def param(self, name: str, default: str | None = None) -> str | None:
        return self.query.get(name, default)


@dataclass(slots=True)
class Response:
    """One response about to be framed onto the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(payload, status: int = 200) -> Response:
    """A JSON response with deterministic serialization.

    ``sort_keys`` keeps the byte stream reproducible — differential
    tests diff raw response bodies against offline-CLI artifacts.
    """
    body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body + b"\n")


def text_response(
    text: str, status: int = 200, content_type: str = "text/plain"
) -> Response:
    return Response(
        status=status,
        body=text.encode("utf-8"),
        content_type=f"{content_type}; charset=utf-8",
    )


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    spool_dir: str | Path | None = None,
    spool_threshold: int = DEFAULT_SPOOL_THRESHOLD,
) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    A clean EOF before any byte of a request line means the client hung
    up between keep-alive requests — not an error.  EOF in the middle
    of a request is a 400.

    With ``spool_dir`` set, bodies larger than ``spool_threshold`` are
    streamed to a temp file there in :data:`_SPOOL_CHUNK` slices and
    surfaced as :attr:`Request.body_path` — the server never holds a
    whole uploaded dataset in its heap.  Oversized bodies are still
    refused with 413 straight from the ``Content-Length`` header,
    before a single body byte is read.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "request header block too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(431, "request header block too large")

    try:
        head_text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all
        raise ProtocolError(400, "undecodable request head") from None
    lines = head_text.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(
            501, "chunked request bodies are not supported; "
            "send Content-Length"
        )

    body = b""
    body_path: Path | None = None
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                400, f"malformed Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                413,
                f"request body of {length} bytes exceeds the server's "
                f"{max_body_bytes}-byte limit",
            )
        if spool_dir is not None and length > spool_threshold:
            body_path = await _spool_body(reader, length, spool_dir)
        else:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(
                    400, "connection closed mid-body"
                ) from None

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        body_path=body_path,
    )


async def _spool_body(
    reader: asyncio.StreamReader, length: int, spool_dir: str | Path
) -> Path:
    """Stream exactly ``length`` body bytes into a temp file."""
    directory = Path(spool_dir)
    directory.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        prefix="upload-", suffix=".body", dir=directory, delete=False
    )
    path = Path(handle.name)
    try:
        with handle:
            remaining = length
            while remaining:
                chunk = await reader.read(min(_SPOOL_CHUNK, remaining))
                if not chunk:
                    raise ProtocolError(400, "connection closed mid-body")
                handle.write(chunk)
                remaining -= len(chunk)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(path)
        raise
    return path


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    """Frame and flush one response."""
    reason = STATUS_REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Server: {_SERVER_NAME}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


def error_payload(status: int, code: str, message: str, **extra) -> dict:
    """The uniform error body: ``{"error": {...}}``."""
    payload = {"code": code, "message": message, "status": status}
    payload.update(extra)
    return {"error": payload}
