"""Blocking client for the ``repro serve`` daemon.

Backs ``repro submit``, the test suite, and the latency benchmark.
Stdlib only (:mod:`http.client`); one connection per request keeps the
failure modes simple, and the daemon's keep-alive is exercised by the
async tests instead.

>>> client = ReproClient("127.0.0.1", 8651, tenant="alice")
>>> info = client.create_session(csv_bytes, name="orders")
>>> client.apply_batch(info["session"], {"inserts": [["1", "2"]]})
>>> print(client.ddl(info["session"]))

Errors mirror the server's taxonomy: any non-2xx response raises
:class:`ServerError` carrying the status and the decoded
``{"error": {...}}`` payload.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from urllib.parse import urlencode

__all__ = ["ReproClient", "ServerError"]


class ServerError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: dict | None, body: bytes) -> None:
        self.status = status
        self.payload = payload or {}
        self.body = body
        error = (payload or {}).get("error", {})
        message = error.get("message") or body.decode("utf-8", "replace")
        super().__init__(f"HTTP {status}: {message}")

    @property
    def code(self) -> str:
        return self.payload.get("error", {}).get("code", "unknown")


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, socket_path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:  # pragma: no cover - trivial override
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ReproClient:
    """Thin blocking wrapper over the daemon's HTTP surface."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: str = "default",
        socket_path: str | None = None,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.socket_path = socket_path
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, dict[str, str], bytes]:
        """One raw request; returns (status, headers, body bytes)."""
        conn = self._connection()
        try:
            headers = {"X-Repro-Tenant": self.tenant}
            if body is not None:
                headers["Content-Type"] = content_type
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    def _json(
        self, method: str, path: str, body: bytes | None = None, **kwargs
    ) -> dict:
        status, _, data = self.request(method, path, body=body, **kwargs)
        payload = None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            pass
        if status >= 400:
            raise ServerError(status, payload, data)
        if payload is None and status != 204:
            raise ServerError(status, None, data)
        return payload if payload is not None else {}

    def _text(self, path: str) -> str:
        status, _, data = self.request("GET", path)
        if status >= 400:
            try:
                payload = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                payload = None
            raise ServerError(status, payload, data)
        return data.decode("utf-8")

    # ------------------------------------------------------------------
    # Readiness
    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> None:
        """Poll ``/healthz`` until the daemon answers (or raise)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                if self.health().get("status") == "ok":
                    return
            except (OSError, ServerError) as exc:
                last = exc
            time.sleep(interval)
        raise TimeoutError(
            f"daemon did not become ready within {timeout}s: {last}"
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def create_session(
        self,
        csv_bytes: bytes,
        name: str = "relation",
        session: str | None = None,
        **options: str,
    ) -> dict:
        """Upload a CSV and run governed discovery + normalization.

        ``options`` become query parameters (``algorithm``, ``target``,
        ``closure``, ``deadline``, ``memory_limit``, ``max_candidates``,
        ``delimiter``, ``header``, ``csv_errors``).
        """
        params = {"name": name, **options}
        if session is not None:
            params["session"] = session
        # urlencode: delimiters like '\t', ';', '&', '%' must survive
        # the query string intact (the server parse_qsl-decodes them).
        query = urlencode(params)
        return self._json(
            "POST",
            f"/v1/sessions?{query}",
            body=csv_bytes,
            content_type="text/csv",
        )

    def list_sessions(self) -> list[dict]:
        return self._json("GET", "/v1/sessions")["sessions"]

    def session_info(self, session: str) -> dict:
        return self._json("GET", f"/v1/sessions/{session}")

    def delete_session(self, session: str) -> None:
        self._json("DELETE", f"/v1/sessions/{session}")

    def normalize(self, session: str) -> dict:
        return self._json("POST", f"/v1/sessions/{session}/normalize")

    def apply_batch(self, session: str, batch: dict) -> dict:
        return self._json(
            "POST",
            f"/v1/sessions/{session}/batch",
            body=json.dumps(batch).encode("utf-8"),
        )

    def schema(self, session: str) -> dict:
        return self._json("GET", f"/v1/sessions/{session}/schema")

    def schema_text(self, session: str) -> str:
        return self._text(f"/v1/sessions/{session}/schema?format=text")

    def ddl(self, session: str) -> str:
        return self._text(f"/v1/sessions/{session}/ddl")

    def migration(self, session: str) -> str:
        return self._text(f"/v1/sessions/{session}/migration")
