"""The ``repro serve`` daemon: router, fairness gate, and lifecycle.

Layering: :mod:`repro.server.protocol` parses/frames HTTP,
:mod:`repro.server.sessions` owns per-tenant state, and this module
glues them together under asyncio:

* **Compute gate.**  The core library is single-threaded by design —
  the runtime governor tracks the active budget in a process-global,
  and the worker pool is one shared resource — so heavy work
  (discovery, revival, batch maintenance) *and every engine read*
  (schema/DDL/migration/normalize views) runs one-at-a-time in a
  worker thread via :func:`asyncio.to_thread` behind a global FIFO
  :class:`asyncio.Lock`; a read can therefore never observe a
  half-applied batch.  Fairness comes from the per-tenant
  :class:`asyncio.Semaphore` *in front* of that lock: a tenant can hold
  at most one slot in the gate's queue, so a burst of 50 requests from
  one tenant cannot starve another tenant's single request — the lock
  wakes waiters in arrival order and each tenant re-queues behind
  everyone else after every grant.

* **Error taxonomy → status codes.**  ``InputError`` → 400,
  ``BudgetExceeded`` → 429 (with the governed reason/stage/limit and
  fidelity tags in the payload), ``CheckpointError`` → 500,
  ``WorkerCrashError`` → 503, unknown session → 404, draining → 503.
  Every error body has the same shape:
  ``{"error": {"code", "message", "status", ...}}``.

* **Graceful drain.**  SIGINT/SIGTERM stop the listener, let in-flight
  requests finish (bounded by ``drain_timeout``), then release the
  worker pool and any owned shared-memory segments.  A second signal
  aborts immediately.

Result bytes are the offline CLI's bytes: ``/ddl`` serves exactly what
``repro --ddl`` writes, ``/migration`` exactly what
``repro apply-batch --migration`` writes.  The CI smoke job diffs them.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import sys
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.incremental.changes import ChangeBatch
from repro.io.serialization import schema_to_json
from repro.parallel import release_owned_segments, shutdown_pool
from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    InputError,
    WorkerCrashError,
)
from repro.server.protocol import (
    DEFAULT_SPOOL_THRESHOLD,
    ProtocolError,
    Request,
    Response,
    error_payload,
    json_response,
    read_request,
    text_response,
    write_response,
)
from repro.server.sessions import (
    Session,
    SessionExistsError,
    SessionOptions,
    SessionRegistry,
    validate_name,
)

__all__ = ["ServerConfig", "ReproServer", "serve"]

#: 64 MiB default request-body ceiling (uploaded CSVs)
DEFAULT_MAX_BODY = 64 * 1024 * 1024

TENANT_HEADER = "x-repro-tenant"
DEFAULT_TENANT = "default"


@dataclass(slots=True)
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0
    socket_path: str | None = None
    resume_dir: str | None = None
    max_sessions: int = 64
    idle_ttl: float = 3600.0
    max_body_bytes: int = DEFAULT_MAX_BODY
    drain_timeout: float = 10.0
    #: bodies above this stream to disk instead of the heap
    spool_threshold_bytes: int = DEFAULT_SPOOL_THRESHOLD


class _NotFound(Exception):
    """Unknown session/route; mapped to 404."""


class ReproServer:
    """One daemon instance: registry + routes + lifecycle."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.registry = SessionRegistry(
            max_sessions=self.config.max_sessions,
            idle_ttl=self.config.idle_ttl,
            resume_dir=self.config.resume_dir,
        )
        #: global FIFO gate serializing all heavy compute (the governor
        #: and the worker pool are process-global; see module docstring)
        self._compute_gate = asyncio.Lock()
        #: tenant → one-slot semaphore; the fairness layer
        self._tenant_sems: dict[str, asyncio.Semaphore] = {}
        self._shutdown = asyncio.Event()
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.requests_total = 0
        self._servers: list[asyncio.base_events.Server] = []
        self.bound_port: int | None = None
        #: where oversized request bodies stream to; inside --resume-dir
        #: when persistence is on (same filesystem as the session
        #: directories, so accepting an upload is a rename, not a copy)
        if self.config.resume_dir is not None:
            self._spool_dir = Path(self.config.resume_dir) / ".spool"
        else:
            import tempfile

            self._spool_dir = (
                Path(tempfile.gettempdir()) / f"repro-serve-spool-{os.getpid()}"
            )

    # ------------------------------------------------------------------
    # Fair compute gate
    # ------------------------------------------------------------------
    async def _run_heavy(self, tenant: str, fn, *args):
        """Run blocking library work with per-tenant fairness.

        The tenant semaphore admits one request per tenant into the
        global gate's FIFO queue; the gate serializes actual execution
        (governor + worker pool are process-global singletons).
        """
        sem = self._tenant_sems.setdefault(tenant, asyncio.Semaphore(1))
        async with sem:
            async with self._compute_gate:
                return await asyncio.to_thread(fn, *args)

    # ------------------------------------------------------------------
    # Session access
    # ------------------------------------------------------------------
    async def _session(self, tenant: str, session_id: str) -> Session:
        """In-memory lookup, falling back to a revival from disk."""
        validate_name("session id", session_id)
        session = self.registry.get(tenant, session_id)
        if session is not None:
            return session
        if self.registry.has_persisted(tenant, session_id):
            # Revival replays the journal (or, once, rediscovers); it is
            # heavy work and goes through the gate like everything else.
            session = await self._run_heavy(
                tenant, self._lookup_or_revive, tenant, session_id
            )
            return session
        raise _NotFound(
            f"no session {session_id!r} for tenant {tenant!r}"
        )

    def _lookup_or_revive(self, tenant: str, session_id: str) -> Session:
        """Runs under the compute gate: re-check, then revive.

        Between the loop-side ``registry.get`` miss and this call
        another request may already have revived the session; reviving
        again would register a duplicate engine sharing the same
        changelog/journal files.  The re-check under the gate makes
        revival once-only.
        """
        existing = self.registry.get(tenant, session_id)
        if existing is not None:
            return existing
        return self.registry.revive(tenant, session_id)

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._draining:
                try:
                    request = await read_request(
                        reader,
                        self.config.max_body_bytes,
                        spool_dir=self._spool_dir,
                        spool_threshold=self.config.spool_threshold_bytes,
                    )
                except ProtocolError as exc:
                    response = json_response(
                        error_payload(exc.status, "protocol_error", str(exc)),
                        status=exc.status,
                    )
                    with contextlib.suppress(ConnectionError):
                        await write_response(writer, response, False)
                    return
                if request is None:
                    return
                self._inflight += 1
                self._idle.clear()
                self.requests_total += 1
                try:
                    response = await self._dispatch(request)
                finally:
                    # The upload endpoint moves the spool file into the
                    # session directory; for every other outcome the
                    # file is garbage once the request completes.
                    request.discard_body()
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                keep_alive = request.keep_alive and not self._draining
                with contextlib.suppress(ConnectionError):
                    await write_response(writer, response, keep_alive)
                if not keep_alive:
                    return
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Routing + error taxonomy
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Response:
        tenant = request.headers.get(TENANT_HEADER, DEFAULT_TENANT)
        try:
            # The tenant header becomes a resume-dir path component; a
            # traversal like '../../target' must die here, before any
            # route can hand it to the registry.
            validate_name("tenant", tenant)
            if self._draining:
                return json_response(
                    error_payload(
                        503, "draining", "server is shutting down"
                    ),
                    status=503,
                )
            return await self._route(tenant, request)
        except ProtocolError as exc:
            return json_response(
                error_payload(exc.status, "protocol_error", str(exc)),
                status=exc.status,
            )
        except _NotFound as exc:
            return json_response(
                error_payload(404, "not_found", str(exc)), status=404
            )
        except BudgetExceeded as exc:
            payload = error_payload(
                429,
                "budget_exceeded",
                str(exc),
                reason=exc.reason,
                stage=exc.stage,
                limit=exc.limit,
                observed=exc.observed,
                elapsed_seconds=exc.elapsed_seconds,
                fidelity="none",
                retryable=self.registry.resume_dir is not None,
            )
            return json_response(payload, status=429)
        except SessionExistsError as exc:
            # Both the pre-check and the registry's own duplicate
            # detection (reached on a create/create race) land here, so
            # the conflict is 409 regardless of timing.
            return json_response(
                error_payload(409, "session_exists", str(exc)), status=409
            )
        except InputError as exc:
            extra = getattr(exc, "context", None) or {}
            return json_response(
                error_payload(400, "input_error", str(exc), **extra),
                status=400,
            )
        except WorkerCrashError as exc:
            return json_response(
                error_payload(503, "worker_crash", str(exc)), status=503
            )
        except CheckpointError as exc:
            return json_response(
                error_payload(500, "checkpoint_error", str(exc)), status=500
            )
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            traceback.print_exc(file=sys.stderr)
            return json_response(
                error_payload(
                    500, "internal_error", f"{type(exc).__name__}: {exc}"
                ),
                status=500,
            )

    async def _route(self, tenant: str, request: Request) -> Response:
        method, path = request.method, request.path.rstrip("/") or "/"

        if path == "/healthz":
            self._need(method, "GET")
            return json_response(
                {"status": "ok", "draining": self._draining}
            )
        if path == "/v1/stats":
            self._need(method, "GET")
            return json_response(self._stats())
        if path == "/v1/sessions":
            if method == "POST":
                return await self._create_session(tenant, request)
            self._need(method, "GET")
            infos = await self._run_heavy(
                tenant,
                lambda: [
                    s.info() for s in self.registry.sessions_of(tenant)
                ],
            )
            return json_response({"sessions": infos})

        parts = path.split("/")
        # /v1/sessions/{sid}[/{verb}]
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "sessions":
            session_id = parts[3]
            verb = parts[4] if len(parts) == 5 else None
            if len(parts) > 5:
                raise _NotFound(f"no route {path!r}")
            return await self._session_route(
                tenant, session_id, verb, method, request
            )
        raise _NotFound(f"no route {path!r}")

    @staticmethod
    def _need(method: str, *allowed: str) -> None:
        if method not in allowed:
            raise ProtocolError(
                405, f"method {method} not allowed here (use "
                f"{', '.join(allowed)})"
            )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _create_session(
        self, tenant: str, request: Request
    ) -> Response:
        if not request.has_body:
            raise InputError(
                "session creation needs the dataset CSV as the request body"
            )
        options = SessionOptions.from_params(request.query)
        name = request.param("name") or "relation"
        session_id = request.param("session")
        if session_id is not None:
            validate_name("session id", session_id)
            if (
                self.registry.get(tenant, session_id) is not None
                or self.registry.has_persisted(tenant, session_id)
            ):
                # Fast-path refusal; a create/create race that slips
                # past this raises the same SessionExistsError from
                # registry.create, so both paths surface as 409.
                raise SessionExistsError(
                    f"session {session_id!r} already exists for tenant "
                    f"{tenant!r}"
                )
        session = await self._run_heavy(
            tenant,
            self.registry.create,
            tenant,
            # A spooled upload is handed over as its file path; the
            # registry takes ownership (moves it into the session
            # directory) and the CSV is parsed straight off disk.
            request.body_path if request.body_path is not None else request.body,
            name,
            options,
            session_id,
        )
        return json_response(session.info(), status=201)

    async def _session_route(
        self,
        tenant: str,
        session_id: str,
        verb: str | None,
        method: str,
        request: Request,
    ) -> Response:
        session = await self._session(tenant, session_id)

        if verb is None:
            if method == "DELETE":
                if session.busy:
                    return json_response(
                        error_payload(
                            409,
                            "session_busy",
                            "session has in-flight work; retry",
                        ),
                        status=409,
                    )
                self.registry.delete(session)
                return Response(status=204)
            self._need(method, "GET")
            return json_response(await self._run_heavy(tenant, session.info))

        # Reads go through the gate too: a /batch for the same session
        # mutates the engine in a worker thread, and the gate is what
        # keeps these views from observing a half-applied batch.
        if verb == "schema":
            self._need(method, "GET")
            if request.param("format") == "text":
                text = await self._run_heavy(
                    tenant, lambda: session.engine.schema.to_str() + "\n"
                )
                return text_response(text)
            payload = await self._run_heavy(
                tenant, lambda: schema_to_json(session.engine.schema)
            )
            return json_response(payload)
        if verb == "ddl":
            self._need(method, "GET")
            ddl = await self._run_heavy(tenant, lambda: session.engine.ddl())
            return text_response(ddl, content_type="application/sql")
        if verb == "migration":
            self._need(method, "GET")
            sql = await self._run_heavy(tenant, session.migration_sql)
            return text_response(sql, content_type="application/sql")
        if verb == "normalize":
            self._need(method, "POST")
            view = await self._run_heavy(tenant, self._normalize_view, session)
            return json_response(view)
        if verb == "batch":
            self._need(method, "POST")
            return await self._apply_batch(tenant, session, request)
        raise _NotFound(f"no session verb {verb!r}")

    def _normalize_view(self, session: Session) -> dict:
        """The normalization summary; warm reads never recompute."""
        engine = session.engine
        result = engine.result
        assert result is not None
        return {
            "session": session.session_id,
            "applied_batches": engine.applied_batches,
            "fidelity": (
                result.fidelity.to_str()
                if result.fidelity is not None
                else "exact"
            ),
            "relations": {
                name: {
                    "columns": list(instance.columns),
                    "rows": instance.num_rows,
                }
                for name, instance in result.instances.items()
            },
            "fds": {
                name: len(engine.fd_cover(name))
                for name in engine.relation_names()
            },
            "keys": {
                name: len(engine.key_cover(name))
                for name in engine.relation_names()
            },
            "ddl": engine.ddl(),
        }

    async def _apply_batch(
        self, tenant: str, session: Session, request: Request
    ) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise InputError(
                "change batch must be a JSON object with "
                "'inserts'/'deletes' lists"
            )
        batch = ChangeBatch.from_json(payload, coerce_str=True)
        session.busy += 1
        try:
            outcome = await self._run_heavy(
                tenant, self.registry.apply_batch, session, batch
            )
        except BudgetExceeded:
            # The registry rolled the changelog back and dropped the
            # in-memory engine; persisted sessions revive pre-batch.
            raise
        finally:
            session.busy -= 1
        return json_response(
            {
                "session": session.session_id,
                "batch_index": outcome.batch_index,
                "relation": outcome.relation,
                "inserts_applied": outcome.inserts_applied,
                "deletes_applied": outcome.deletes_applied,
                "violations": [v.to_str() for v in outcome.violations],
                "schema_changed": outcome.schema_changed,
                "migration_sql": (
                    outcome.migration.to_sql()
                    if outcome.schema_changed
                    else ""
                ),
                "fidelity": outcome.fidelity,
                "applied_batches": session.engine.applied_batches,
            }
        )

    def _stats(self) -> dict:
        return {
            "server": {
                "requests_total": self.requests_total,
                "inflight": self._inflight,
                "draining": self._draining,
                "tenants": len(self._tenant_sems),
            },
            "sessions": self.registry.stats(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listeners (TCP and/or unix socket)."""
        if self.config.socket_path:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path
            )
            self._servers.append(server)
        if self.config.socket_path is None or self.config.port:
            server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
            self._servers.append(server)
            self.bound_port = server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin the drain; idempotent, signal-handler safe."""
        self._draining = True
        self._shutdown.set()

    async def drain(self) -> None:
        """Stop accepting, wait out in-flight work, release resources."""
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout
            )
        await asyncio.to_thread(self._release_resources)
        if self.config.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    @staticmethod
    def _release_resources() -> None:
        shutdown_pool()
        release_owned_segments()
        from repro.structures.storage import release_process_spill

        release_process_spill()

    async def run_until_shutdown(self, ready: asyncio.Event | None = None) -> None:
        """start() → announce → sweep idle sessions → drain on signal."""
        await self.start()
        if ready is not None:
            ready.set()
        self._announce()
        sweeper = asyncio.create_task(self._sweep_idle())
        try:
            await self._shutdown.wait()
        finally:
            sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await sweeper
            await self.drain()

    def _announce(self) -> None:
        lines = []
        if self.bound_port is not None:
            lines.append(
                f"listening on http://{self.config.host}:{self.bound_port}"
            )
        if self.config.socket_path:
            lines.append(f"listening on unix:{self.config.socket_path}")
        for line in lines:
            print(line, flush=True)

    async def _sweep_idle(self) -> None:
        interval = max(1.0, min(self.config.idle_ttl / 4.0, 30.0))
        while True:
            await asyncio.sleep(interval)
            self.registry.expire_idle()


def serve(config: ServerConfig) -> int:
    """Blocking entry point behind ``repro serve``; returns exit code."""
    import signal

    async def _main() -> int:
        server = ReproServer(config)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.run_until_shutdown()
        return 0

    return asyncio.run(_main())
