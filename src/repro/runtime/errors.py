"""Structured exception taxonomy for the resource-governed pipeline.

Every error the library raises on purpose derives from :class:`ReproError`,
so callers (and the CLI boundary) can distinguish the three failure
families without string matching:

* :class:`InputError` — the *data or arguments* are at fault: malformed
  CSV, mismatched columns, impossible configuration.  Subclasses
  :class:`ValueError` so pre-taxonomy callers that caught ``ValueError``
  keep working.
* :class:`BudgetExceeded` — a resource budget (wall-clock deadline,
  memory ceiling, candidate cap) was breached at a cooperative
  checkpoint, or a fault was injected there.  It carries the *partial
  state* accumulated up to the breach so callers can degrade instead of
  losing everything.
* :class:`CheckpointError` — a pipeline checkpoint cannot be loaded or
  does not match the run it is resumed into.
* :class:`WorkerCrashError` — a pool worker process died (real SIGKILL,
  OOM kill, segfault) and the supervisor could not — or was configured
  not to — recover the lost shard.

:class:`DegradedResultWarning` is the non-fatal member of the taxonomy:
the pipeline finished, but at reduced fidelity (see
:mod:`repro.runtime.degrade`); it is issued via :mod:`warnings` and the
details live in the result's fidelity report.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "BudgetExceeded",
    "CheckpointError",
    "DegradedResultWarning",
    "InputError",
    "ReproError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of every deliberate error in the repro library."""


class InputError(ReproError, ValueError):
    """Bad input data or arguments (malformed CSV, degenerate config).

    ``context`` pinpoints the offender when known — e.g. file path, row
    and column numbers for CSV errors — and is folded into the message.
    """

    def __init__(self, message: str, **context: Any) -> None:
        self.context = context
        if context:
            where = ", ".join(f"{key}={value!r}" for key, value in context.items())
            message = f"{message} ({where})"
        super().__init__(message)


class BudgetExceeded(ReproError):
    """A resource budget was breached at a cooperative checkpoint.

    Attributes:
        reason: ``"deadline"``, ``"memory"``, ``"candidates"``, or a
            fault-injection reason (``"fault:..."``).
        stage: the pipeline stage whose checkpoint fired (best effort).
        limit / observed: the budget value and the measurement that
            crossed it, in the reason's native unit.
        elapsed_seconds: wall-clock time since the governor started.
        partial: whatever partial state the raising layer salvaged —
            an :class:`~repro.model.fd.FDSet` for FD discoverers, a
            list of UCC masks for key discovery, ``None`` when nothing
            useful was accumulated.  Outer layers may replace it with a
            richer object as the exception propagates.
        partial_exact: True when ``partial`` is known to contain only
            validated facts (e.g. TANE's completed levels); False when
            it may include unvalidated candidates (e.g. HyFD's tree at
            breach time).
    """

    def __init__(
        self,
        reason: str,
        stage: str = "",
        limit: float | int | None = None,
        observed: float | int | None = None,
        elapsed_seconds: float | None = None,
        partial: Any = None,
        partial_exact: bool = True,
    ) -> None:
        self.reason = reason
        self.stage = stage
        self.limit = limit
        self.observed = observed
        self.elapsed_seconds = elapsed_seconds
        self.partial = partial
        self.partial_exact = partial_exact
        super().__init__(self._message())

    def _message(self) -> str:
        parts = [f"budget exceeded: {self.reason}"]
        if self.stage:
            parts.append(f"in stage {self.stage!r}")
        if self.limit is not None and self.observed is not None:
            parts.append(f"({self.observed} > limit {self.limit})")
        if self.elapsed_seconds is not None:
            parts.append(f"after {self.elapsed_seconds:.2f}s")
        return " ".join(parts)

    def attach_partial(self, partial: Any, exact: bool = True) -> "BudgetExceeded":
        """Set the salvaged partial state if no inner layer already did."""
        if self.partial is None:
            self.partial = partial
            self.partial_exact = exact
        return self


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or inconsistent with this run."""


class WorkerCrashError(ReproError):
    """A pool worker died and the lost shard could not be recovered.

    Under the default self-healing policy (see ``docs/PARALLEL.md``) a
    worker death is *not* an error: the supervisor respawns the worker
    and retries the shard, quarantining payloads that kill workers
    repeatedly onto the in-process serial path.  This exception is
    reserved for the cases where that policy is unavailable — strict
    mode (``REPRO_POOL_STRICT=1``) forbidding recovery, or respawn
    itself failing.  CLI exit code 5.

    Attributes:
        task_kind: the task-handler name of the lost shard.
        payload_index: the shard's index within its batch (None when
            the dead worker held no shard).
        exitcode: the worker process's exit code (negative = signal).
        deaths: how many workers this payload has killed so far.
    """

    def __init__(
        self,
        message: str,
        task_kind: str = "",
        payload_index: int | None = None,
        exitcode: int | None = None,
        deaths: int = 0,
    ) -> None:
        self.task_kind = task_kind
        self.payload_index = payload_index
        self.exitcode = exitcode
        self.deaths = deaths
        super().__init__(message)


class DegradedResultWarning(UserWarning):
    """The pipeline completed, but at reduced fidelity.

    Issued once per run whose fidelity report is anything other than
    fully exact; the report itself travels on the
    :class:`~repro.core.result.NormalizationResult`.
    """
