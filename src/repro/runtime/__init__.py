"""Resource governance for the normalization pipeline.

The runtime layer makes the pipeline *interruptible by contract*:

* :mod:`repro.runtime.errors` — the structured exception taxonomy
  (``ReproError`` → ``InputError`` / ``BudgetExceeded`` /
  ``CheckpointError``, plus ``DegradedResultWarning``),
* :mod:`repro.runtime.governor` — :class:`Budget` ceilings enforced at
  cooperative :func:`checkpoint` calls injected into every hot loop,
* :mod:`repro.runtime.faults` — deterministic fault injection so the
  verification harness can exercise every breach and resume path,
* :mod:`repro.runtime.degrade` — the hyfd → dfd → sampled-rows ladder
  and the fidelity report (imported lazily by the pipeline),
* :mod:`repro.runtime.checkpointing` — pipeline progress persisted so
  ``repro normalize --resume`` continues a killed run (imported
  lazily by the pipeline).

See ``docs/ROBUSTNESS.md`` for the full design.
"""

from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    DegradedResultWarning,
    InputError,
    ReproError,
)
from repro.runtime.faults import FaultPlan, SimulatedKill
from repro.runtime.governor import (
    Budget,
    Governor,
    activate,
    add_candidates,
    checkpoint,
    current_governor,
    parse_duration,
    parse_memory,
    suspended,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CheckpointError",
    "DegradedResultWarning",
    "FaultPlan",
    "Governor",
    "InputError",
    "ReproError",
    "SimulatedKill",
    "activate",
    "add_candidates",
    "checkpoint",
    "current_governor",
    "parse_duration",
    "parse_memory",
    "suspended",
]
