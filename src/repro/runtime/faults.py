"""Deterministic fault injection at cooperative checkpoints.

Every degradation and resume path in the pipeline exists to survive a
failure that is hard to produce on demand: a deadline landing in the
middle of TANE's level 7, an OOM during HyFD validation, a ``kill -9``
between two decomposition decisions.  A :class:`FaultPlan` produces
exactly those events *deterministically*: given a seed, it fires once
at the Nth checkpoint tick, raising either a synthetic
:class:`~repro.runtime.errors.BudgetExceeded` (exercising the
degradation ladder) or a :class:`SimulatedKill` (exercising
checkpoint/resume — it derives from ``BaseException`` so no recovery
layer can swallow it, exactly like a real kill).

The verification harness (``repro verify --faults``) sweeps seeds so
that, over a campaign, faults land at every checkpoint site the
pipeline has.

Beyond the in-process modes, three **worker-level** modes target the
process-parallel execution layer with *real* process failures instead
of simulated ones: ``worker_kill`` SIGKILLs the worker from inside
(uncatchable, no cleanup — exactly an external ``kill -9``),
``worker_oom`` hard-exits with status 137 (what the kernel OOM killer
leaves behind), and ``worker_hang`` stops cooperating forever (the
worker keeps its heartbeat frozen until the supervisor declares it
hung).  These modes are inert in the parent process — they only fire
inside a pool worker, gated by a shared once-only flag the pool wires
up (:attr:`FaultPlan.shared_flag`), so exactly one worker per plan
dies no matter how many shards carry the fault descriptor.  The
supervisor (``repro.parallel.supervisor``) must then recover the lost
shard; the chaos campaign asserts the healed run's DDL is
byte-identical to serial.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.runtime.errors import BudgetExceeded, InputError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.governor import Governor

__all__ = [
    "FaultPlan",
    "SimulatedKill",
    "FAULT_MODES",
    "PROCESS_FAULT_MODES",
    "WORKER_FAULT_MODES",
]

#: In-process modes: simulated breaches/kills at the parent's (or a
#: worker's own) cooperative checkpoints.
PROCESS_FAULT_MODES = ("timeout", "oom", "kill")

#: Real worker-process failures; only fire inside pool workers.
WORKER_FAULT_MODES = ("worker_kill", "worker_oom", "worker_hang")

FAULT_MODES = PROCESS_FAULT_MODES + WORKER_FAULT_MODES


class SimulatedKill(BaseException):
    """An injected hard kill (SIGKILL analogue).

    Derives from ``BaseException`` on purpose: the pipeline's recovery
    machinery (degradation ladder, CLI boundary) must *not* be able to
    catch it, mirroring a real process death.  Only tests catch it.
    """

    def __init__(self, at_tick: int) -> None:
        self.at_tick = at_tick
        super().__init__(f"simulated kill at checkpoint tick {at_tick}")


@dataclass(slots=True)
class FaultPlan:
    """Fire one deterministic fault at the ``at_tick``-th checkpoint.

    ``mode``:
        * ``"timeout"``     — raise ``BudgetExceeded(reason="fault:timeout")``,
        * ``"oom"``         — raise ``BudgetExceeded(reason="fault:oom")``,
        * ``"kill"``        — raise :class:`SimulatedKill`,
        * ``"worker_kill"`` — SIGKILL the current process (workers only),
        * ``"worker_oom"``  — ``os._exit(137)`` (workers only),
        * ``"worker_hang"`` — spin in a sleep loop forever (workers only).

    ``stage`` optionally restricts the fault to checkpoints whose stage
    label starts with it (e.g. ``"hyfd"``), so campaigns can target one
    subsystem.  ``fired`` records whether the fault went off, letting
    tests distinguish "survived the fault" from "never reached it".

    The worker modes need ``shared_flag`` — a ``multiprocessing.Value``
    the pool installs on the worker-side plan copies — to coordinate
    once-only firing across processes: the parent's own plan object
    never fires them (no flag ⇒ no-op), and the pool folds the flag
    back into the parent plan's ``fired`` after the batch.
    """

    mode: str = "timeout"
    at_tick: int = 1
    stage: str | None = None
    fired: bool = False
    fired_at_stage: str = field(default="", repr=False)
    shared_flag: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise InputError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        if self.at_tick < 1:
            raise InputError("at_tick must be >= 1")

    @classmethod
    def from_seed(
        cls,
        seed: int,
        mode: str | None = None,
        max_tick: int = 4096,
        stage: str | None = None,
    ) -> "FaultPlan":
        """Derive a deterministic plan from a campaign seed."""
        rng = random.Random(seed * 0x9E3779B1 ^ 0xFA17)
        if mode is None:
            # Seed-derived plans stay in-process: the worker modes need
            # pool plumbing (shared_flag) and are opted into explicitly
            # by the chaos campaign.
            mode = rng.choice(PROCESS_FAULT_MODES)
        # Bias towards early ticks so short runs are hit too, while the
        # tail still reaches deep into long runs.
        at_tick = min(int(rng.expovariate(1.0 / (max_tick / 8))) + 1, max_tick)
        return cls(mode=mode, at_tick=at_tick, stage=stage)

    # ------------------------------------------------------------------
    # Governor hook
    # ------------------------------------------------------------------
    def on_tick(self, governor: "Governor", stage: str) -> None:
        if self.fired or governor.ticks < self.at_tick:
            return
        if self.stage is not None and not stage.startswith(self.stage):
            return
        if self.mode in WORKER_FAULT_MODES:
            self._fire_worker_fault(stage)
            return
        self.fired = True
        self.fired_at_stage = stage
        if self.mode == "kill":
            raise SimulatedKill(governor.ticks)
        governor.inject(
            BudgetExceeded(
                f"fault:{self.mode}",
                stage=stage,
                limit=self.at_tick,
                observed=governor.ticks,
            )
        )

    def _fire_worker_fault(self, stage: str) -> None:
        """Fire a real process failure — inside a pool worker only.

        Without :attr:`shared_flag` this is a no-op: the parent's plan
        object carries the mode but must never kill the parent.  With
        the flag, the first worker whose checkpoint reaches ``at_tick``
        claims it under the lock; every later worker (including the
        respawned one retrying the lost shard) sees it set and stays
        healthy, so the fault is exactly-once per plan.
        """
        flag = self.shared_flag
        if flag is None:
            return
        with flag.get_lock():
            if flag.value:
                return
            flag.value = 1
        self.fired = True
        self.fired_at_stage = stage
        if self.mode == "worker_kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if self.mode == "worker_oom":
            os._exit(137)  # the status a kernel OOM kill leaves behind
        while True:  # worker_hang: heartbeat freezes; supervisor must act
            time.sleep(0.05)
