"""Deterministic fault injection at cooperative checkpoints.

Every degradation and resume path in the pipeline exists to survive a
failure that is hard to produce on demand: a deadline landing in the
middle of TANE's level 7, an OOM during HyFD validation, a ``kill -9``
between two decomposition decisions.  A :class:`FaultPlan` produces
exactly those events *deterministically*: given a seed, it fires once
at the Nth checkpoint tick, raising either a synthetic
:class:`~repro.runtime.errors.BudgetExceeded` (exercising the
degradation ladder) or a :class:`SimulatedKill` (exercising
checkpoint/resume — it derives from ``BaseException`` so no recovery
layer can swallow it, exactly like a real kill).

The verification harness (``repro verify --faults``) sweeps seeds so
that, over a campaign, faults land at every checkpoint site the
pipeline has.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.errors import BudgetExceeded, InputError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.governor import Governor

__all__ = ["FaultPlan", "SimulatedKill", "FAULT_MODES"]

FAULT_MODES = ("timeout", "oom", "kill")


class SimulatedKill(BaseException):
    """An injected hard kill (SIGKILL analogue).

    Derives from ``BaseException`` on purpose: the pipeline's recovery
    machinery (degradation ladder, CLI boundary) must *not* be able to
    catch it, mirroring a real process death.  Only tests catch it.
    """

    def __init__(self, at_tick: int) -> None:
        self.at_tick = at_tick
        super().__init__(f"simulated kill at checkpoint tick {at_tick}")


@dataclass(slots=True)
class FaultPlan:
    """Fire one deterministic fault at the ``at_tick``-th checkpoint.

    ``mode``:
        * ``"timeout"`` — raise ``BudgetExceeded(reason="fault:timeout")``,
        * ``"oom"``     — raise ``BudgetExceeded(reason="fault:oom")``,
        * ``"kill"``    — raise :class:`SimulatedKill`.

    ``stage`` optionally restricts the fault to checkpoints whose stage
    label starts with it (e.g. ``"hyfd"``), so campaigns can target one
    subsystem.  ``fired`` records whether the fault went off, letting
    tests distinguish "survived the fault" from "never reached it".
    """

    mode: str = "timeout"
    at_tick: int = 1
    stage: str | None = None
    fired: bool = False
    fired_at_stage: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise InputError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        if self.at_tick < 1:
            raise InputError("at_tick must be >= 1")

    @classmethod
    def from_seed(
        cls,
        seed: int,
        mode: str | None = None,
        max_tick: int = 4096,
        stage: str | None = None,
    ) -> "FaultPlan":
        """Derive a deterministic plan from a campaign seed."""
        rng = random.Random(seed * 0x9E3779B1 ^ 0xFA17)
        if mode is None:
            mode = rng.choice(FAULT_MODES)
        # Bias towards early ticks so short runs are hit too, while the
        # tail still reaches deep into long runs.
        at_tick = min(int(rng.expovariate(1.0 / (max_tick / 8))) + 1, max_tick)
        return cls(mode=mode, at_tick=at_tick, stage=stage)

    # ------------------------------------------------------------------
    # Governor hook
    # ------------------------------------------------------------------
    def on_tick(self, governor: "Governor", stage: str) -> None:
        if self.fired or governor.ticks < self.at_tick:
            return
        if self.stage is not None and not stage.startswith(self.stage):
            return
        self.fired = True
        self.fired_at_stage = stage
        if self.mode == "kill":
            raise SimulatedKill(governor.ticks)
        governor.inject(
            BudgetExceeded(
                f"fault:{self.mode}",
                stage=stage,
                limit=self.at_tick,
                observed=governor.ticks,
            )
        )
