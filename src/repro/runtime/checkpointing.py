"""Pipeline checkpoint state: record progress, replay it on resume.

A long normalization run is a sequence of *expensive facts* (the
discovered FD sets) followed by a sequence of *decisions* (which
violating FD to decompose on, what RHS to keep, which primary key to
assign).  Both are recorded into a :class:`PipelineState` as they
happen and flushed to disk after every event (atomic write: tmp +
rename), so a run killed at any point loses at most the step in
flight.

On resume the state is loaded, validated against the run's
configuration and input columns, and consumed front-to-back: relations
whose FDs are recorded skip discovery entirely, and recorded decisions
are *replayed by content* — the resumed ranking must contain the
recorded FD, which both restores the original choice and verifies the
replay is consistent.  Everything downstream of the recorded prefix is
recomputed, which the deterministic pipeline turns into the identical
final schema.

The JSON wire format lives in :mod:`repro.io.serialization`
(``checkpoint_to_json`` / ``checkpoint_from_json``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.model.fd import FDSet
from repro.runtime.degrade import RelationFidelity
from repro.runtime.errors import CheckpointError

__all__ = ["PipelineState", "load_state", "save_state"]

CHECKPOINT_FORMAT = "repro/pipeline-checkpoint"
CHECKPOINT_VERSION = 1


@dataclass(slots=True)
class PipelineState:
    """Everything a killed run needs to continue where it stopped.

    ``config`` pins the pipeline knobs that influence the outcome
    (algorithm, target, closure, NULL semantics, scoring); resuming
    under different knobs is refused.  ``discovered`` maps input
    relation names to their minimal FD sets; ``fidelity`` keeps the
    per-relation fidelity verdicts alongside.  ``decisions`` is the
    ordered decision log (see :meth:`record_decision`).
    """

    config: dict[str, Any] = field(default_factory=dict)
    inputs: list[dict[str, Any]] = field(default_factory=list)
    discovered: dict[str, FDSet] = field(default_factory=dict)
    fidelity: dict[str, RelationFidelity] = field(default_factory=dict)
    decisions: list[dict[str, Any]] = field(default_factory=list)
    complete: bool = False
    #: replay cursor — not serialized; advanced by :meth:`next_decision`
    cursor: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_inputs(self, instances) -> None:
        self.inputs = [
            {"name": instance.name, "columns": list(instance.columns)}
            for instance in instances
        ]

    def record_discovery(
        self, name: str, fds: FDSet, fidelity: RelationFidelity
    ) -> None:
        self.discovered[name] = fds.copy()
        self.fidelity[name] = fidelity

    def record_decision(self, decision: dict[str, Any]) -> None:
        """Append one decision event.

        Shapes:
            {"kind": "fd", "relation": R, "lhs": [...], "rhs": [...],
             "edited_rhs": [...]}             — decomposition chosen
            {"kind": "stop", "relation": R}   — user stopped the relation
            {"kind": "key", "relation": R, "key": [...] | None}
        """
        self.decisions.append(decision)
        # Freshly recorded decisions must never be replayed by the run
        # that recorded them (a resumed run appends past the prefix).
        self.cursor = len(self.decisions)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @property
    def replaying(self) -> bool:
        return self.cursor < len(self.decisions)

    def next_decision(self, kind: str, relation: str) -> dict[str, Any] | None:
        """Pop the next recorded decision, validating it matches the
        replay position; ``None`` once the recorded prefix is spent."""
        if self.cursor >= len(self.decisions):
            return None
        decision = self.decisions[self.cursor]
        if kind in ("fd", "stop") and decision.get("kind") == "key":
            # The decomposition prefix is spent; the log continues with
            # the key-selection phase recorded by the interrupted run.
            return None
        if decision.get("relation") != relation:
            raise CheckpointError(
                f"checkpoint replay diverged: expected a decision for "
                f"relation {relation!r} but the log has "
                f"{decision.get('relation')!r} (decision #{self.cursor})"
            )
        if decision.get("kind") != kind and not (
            kind == "fd" and decision.get("kind") == "stop"
        ):
            raise CheckpointError(
                f"checkpoint replay diverged: expected kind {kind!r} but "
                f"the log has {decision.get('kind')!r} "
                f"(decision #{self.cursor})"
            )
        self.cursor += 1
        return decision

    # ------------------------------------------------------------------
    # Validation against a resuming run
    # ------------------------------------------------------------------
    def validate_against(self, config: dict[str, Any], instances) -> None:
        for key, value in self.config.items():
            if key in config and config[key] != value:
                raise CheckpointError(
                    f"checkpoint was written with {key}={value!r} but this "
                    f"run uses {key}={config[key]!r}; refusing to resume"
                )
        recorded = {
            entry["name"]: tuple(entry["columns"]) for entry in self.inputs
        }
        current = {
            instance.name: tuple(instance.columns) for instance in instances
        }
        if recorded and recorded != current:
            raise CheckpointError(
                "checkpoint inputs do not match this run's relations "
                f"(checkpoint: {sorted(recorded)}, run: {sorted(current)})"
            )


# ----------------------------------------------------------------------
# Disk round-trip (format in repro.io.serialization)
# ----------------------------------------------------------------------
def save_state(state: PipelineState, path: str | Path) -> None:
    """Atomically persist ``state`` (write tmp, fsync, rename)."""
    import json

    from repro.io.serialization import checkpoint_to_json

    path = Path(path)
    payload = json.dumps(checkpoint_to_json(state), indent=2)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_state(path: str | Path) -> PipelineState:
    """Load a checkpoint; raises :class:`CheckpointError` on any defect."""
    import json

    from repro.io.serialization import checkpoint_from_json

    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint file not found: {path}") from None
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return checkpoint_from_json(payload)
