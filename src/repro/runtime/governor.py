"""Budgets and the cooperative checkpoint machinery.

FD discovery is the pipeline's unbounded step — result sizes grow
exponentially with the attribute count — so every hot loop in the
library calls :func:`checkpoint` (and candidate-generating loops call
:func:`add_candidates`).  When no budget is active both are a single
global read and a ``None`` test; when a :class:`Governor` is active,
ticks are counted and the expensive probes (wall clock, resident
memory) run only every ``Budget.check_interval`` ticks, keeping the
governed hot paths within a few percent of ungoverned speed.

On breach the governor raises :class:`~repro.runtime.errors.BudgetExceeded`;
the raising algorithm attaches whatever partial state it accumulated
and re-raises, and the degradation ladder (:mod:`repro.runtime.degrade`)
or the caller decides what to do with it.

The library is single-threaded by design (DESIGN.md §3), so the active
governor is a plain module global managed by :func:`activate`;
:func:`suspended` masks it while an exception handler salvages partial
state (salvage code must never be re-interrupted).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.runtime.errors import BudgetExceeded, InputError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.faults import FaultPlan

__all__ = [
    "Budget",
    "Governor",
    "activate",
    "add_candidates",
    "checkpoint",
    "current_governor",
    "parse_duration",
    "parse_memory",
    "suspended",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


@dataclass(frozen=True, slots=True)
class Budget:
    """Resource ceilings for one pipeline run.

    ``None`` disables the corresponding check.  ``max_candidates`` caps
    *candidate work units* — lattice nodes generated, predicate
    evaluations, partition intersections — the discovery-side proxy for
    the exponential blow-up that neither time nor memory catches early.
    """

    deadline_seconds: float | None = None
    max_memory_bytes: int | None = None
    max_candidates: int | None = None
    #: ticks between wall-clock / memory probes (probes are ~µs, ticks ~ns)
    check_interval: int = 256

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise InputError("deadline_seconds must be positive")
        if self.max_memory_bytes is not None and self.max_memory_bytes <= 0:
            raise InputError("max_memory_bytes must be positive")
        if self.max_candidates is not None and self.max_candidates <= 0:
            raise InputError("max_candidates must be positive")
        if self.check_interval < 1:
            raise InputError("check_interval must be >= 1")

    @property
    def unbounded(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_memory_bytes is None
            and self.max_candidates is None
        )


def _rss_bytes() -> int:
    """Current resident set size; 0 when the platform offers no probe."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:  # macOS/BSD fallback: peak RSS (monotone, still a valid ceiling)
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; at this point we are not on
        # Linux (statm failed), so treat large values as bytes.
        return peak if peak > 1 << 32 else peak * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0


class Governor:
    """Counts cooperative ticks and enforces one :class:`Budget`.

    A governor is created once per run (or per degradation-ladder rung,
    see :meth:`subgovernor`) and activated via :func:`activate`.  All
    counters are public so fidelity reports and tests can read them.
    """

    __slots__ = (
        "budget",
        "fault_plan",
        "started_at",
        "deadline_at",
        "ticks",
        "candidates",
        "spills",
        "breach",
        "_clock",
        "_next_probe",
        "_suspended",
    )

    def __init__(
        self,
        budget: Budget | None = None,
        fault_plan: "FaultPlan | None" = None,
        clock=time.monotonic,
    ) -> None:
        self.budget = budget if budget is not None else Budget()
        self.fault_plan = fault_plan
        self._clock = clock
        self.started_at = clock()
        self.deadline_at = (
            self.started_at + self.budget.deadline_seconds
            if self.budget.deadline_seconds is not None
            else None
        )
        self.ticks = 0
        self.candidates = 0
        self.spills = 0
        self.breach: BudgetExceeded | None = None
        self._next_probe = self.budget.check_interval
        self._suspended = 0

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def tick(self, stage: str = "", units: int = 1) -> None:
        """One cooperative checkpoint; raises on breach or injected fault."""
        if self._suspended:
            return
        self.ticks += units
        plan = self.fault_plan
        if plan is not None:
            plan.on_tick(self, stage)
        if self.ticks >= self._next_probe:
            self._next_probe = self.ticks + self.budget.check_interval
            self._probe(stage)

    def add_candidates(self, count: int, stage: str = "") -> None:
        """Account candidate work; enforces ``max_candidates`` exactly."""
        if self._suspended:
            return
        self.candidates += count
        limit = self.budget.max_candidates
        if limit is not None and self.candidates > limit:
            self._raise("candidates", stage, limit, self.candidates)
        self.tick(stage, count)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def _probe(self, stage: str) -> None:
        now = self._clock()
        if self.deadline_at is not None and now > self.deadline_at:
            self._raise(
                "deadline",
                stage,
                self.budget.deadline_seconds,
                round(now - self.started_at, 3),
            )
        limit = self.budget.max_memory_bytes
        if limit is not None:
            rss = _rss_bytes()
            if rss > limit:
                self._raise("memory", stage, limit, rss)

    def _raise(self, reason: str, stage: str, limit, observed) -> None:
        exc = BudgetExceeded(
            reason,
            stage=stage,
            limit=limit,
            observed=observed,
            elapsed_seconds=self._clock() - self.started_at,
        )
        if self.breach is None:
            self.breach = exc
        raise exc

    def inject(self, exc: BudgetExceeded) -> None:
        """Record and raise a fault-injected breach (FaultPlan hook)."""
        if exc.elapsed_seconds is None:
            exc.elapsed_seconds = self._clock() - self.started_at
        if self.breach is None:
            self.breach = exc
        raise exc

    # ------------------------------------------------------------------
    # Introspection and derivation
    # ------------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        return self._clock() - self.started_at

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline; ``None`` without one."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - self._clock())

    def subgovernor(self, fraction: float) -> "Governor":
        """A governor for one degradation rung: same memory/candidate
        ceilings, but only ``fraction`` of the remaining wall clock.

        Candidate counts carry over so rungs share the global cap.
        """
        remaining = self.remaining_seconds()
        budget = Budget(
            deadline_seconds=(
                None if remaining is None else max(remaining * fraction, 1e-6)
            ),
            max_memory_bytes=self.budget.max_memory_bytes,
            max_candidates=self.budget.max_candidates,
            check_interval=self.budget.check_interval,
        )
        sub = Governor(budget, fault_plan=self.fault_plan, clock=self._clock)
        sub.candidates = self.candidates
        return sub

    def absorb(self, sub: "Governor") -> None:
        """Fold a sub-governor's counters back into this one."""
        self.ticks += sub.ticks
        self.candidates = max(self.candidates, sub.candidates)
        self.spills += sub.spills


# ----------------------------------------------------------------------
# The ambient governor (single-threaded by design)
# ----------------------------------------------------------------------
_ACTIVE: Governor | None = None


def current_governor() -> Governor | None:
    return _ACTIVE


def checkpoint(stage: str = "", units: int = 1) -> None:
    """Cooperative cancellation point for hot loops.

    Free (one global read) when no governor is active.
    """
    governor = _ACTIVE
    if governor is not None:
        governor.tick(stage, units)


def add_candidates(count: int, stage: str = "") -> None:
    """Account candidate work units against the active budget, if any."""
    governor = _ACTIVE
    if governor is not None:
        governor.add_candidates(count, stage)


def note_spill() -> None:
    """Record that an encoding spilled to disk under memory pressure.

    Called by :class:`repro.structures.storage.ColumnStore` when a
    store is opened, so a governed run's fidelity/profile output can
    report how many relations the spill tier absorbed instead of the
    memory probe tripping a breach.
    """
    governor = _ACTIVE
    if governor is not None:
        governor.spills += 1


@contextmanager
def activate(governor: Governor | None) -> Iterator[Governor | None]:
    """Install ``governor`` as the ambient one for the ``with`` body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = governor
    try:
        yield governor
    finally:
        _ACTIVE = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Mask the active governor (and its faults) inside the body.

    Exception handlers salvaging partial state use this so salvage work
    can never be re-interrupted by the very budget that triggered it.
    """
    governor = _ACTIVE
    if governor is None:
        yield
        return
    governor._suspended += 1
    try:
        yield
    finally:
        governor._suspended -= 1


# ----------------------------------------------------------------------
# Human-friendly budget parsing (CLI surface)
# ----------------------------------------------------------------------
_DURATION_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}
_MEMORY_UNITS = {
    "b": 1,
    "kb": 1024,
    "mb": 1024**2,
    "gb": 1024**3,
    "k": 1024,
    "m": 1024**2,
    "g": 1024**3,
}


def parse_duration(text: str) -> float:
    """Parse ``"5s"``, ``"250ms"``, ``"2m"``, ``"1.5h"``, or bare seconds."""
    text = text.strip().lower()
    for suffix, scale in sorted(_DURATION_UNITS.items(), key=lambda i: -len(i[0])):
        if text.endswith(suffix):
            number = text[: -len(suffix)]
            break
    else:
        number, scale = text, 1.0
    try:
        value = float(number) * scale
    except ValueError:
        raise InputError(f"cannot parse duration {text!r}") from None
    if value <= 0:
        raise InputError(f"duration must be positive, got {text!r}")
    return value


def parse_memory(text: str) -> int:
    """Parse ``"512MB"``, ``"2gb"``, ``"300000k"``, or bare bytes."""
    text = text.strip().lower()
    for suffix, scale in sorted(_MEMORY_UNITS.items(), key=lambda i: -len(i[0])):
        if text.endswith(suffix):
            number = text[: -len(suffix)]
            break
    else:
        number, scale = text, 1
    try:
        value = int(float(number) * scale)
    except ValueError:
        raise InputError(f"cannot parse memory size {text!r}") from None
    if value <= 0:
        raise InputError(f"memory size must be positive, got {text!r}")
    return value
