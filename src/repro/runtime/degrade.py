"""The degradation ladder: retry FD discovery at lower fidelity.

When a discovery stage breaches its budget, dying with a stack trace is
the worst possible outcome for an interactive or production run — the
paper's own §9 concedes result sizes grow exponentially, and related
anytime-discovery work (EAIFD) argues for partial results over no
results.  The ladder embodies that policy:

1. the configured algorithm (HyFD by default) with roughly half the
   remaining budget,
2. DFD — the per-RHS random-walk search degrades more gracefully on
   wide schemas because each RHS attribute completes independently,
3. *sampled-rows approximate discovery*: run HyFD on a deterministic
   row sample, then verify every candidate against the **full**
   relation with the g3 error measure from
   :mod:`repro.extensions.approximate`, keeping FDs with
   ``g3 ≤ approx_error`` (the default ``0.0`` keeps only FDs that hold
   exactly, so degraded schemas stay lossless).

If every rung breaches, the best salvaged partial FD set is returned.
Each relation's journey down the ladder is recorded in a
:class:`RelationFidelity`, aggregated per run into a
:class:`FidelityReport` that travels on the
:class:`~repro.core.result.NormalizationResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.model.fd import FDSet
from repro.model.instance import RelationInstance
from repro.runtime.errors import BudgetExceeded
from repro.runtime.governor import Governor, activate, suspended

__all__ = [
    "FidelityReport",
    "RelationFidelity",
    "StageAttempt",
    "discover_with_ladder",
    "sample_instance_rows",
]

#: fraction of the remaining wall clock granted to each ladder rung;
#: the final rung keeps a margin so decomposition can still run.
_RUNG_FRACTIONS = (0.5, 0.5, 0.9)


@dataclass(slots=True)
class StageAttempt:
    """One rung of the ladder, as it actually went."""

    stage: str
    outcome: str  # "ok" | "breach"
    reason: str | None = None
    seconds: float = 0.0
    num_fds: int | None = None

    def to_str(self) -> str:
        detail = f"{self.num_fds} FDs" if self.num_fds is not None else ""
        if self.outcome == "breach":
            detail = self.reason or "breach"
        return f"{self.stage}: {self.outcome} ({detail}, {self.seconds:.2f}s)"

    def to_json(self) -> dict:
        return {
            "stage": self.stage,
            "outcome": self.outcome,
            "reason": self.reason,
            "seconds": self.seconds,
            "num_fds": self.num_fds,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StageAttempt":
        return cls(**payload)


@dataclass(slots=True)
class RelationFidelity:
    """How faithfully one relation's FDs were discovered.

    ``fidelity``:
        * ``"exact"``   — complete minimal FDs from an exact algorithm,
        * ``"sampled"`` — discovered on a row sample, then verified
          against the full relation with g3 ≤ ``approx_error``;
          complete *for the sample*, sound within the error bound,
        * ``"partial"`` — the salvaged prefix of an interrupted run;
          sound facts only if the breach carried exact partial state,
        * ``"none"``    — nothing was salvaged.
    """

    relation: str
    fidelity: str = "exact"
    attempts: list[StageAttempt] = field(default_factory=list)
    sampled_rows: int | None = None
    notes: list[str] = field(default_factory=list)
    #: True when every FD in the returned set is *known to hold* on the
    #: full relation (exact runs, g3-verified samples with ε=0, exact
    #: partial prefixes); False when unvalidated candidates may remain.
    sound: bool = True

    @property
    def exact(self) -> bool:
        return self.fidelity == "exact"

    def to_str(self) -> str:
        lines = [f"{self.relation}: {self.fidelity}"]
        lines.extend(f"  - {attempt.to_str()}" for attempt in self.attempts)
        lines.extend(f"  note: {note}" for note in self.notes)
        if self.sampled_rows is not None:
            lines.append(f"  sampled rows: {self.sampled_rows}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "relation": self.relation,
            "fidelity": self.fidelity,
            "attempts": [attempt.to_json() for attempt in self.attempts],
            "sampled_rows": self.sampled_rows,
            "notes": list(self.notes),
            "sound": self.sound,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RelationFidelity":
        return cls(
            relation=payload["relation"],
            fidelity=payload["fidelity"],
            attempts=[StageAttempt.from_json(a) for a in payload["attempts"]],
            sampled_rows=payload["sampled_rows"],
            notes=list(payload["notes"]),
            sound=payload.get("sound", True),
        )


@dataclass(slots=True)
class FidelityReport:
    """Run-level fidelity: per-relation reports plus pipeline events.

    ``events`` records degradations outside discovery — a truncated
    decomposition loop, skipped primary-key selection — anything that
    makes the result less than the exact pipeline would have produced.
    """

    relations: dict[str, RelationFidelity] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.events) or any(
            not fidelity.exact for fidelity in self.relations.values()
        )

    def to_str(self) -> str:
        if not self.degraded:
            return "fidelity: exact (no degradation)"
        lines = ["fidelity: DEGRADED"]
        for fidelity in self.relations.values():
            lines.extend("  " + line for line in fidelity.to_str().splitlines())
        lines.extend(f"  event: {event}" for event in self.events)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "degraded": self.degraded,
            "relations": {
                name: fidelity.to_json()
                for name, fidelity in self.relations.items()
            },
            "events": list(self.events),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FidelityReport":
        return cls(
            relations={
                name: RelationFidelity.from_json(entry)
                for name, entry in payload["relations"].items()
            },
            events=list(payload["events"]),
        )


# ----------------------------------------------------------------------
# Row sampling
# ----------------------------------------------------------------------
def sample_instance_rows(
    instance: RelationInstance, sample_rows: int, seed: int
) -> tuple[RelationInstance, int]:
    """Deterministic row sample (order-preserving); returns (sample, n)."""
    import random

    rows = instance.num_rows
    if rows <= sample_rows:
        return instance, rows
    picked = sorted(random.Random(seed).sample(range(rows), sample_rows))
    columns_data = [
        [column[i] for i in picked] for column in instance.columns_data
    ]
    return (
        RelationInstance(instance.relation, columns_data),
        sample_rows,
    )


# ----------------------------------------------------------------------
# The ladder
# ----------------------------------------------------------------------
def discover_with_ladder(
    instance: RelationInstance,
    algorithm,
    governor: Governor | None = None,
    degrade: bool = True,
    sample_rows: int = 512,
    approx_error: float = 0.0,
    seed: int = 42,
) -> tuple[FDSet, RelationFidelity]:
    """Discover FDs, stepping down the ladder on budget breaches.

    ``algorithm`` is a ready :class:`~repro.discovery.base.FDAlgorithm`.
    Without a governor (or with ``degrade=False``) this is a plain
    ``algorithm.discover`` call — breaches propagate to the caller with
    their partial state attached.
    """
    fidelity = RelationFidelity(relation=instance.name)
    if governor is None:
        fds = algorithm.discover(instance)
        _note_sampled(fidelity, algorithm, approx_error)
        fidelity.attempts.append(
            StageAttempt(_stage_name(algorithm), "ok", num_fds=len(fds))
        )
        return fds, fidelity

    best_partial: FDSet | None = None
    best_partial_exact = False

    rungs = _build_rungs(instance, algorithm, sample_rows, approx_error, seed)
    for index, (stage, runner) in enumerate(rungs):
        fraction = _RUNG_FRACTIONS[min(index, len(_RUNG_FRACTIONS) - 1)]
        sub = governor.subgovernor(fraction)
        started = time.perf_counter()
        try:
            with activate(sub):
                fds, sampled = runner(fidelity)
        except BudgetExceeded as exc:
            governor.absorb(sub)
            fidelity.attempts.append(
                StageAttempt(
                    stage,
                    "breach",
                    reason=exc.reason,
                    seconds=time.perf_counter() - started,
                )
            )
            partial = exc.partial
            if isinstance(partial, FDSet) and (
                best_partial is None
                or (exc.partial_exact and not best_partial_exact)
                or (
                    exc.partial_exact == best_partial_exact
                    and len(partial) > len(best_partial)
                )
            ):
                best_partial = partial
                best_partial_exact = exc.partial_exact
            if not degrade:
                raise
            continue
        governor.absorb(sub)
        fidelity.attempts.append(
            StageAttempt(
                stage,
                "ok",
                seconds=time.perf_counter() - started,
                num_fds=len(fds),
            )
        )
        if sampled is not None:
            fidelity.fidelity = "sampled"
            fidelity.sampled_rows = sampled
            fidelity.sound = approx_error == 0.0
        return fds, fidelity

    # Every rung breached: fall back to the best salvaged partial state.
    if best_partial is not None:
        fidelity.fidelity = "partial"
        fidelity.sound = best_partial_exact
        if not best_partial_exact:
            fidelity.notes.append(
                "partial state may contain unvalidated candidates; "
                "decompositions re-verify chosen FDs against the data"
            )
        return best_partial, fidelity
    fidelity.fidelity = "none"
    fidelity.notes.append("no partial state was salvaged before the breach")
    return FDSet(instance.arity), fidelity


def _stage_name(algorithm) -> str:
    return getattr(algorithm, "name", type(algorithm).__name__)


def _note_sampled(fidelity, algorithm, approx_error) -> None:
    """Mark the report sampled when the *primary* algorithm sampled.

    ``repro --approximate`` installs :class:`SampledG3FD` as the main
    discoverer; its runs must carry the same fidelity labelling as the
    ladder's own sampled rung.
    """
    sampled = getattr(algorithm, "last_sampled_rows", None)
    if sampled is not None:
        fidelity.fidelity = "sampled"
        fidelity.sampled_rows = sampled
        fidelity.sound = approx_error == 0.0


def _build_rungs(instance, algorithm, sample_rows, approx_error, seed):
    """The (stage-name, runner) sequence for this ladder descent."""
    primary_name = _stage_name(algorithm)

    def run_primary(fidelity):
        fds = algorithm.discover(instance)
        return fds, getattr(algorithm, "last_sampled_rows", None)

    rungs = [(primary_name, run_primary)]

    if primary_name != "dfd":

        def run_dfd(fidelity):
            from repro.discovery.dfd import DFD

            fallback = DFD(
                null_equals_null=getattr(algorithm, "null_equals_null", True),
                max_lhs_size=getattr(algorithm, "max_lhs_size", None),
                seed=seed,
            )
            return fallback.discover(instance), None

        rungs.append(("dfd", run_dfd))

    def run_sampled(fidelity):
        fds, sampled = _sampled_discovery(
            instance, algorithm, sample_rows, approx_error, seed, fidelity
        )
        return fds, sampled

    rungs.append(("sampled", run_sampled))
    return rungs


def _sampled_discovery(
    instance, algorithm, sample_rows, approx_error, seed, fidelity
):
    """Rung 3: discover on a row sample, g3-verify on the full relation.

    Delegates to :class:`repro.discovery.sampled.SampledG3FD` — the
    same procedure is exposed as a first-class algorithm for
    ``repro --approximate`` — while preserving the ladder's salvage
    semantics (truncated verification keeps verified FDs only).
    """
    from repro.discovery.sampled import SampledG3FD

    runner = SampledG3FD(
        null_equals_null=getattr(algorithm, "null_equals_null", True),
        max_lhs_size=getattr(algorithm, "max_lhs_size", None),
        sample_rows=sample_rows,
        approx_error=approx_error,
        seed=seed,
    )
    try:
        fds = runner.discover(instance)
    except BudgetExceeded as exc:
        # Keep only what was verified so far; unverified candidates are
        # dropped rather than trusted (losslessness over completeness).
        with suspended():
            fidelity.notes.append(
                f"g3 verification truncated by {exc.reason}; "
                "unverified sampled FDs were dropped"
            )
        raise
    return fds, runner.last_sampled_rows
