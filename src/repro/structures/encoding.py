"""Columnar dictionary encoding — the shared substrate of the PLI hot path.

Every consumer of record-level value comparisons (PLI construction, HyFD
validation, the sampler, agree-set computation) needs the same thing: a
dense integer id per distinct value, per column, with the configured
NULL semantics baked in.  Historically each consumer re-derived those
ids from the raw Python objects; this module computes them **once per
relation instance** and hands out flat ``array('i')`` vectors that
everything else indexes.

Encoding rules (identical to the classic ``column_value_ids`` helper):

* ids are assigned in first-occurrence order, densely from 0,
* with ``null_equals_null=True`` all NULLs of a column share one id
  (recorded as :attr:`EncodedRelation.null_codes` so partition builders
  can keep the NULL cluster in its conventional last position),
* with ``null_equals_null=False`` every NULL receives a fresh id, so no
  two NULL rows ever agree and NULL rows are stripped as singletons.

The module deliberately imports nothing from :mod:`repro.model` so the
model layer can depend on it without cycles.

Where the code vectors *live* is delegated to
:mod:`repro.structures.storage`: under the ``memory`` policy they are
plain ``array('i')`` buffers exactly as before; under ``spill`` (or
``auto`` past the memory-budget threshold) they are ``memoryview``
casts over mmapped per-column files owned by a
:class:`~repro.structures.storage.ColumnStore`.  Both satisfy the same
buffer/sequence protocol, so every consumer below this line is
tier-oblivious.  :class:`ChunkedEncoder` is the streaming construction
path: callers feed row chunks, finished code pages go straight to the
backing store, and per-column *decode tables* (id → value) let
:class:`~repro.model.instance.RelationInstance` expose the raw values
lazily via :class:`DecodedColumn` without ever holding the source rows
whole in the heap.

For the incremental engine (``repro.incremental``) an encoding is also
*maintainable*: :meth:`EncodedRelation.extend` grows the per-column
dictionaries append-only (new values get fresh ids, existing values
reuse their id), and :meth:`EncodedRelation.remove_rows` compacts the
code vectors after a delete.  Removal never recycles ids, so
``cardinalities`` counts ids *assigned*, which after deletes may exceed
the number of distinct values still live — all id consumers only rely
on equal-value ⇔ equal-id within a column, which both operations
preserve.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Any

from repro import kernels
from repro.structures import storage

__all__ = [
    "ChunkedEncoder",
    "DecodedColumn",
    "EncodedRelation",
    "encode_column",
]


def encode_column(
    values: Sequence[Any], null_equals_null: bool = True
) -> tuple[array, int, int | None]:
    """Dictionary-encode one column.

    Returns ``(codes, cardinality, null_code)`` where ``codes`` is an
    ``array('i')`` of dense value ids, ``cardinality`` the number of ids
    assigned, and ``null_code`` the shared NULL id (``None`` when the
    column has no NULLs or NULLs are pairwise distinct).
    """
    codes, ids, next_id, null_code = _encode_column_state(values, null_equals_null)
    return codes, next_id, null_code


def _encode_column_state(
    values: Sequence[Any], null_equals_null: bool
) -> tuple[array, dict[Any, int], int, int | None]:
    """Encode one column and keep the value → id dictionary.

    The retained state (``ids``, ``next_id``, ``null_code``) is what
    :meth:`EncodedRelation.extend` needs to encode appended rows
    consistently with the existing codes.
    """
    codes = array("i", bytes(4 * len(values)))
    ids: dict[Any, int] = {}
    next_id = 0
    null_code: int | None = None
    for row, value in enumerate(values):
        if value is None:
            if null_equals_null:
                if null_code is None:
                    null_code = next_id
                    next_id += 1
                codes[row] = null_code
            else:
                codes[row] = next_id
                next_id += 1
            continue
        assigned = ids.get(value)
        if assigned is None:
            assigned = next_id
            ids[value] = assigned
            next_id += 1
        codes[row] = assigned
    return codes, ids, next_id, null_code


class EncodedRelation:
    """All columns of one relation instance, dictionary-encoded.

    ``codes[attr][row]`` is the dense value id of cell ``(row, attr)``.
    Instances are built via :meth:`encode` and cached on the owning
    :class:`~repro.model.instance.RelationInstance`.
    """

    __slots__ = (
        "codes",
        "cardinalities",
        "null_codes",
        "num_rows",
        "arity",
        "null_equals_null",
        "value_ids",
        "store",
    )

    def __init__(
        self,
        codes: list[array],
        cardinalities: list[int],
        null_codes: list[int | None],
        num_rows: int,
        null_equals_null: bool,
        value_ids: list[dict[Any, int]] | None = None,
        store: storage.ColumnStore | None = None,
    ) -> None:
        self.codes = codes
        self.cardinalities = cardinalities
        self.null_codes = null_codes
        self.num_rows = num_rows
        self.arity = len(codes)
        self.null_equals_null = null_equals_null
        self.value_ids = value_ids
        self.store = store

    @property
    def tier(self) -> str:
        """Where the code vectors live: ``"memory"`` or ``"spill"``."""
        return "spill" if self.store is not None else "memory"

    @classmethod
    def encode(
        cls, columns_data: Sequence[Sequence[Any]], null_equals_null: bool = True
    ) -> "EncodedRelation":
        """Encode every column of a column-major table.

        The storage policy decides where the resulting code vectors
        live: in-heap ``array('i')`` buffers, or — when the projected
        ``4 * rows * arity`` footprint would breach the spill threshold
        (or the policy is ``spill`` outright) — page files under a
        :class:`~repro.structures.storage.ColumnStore`, encoded one
        page at a time so the staging heap stays O(page) per column.
        """
        num_rows = len(columns_data[0]) if columns_data else 0
        arity = len(columns_data)
        if arity and storage.resolve_tier(4 * num_rows * arity) == "spill":
            return cls._encode_spilled(columns_data, null_equals_null, num_rows)
        codes: list[array] = []
        cardinalities: list[int] = []
        null_codes: list[int | None] = []
        value_ids: list[dict[Any, int]] = []
        for column in columns_data:
            col_codes, ids, cardinality, null_code = _encode_column_state(
                column, null_equals_null
            )
            codes.append(col_codes)
            cardinalities.append(cardinality)
            null_codes.append(null_code)
            value_ids.append(ids)
        return cls(
            codes, cardinalities, null_codes, num_rows, null_equals_null, value_ids
        )

    @classmethod
    def _encode_spilled(
        cls,
        columns_data: Sequence[Sequence[Any]],
        null_equals_null: bool,
        num_rows: int,
    ) -> "EncodedRelation":
        """Encode straight into a spill store, one page at a time."""
        store = storage.ColumnStore(len(columns_data))
        cardinalities: list[int] = []
        null_codes: list[int | None] = []
        value_ids: list[dict[Any, int]] = []
        page_rows = storage.PAGE_ROWS
        for attr, column in enumerate(columns_data):
            ids: dict[Any, int] = {}
            next_id = 0
            null_code: int | None = None
            page = array("i")
            for value in column:
                if value is None:
                    if null_equals_null:
                        if null_code is None:
                            null_code = next_id
                            next_id += 1
                        page.append(null_code)
                    else:
                        page.append(next_id)
                        next_id += 1
                else:
                    assigned = ids.get(value)
                    if assigned is None:
                        assigned = next_id
                        ids[value] = assigned
                        next_id += 1
                    page.append(assigned)
                if len(page) >= page_rows:
                    storage.note_buffered(len(page))
                    store.append_page(attr, page)
                    page = array("i")
            if len(page):
                storage.note_buffered(len(page))
                store.append_page(attr, page)
            cardinalities.append(next_id)
            null_codes.append(null_code)
            value_ids.append(ids)
        store.finalize(num_rows)
        return cls(
            store.views(),
            cardinalities,
            null_codes,
            num_rows,
            null_equals_null,
            value_ids,
            store=store,
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (repro.incremental)
    # ------------------------------------------------------------------
    def extend(self, new_columns: Sequence[Sequence[Any]]) -> None:
        """Append rows, growing the per-column dictionaries append-only.

        ``new_columns`` is the column-major suffix (one sequence per
        attribute, all the same length).  Existing values reuse their
        id; new values get the next dense id.  Under
        ``null_equals_null=False`` every appended NULL still receives a
        fresh id, so NULL rows continue to agree with nothing.
        """
        if self.value_ids is None:
            raise ValueError(
                "encoding was built without retained dictionaries; "
                "use EncodedRelation.encode()"
            )
        if len(new_columns) != self.arity:
            raise ValueError(
                f"expected {self.arity} columns, got {len(new_columns)}"
            )
        delta = len(new_columns[0]) if new_columns else 0
        if self.store is not None:
            self._extend_spilled(new_columns, delta)
            return
        for attr, column in enumerate(new_columns):
            if len(column) != delta:
                raise ValueError("ragged appended columns")
            codes = self.codes[attr]
            ids = self.value_ids[attr]
            next_id = self.cardinalities[attr]
            null_code = self.null_codes[attr]
            for value in column:
                if value is None:
                    if self.null_equals_null:
                        if null_code is None:
                            null_code = next_id
                            next_id += 1
                        codes.append(null_code)
                    else:
                        codes.append(next_id)
                        next_id += 1
                    continue
                assigned = ids.get(value)
                if assigned is None:
                    assigned = next_id
                    ids[value] = assigned
                    next_id += 1
                codes.append(assigned)
            self.cardinalities[attr] = next_id
            self.null_codes[attr] = null_code
        self.num_rows += delta

    def _extend_spilled(
        self, new_columns: Sequence[Sequence[Any]], delta: int
    ) -> None:
        """Append rows to store-backed columns (page append + remap).

        Lengths are validated *before* any file write so a ragged batch
        cannot leave the store's columns at different lengths.
        """
        for column in new_columns:
            if len(column) != delta:
                raise ValueError("ragged appended columns")
        for attr, column in enumerate(new_columns):
            ids = self.value_ids[attr]
            next_id = self.cardinalities[attr]
            null_code = self.null_codes[attr]
            page = array("i")
            for value in column:
                if value is None:
                    if self.null_equals_null:
                        if null_code is None:
                            null_code = next_id
                            next_id += 1
                        page.append(null_code)
                    else:
                        page.append(next_id)
                        next_id += 1
                    continue
                assigned = ids.get(value)
                if assigned is None:
                    assigned = next_id
                    ids[value] = assigned
                    next_id += 1
                page.append(assigned)
            storage.note_buffered(len(page))
            self.store.append_column(attr, page)
            self.cardinalities[attr] = next_id
            self.null_codes[attr] = null_code
        self.num_rows += delta
        self.store.remap(self.num_rows)
        self.codes = self.store.views()

    def remove_rows(self, positions: Sequence[int]) -> None:
        """Compact the code vectors, dropping the given row positions.

        Ids are not recycled: the dictionaries keep their entries, so a
        later :meth:`extend` re-inserting a removed value reuses its old
        id.  ``cardinalities`` therefore stays the assigned-id count.
        """
        doomed = set(positions)
        if not doomed:
            return
        if any(pos < 0 or pos >= self.num_rows for pos in doomed):
            raise ValueError("row position out of range")
        keep = [row for row in range(self.num_rows) if row not in doomed]
        if self.store is not None:
            compacted = [
                array("i", (codes[row] for row in keep)) for codes in self.codes
            ]
            self.store.rewrite_all(compacted, len(keep))
            self.codes = self.store.views()
            self.num_rows = len(keep)
            return
        for attr, codes in enumerate(self.codes):
            self.codes[attr] = array("i", (codes[row] for row in keep))
        self.num_rows = len(keep)

    def agree_set(self, left: int, right: int) -> int:
        """Bitmask of the attributes on which rows ``left``/``right`` agree.

        This is *the* shared agree-set helper: the sampler, HyFD
        validation, and HyUCC all delegate here instead of re-implementing
        the loop on their own probe copies.
        """
        agree = 0
        bit = 1
        for codes in self.codes:
            if codes[left] == codes[right]:
                agree |= bit
            bit <<= 1
        return agree

    def agree_sets_batch(
        self, lefts: Sequence[int], rights: Sequence[int]
    ) -> list[int]:
        """Agree masks for many row pairs in one kernel dispatch.

        ``masks[i]`` equals ``agree_set(lefts[i], rights[i])``; under the
        numpy backend the comparison runs column-at-a-time over the whole
        batch with the masks packed into uint64 bitset words.
        """
        kernels.record("agree_pairs", len(lefts))
        return kernels.active().agree_pairs(self.codes, lefts, rights)

    def agree_sets_vs(self, left: int, rights: Sequence[int]) -> list[int]:
        """Agree masks of one row against many others (incremental engine)."""
        kernels.record("agree_pairs", len(rights))
        return kernels.active().agree_one_to_many(self.codes, left, rights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncodedRelation({self.arity} cols, {self.num_rows} rows, "
            f"null_equals_null={self.null_equals_null})"
        )


class DecodedColumn(Sequence):
    """A lazily-decoded view of one encoded column.

    Backed by the column's code vector (possibly an mmapped spill page)
    and its decode table (``table[code]`` is the original value, ``None``
    for NULL codes).  Supports exactly what the read paths of
    :class:`~repro.model.instance.RelationInstance` need — ``len``,
    indexing, iteration — so a chunk-ingested instance never needs the
    raw values materialized as a Python list.  Repeated values decode to
    the *same* object (the table entry), so even a full ``list(column)``
    copy holds one object per distinct value.
    """

    __slots__ = ("_codes", "_table")

    def __init__(self, codes: Sequence[int], table: list) -> None:
        self._codes = codes
        self._table = table

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            table = self._table
            return [table[code] for code in self._codes[index]]
        return self._table[self._codes[index]]

    def __iter__(self):
        table = self._table
        for code in self._codes:
            yield table[code]

    @property
    def has_null(self) -> bool:
        """True iff any cell is NULL (answered from the decode table)."""
        return any(value is None for value in self._table)


class ChunkedEncoder:
    """Streaming construction of an :class:`EncodedRelation`.

    Callers feed row-major chunks via :meth:`add_rows`; each value runs
    through the same append-only dictionary progression as
    :func:`_encode_column_state` (parity by construction), codes land in
    per-column staging buffers, and — once a backing store is active —
    full pages are flushed to disk so the staging heap stays bounded by
    the chunk size, never the dataset.

    Tier behavior follows the storage policy captured at construction:
    ``spill`` opens a :class:`~repro.structures.storage.ColumnStore`
    up front; ``auto`` starts buffering in-process and converts to a
    store the moment the accumulated encoded footprint crosses the
    spill threshold (the row count is unknown mid-stream, so the
    *observed* footprint is the trigger); ``memory`` never spills.

    Per-column decode tables (id → value) are maintained alongside so
    :meth:`~repro.model.instance.RelationInstance.from_encoded` can
    expose the raw values lazily.
    """

    __slots__ = (
        "arity",
        "null_equals_null",
        "num_rows",
        "_ids",
        "_next_ids",
        "_null_codes",
        "_buffers",
        "_tables",
        "_store",
        "_auto",
        "_threshold",
        "_finished",
    )

    def __init__(self, arity: int, null_equals_null: bool = True) -> None:
        self.arity = arity
        self.null_equals_null = null_equals_null
        self.num_rows = 0
        self._ids: list[dict[Any, int]] = [{} for _ in range(arity)]
        self._next_ids = [0] * arity
        self._null_codes: list[int | None] = [None] * arity
        self._buffers = [array("i") for _ in range(arity)]
        self._tables: list[list] = [[] for _ in range(arity)]
        self._store: storage.ColumnStore | None = None
        self._finished = False
        policy = storage.policy_name()
        self._auto = policy == "auto"
        self._threshold = storage.spill_threshold_bytes() if self._auto else 0
        if policy == "spill" and arity:
            self._store = storage.ColumnStore(arity)

    def add_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Encode one chunk of rows (each row ``arity`` values wide)."""
        ids_per_attr = self._ids
        next_ids = self._next_ids
        null_codes = self._null_codes
        buffers = self._buffers
        tables = self._tables
        null_equals_null = self.null_equals_null
        for row in rows:
            for attr, value in enumerate(row):
                if value is None:
                    if null_equals_null:
                        null_code = null_codes[attr]
                        if null_code is None:
                            null_code = next_ids[attr]
                            null_codes[attr] = null_code
                            next_ids[attr] += 1
                            tables[attr].append(None)
                        buffers[attr].append(null_code)
                    else:
                        buffers[attr].append(next_ids[attr])
                        next_ids[attr] += 1
                        tables[attr].append(None)
                    continue
                ids = ids_per_attr[attr]
                assigned = ids.get(value)
                if assigned is None:
                    assigned = next_ids[attr]
                    ids[value] = assigned
                    next_ids[attr] += 1
                    tables[attr].append(value)
                buffers[attr].append(assigned)
        self.num_rows += len(rows)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if not self.arity:
            return
        buffered_rows = len(self._buffers[0])
        storage.note_buffered(buffered_rows * self.arity)
        if self._store is None:
            if not self._auto:
                return
            footprint = 4 * self.num_rows * self.arity
            if footprint < self._threshold:
                return
            # Crossed the budget-derived threshold mid-stream: convert
            # to the spill tier and evacuate everything staged so far.
            self._store = storage.ColumnStore(self.arity)
            self._flush_buffers()
            return
        if buffered_rows >= storage.PAGE_ROWS:
            self._flush_buffers()

    def _flush_buffers(self) -> None:
        for attr, buffer in enumerate(self._buffers):
            if len(buffer):
                self._store.append_page(attr, buffer)
        self._buffers = [array("i") for _ in range(self.arity)]

    def finish(self) -> EncodedRelation:
        """Seal the stream and hand back the finished encoding."""
        if self._finished:
            raise ValueError("ChunkedEncoder.finish() called twice")
        self._finished = True
        if self._store is not None:
            self._flush_buffers()
            self._store.finalize(self.num_rows)
            codes = self._store.views()
        else:
            codes = self._buffers
        return EncodedRelation(
            codes,
            self._next_ids,
            self._null_codes,
            self.num_rows,
            self.null_equals_null,
            value_ids=self._ids,
            store=self._store,
        )

    def decode_tables(self) -> list[list]:
        """Per-column id → value tables (``None`` entries for NULL ids)."""
        return self._tables
