"""Columnar dictionary encoding — the shared substrate of the PLI hot path.

Every consumer of record-level value comparisons (PLI construction, HyFD
validation, the sampler, agree-set computation) needs the same thing: a
dense integer id per distinct value, per column, with the configured
NULL semantics baked in.  Historically each consumer re-derived those
ids from the raw Python objects; this module computes them **once per
relation instance** and hands out flat ``array('i')`` vectors that
everything else indexes.

Encoding rules (identical to the classic ``column_value_ids`` helper):

* ids are assigned in first-occurrence order, densely from 0,
* with ``null_equals_null=True`` all NULLs of a column share one id
  (recorded as :attr:`EncodedRelation.null_codes` so partition builders
  can keep the NULL cluster in its conventional last position),
* with ``null_equals_null=False`` every NULL receives a fresh id, so no
  two NULL rows ever agree and NULL rows are stripped as singletons.

The module deliberately imports nothing from :mod:`repro.model` so the
model layer can depend on it without cycles.

For the incremental engine (``repro.incremental``) an encoding is also
*maintainable*: :meth:`EncodedRelation.extend` grows the per-column
dictionaries append-only (new values get fresh ids, existing values
reuse their id), and :meth:`EncodedRelation.remove_rows` compacts the
code vectors after a delete.  Removal never recycles ids, so
``cardinalities`` counts ids *assigned*, which after deletes may exceed
the number of distinct values still live — all id consumers only rely
on equal-value ⇔ equal-id within a column, which both operations
preserve.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Any

from repro import kernels

__all__ = ["EncodedRelation", "encode_column"]


def encode_column(
    values: Sequence[Any], null_equals_null: bool = True
) -> tuple[array, int, int | None]:
    """Dictionary-encode one column.

    Returns ``(codes, cardinality, null_code)`` where ``codes`` is an
    ``array('i')`` of dense value ids, ``cardinality`` the number of ids
    assigned, and ``null_code`` the shared NULL id (``None`` when the
    column has no NULLs or NULLs are pairwise distinct).
    """
    codes, ids, next_id, null_code = _encode_column_state(values, null_equals_null)
    return codes, next_id, null_code


def _encode_column_state(
    values: Sequence[Any], null_equals_null: bool
) -> tuple[array, dict[Any, int], int, int | None]:
    """Encode one column and keep the value → id dictionary.

    The retained state (``ids``, ``next_id``, ``null_code``) is what
    :meth:`EncodedRelation.extend` needs to encode appended rows
    consistently with the existing codes.
    """
    codes = array("i", bytes(4 * len(values)))
    ids: dict[Any, int] = {}
    next_id = 0
    null_code: int | None = None
    for row, value in enumerate(values):
        if value is None:
            if null_equals_null:
                if null_code is None:
                    null_code = next_id
                    next_id += 1
                codes[row] = null_code
            else:
                codes[row] = next_id
                next_id += 1
            continue
        assigned = ids.get(value)
        if assigned is None:
            assigned = next_id
            ids[value] = assigned
            next_id += 1
        codes[row] = assigned
    return codes, ids, next_id, null_code


class EncodedRelation:
    """All columns of one relation instance, dictionary-encoded.

    ``codes[attr][row]`` is the dense value id of cell ``(row, attr)``.
    Instances are built via :meth:`encode` and cached on the owning
    :class:`~repro.model.instance.RelationInstance`.
    """

    __slots__ = (
        "codes",
        "cardinalities",
        "null_codes",
        "num_rows",
        "arity",
        "null_equals_null",
        "value_ids",
    )

    def __init__(
        self,
        codes: list[array],
        cardinalities: list[int],
        null_codes: list[int | None],
        num_rows: int,
        null_equals_null: bool,
        value_ids: list[dict[Any, int]] | None = None,
    ) -> None:
        self.codes = codes
        self.cardinalities = cardinalities
        self.null_codes = null_codes
        self.num_rows = num_rows
        self.arity = len(codes)
        self.null_equals_null = null_equals_null
        self.value_ids = value_ids

    @classmethod
    def encode(
        cls, columns_data: Sequence[Sequence[Any]], null_equals_null: bool = True
    ) -> "EncodedRelation":
        """Encode every column of a column-major table."""
        codes: list[array] = []
        cardinalities: list[int] = []
        null_codes: list[int | None] = []
        value_ids: list[dict[Any, int]] = []
        num_rows = len(columns_data[0]) if columns_data else 0
        for column in columns_data:
            col_codes, ids, cardinality, null_code = _encode_column_state(
                column, null_equals_null
            )
            codes.append(col_codes)
            cardinalities.append(cardinality)
            null_codes.append(null_code)
            value_ids.append(ids)
        return cls(
            codes, cardinalities, null_codes, num_rows, null_equals_null, value_ids
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (repro.incremental)
    # ------------------------------------------------------------------
    def extend(self, new_columns: Sequence[Sequence[Any]]) -> None:
        """Append rows, growing the per-column dictionaries append-only.

        ``new_columns`` is the column-major suffix (one sequence per
        attribute, all the same length).  Existing values reuse their
        id; new values get the next dense id.  Under
        ``null_equals_null=False`` every appended NULL still receives a
        fresh id, so NULL rows continue to agree with nothing.
        """
        if self.value_ids is None:
            raise ValueError(
                "encoding was built without retained dictionaries; "
                "use EncodedRelation.encode()"
            )
        if len(new_columns) != self.arity:
            raise ValueError(
                f"expected {self.arity} columns, got {len(new_columns)}"
            )
        delta = len(new_columns[0]) if new_columns else 0
        for attr, column in enumerate(new_columns):
            if len(column) != delta:
                raise ValueError("ragged appended columns")
            codes = self.codes[attr]
            ids = self.value_ids[attr]
            next_id = self.cardinalities[attr]
            null_code = self.null_codes[attr]
            for value in column:
                if value is None:
                    if self.null_equals_null:
                        if null_code is None:
                            null_code = next_id
                            next_id += 1
                        codes.append(null_code)
                    else:
                        codes.append(next_id)
                        next_id += 1
                    continue
                assigned = ids.get(value)
                if assigned is None:
                    assigned = next_id
                    ids[value] = assigned
                    next_id += 1
                codes.append(assigned)
            self.cardinalities[attr] = next_id
            self.null_codes[attr] = null_code
        self.num_rows += delta

    def remove_rows(self, positions: Sequence[int]) -> None:
        """Compact the code vectors, dropping the given row positions.

        Ids are not recycled: the dictionaries keep their entries, so a
        later :meth:`extend` re-inserting a removed value reuses its old
        id.  ``cardinalities`` therefore stays the assigned-id count.
        """
        doomed = set(positions)
        if not doomed:
            return
        if any(pos < 0 or pos >= self.num_rows for pos in doomed):
            raise ValueError("row position out of range")
        keep = [row for row in range(self.num_rows) if row not in doomed]
        for attr, codes in enumerate(self.codes):
            self.codes[attr] = array("i", (codes[row] for row in keep))
        self.num_rows = len(keep)

    def agree_set(self, left: int, right: int) -> int:
        """Bitmask of the attributes on which rows ``left``/``right`` agree.

        This is *the* shared agree-set helper: the sampler, HyFD
        validation, and HyUCC all delegate here instead of re-implementing
        the loop on their own probe copies.
        """
        agree = 0
        bit = 1
        for codes in self.codes:
            if codes[left] == codes[right]:
                agree |= bit
            bit <<= 1
        return agree

    def agree_sets_batch(
        self, lefts: Sequence[int], rights: Sequence[int]
    ) -> list[int]:
        """Agree masks for many row pairs in one kernel dispatch.

        ``masks[i]`` equals ``agree_set(lefts[i], rights[i])``; under the
        numpy backend the comparison runs column-at-a-time over the whole
        batch with the masks packed into uint64 bitset words.
        """
        kernels.record("agree_pairs", len(lefts))
        return kernels.active().agree_pairs(self.codes, lefts, rights)

    def agree_sets_vs(self, left: int, rights: Sequence[int]) -> list[int]:
        """Agree masks of one row against many others (incremental engine)."""
        kernels.record("agree_pairs", len(rights))
        return kernels.active().agree_one_to_many(self.codes, left, rights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncodedRelation({self.arity} cols, {self.num_rows} rows, "
            f"null_equals_null={self.null_equals_null})"
        )
