"""Columnar dictionary encoding — the shared substrate of the PLI hot path.

Every consumer of record-level value comparisons (PLI construction, HyFD
validation, the sampler, agree-set computation) needs the same thing: a
dense integer id per distinct value, per column, with the configured
NULL semantics baked in.  Historically each consumer re-derived those
ids from the raw Python objects; this module computes them **once per
relation instance** and hands out flat ``array('i')`` vectors that
everything else indexes.

Encoding rules (identical to the classic ``column_value_ids`` helper):

* ids are assigned in first-occurrence order, densely from 0,
* with ``null_equals_null=True`` all NULLs of a column share one id
  (recorded as :attr:`EncodedRelation.null_codes` so partition builders
  can keep the NULL cluster in its conventional last position),
* with ``null_equals_null=False`` every NULL receives a fresh id, so no
  two NULL rows ever agree and NULL rows are stripped as singletons.

The module deliberately imports nothing from :mod:`repro.model` so the
model layer can depend on it without cycles.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Any

__all__ = ["EncodedRelation", "encode_column"]


def encode_column(
    values: Sequence[Any], null_equals_null: bool = True
) -> tuple[array, int, int | None]:
    """Dictionary-encode one column.

    Returns ``(codes, cardinality, null_code)`` where ``codes`` is an
    ``array('i')`` of dense value ids, ``cardinality`` the number of ids
    assigned, and ``null_code`` the shared NULL id (``None`` when the
    column has no NULLs or NULLs are pairwise distinct).
    """
    codes = array("i", bytes(4 * len(values)))
    ids: dict[Any, int] = {}
    next_id = 0
    null_code: int | None = None
    for row, value in enumerate(values):
        if value is None:
            if null_equals_null:
                if null_code is None:
                    null_code = next_id
                    next_id += 1
                codes[row] = null_code
            else:
                codes[row] = next_id
                next_id += 1
            continue
        assigned = ids.get(value)
        if assigned is None:
            assigned = next_id
            ids[value] = assigned
            next_id += 1
        codes[row] = assigned
    return codes, next_id, null_code


class EncodedRelation:
    """All columns of one relation instance, dictionary-encoded.

    ``codes[attr][row]`` is the dense value id of cell ``(row, attr)``.
    Instances are built via :meth:`encode` and cached on the owning
    :class:`~repro.model.instance.RelationInstance`.
    """

    __slots__ = (
        "codes",
        "cardinalities",
        "null_codes",
        "num_rows",
        "arity",
        "null_equals_null",
    )

    def __init__(
        self,
        codes: list[array],
        cardinalities: list[int],
        null_codes: list[int | None],
        num_rows: int,
        null_equals_null: bool,
    ) -> None:
        self.codes = codes
        self.cardinalities = cardinalities
        self.null_codes = null_codes
        self.num_rows = num_rows
        self.arity = len(codes)
        self.null_equals_null = null_equals_null

    @classmethod
    def encode(
        cls, columns_data: Sequence[Sequence[Any]], null_equals_null: bool = True
    ) -> "EncodedRelation":
        """Encode every column of a column-major table."""
        codes: list[array] = []
        cardinalities: list[int] = []
        null_codes: list[int | None] = []
        num_rows = len(columns_data[0]) if columns_data else 0
        for column in columns_data:
            col_codes, cardinality, null_code = encode_column(
                column, null_equals_null
            )
            codes.append(col_codes)
            cardinalities.append(cardinality)
            null_codes.append(null_code)
        return cls(codes, cardinalities, null_codes, num_rows, null_equals_null)

    def agree_set(self, left: int, right: int) -> int:
        """Bitmask of the attributes on which rows ``left``/``right`` agree.

        This is *the* shared agree-set helper: the sampler, HyFD
        validation, and HyUCC all delegate here instead of re-implementing
        the loop on their own probe copies.
        """
        agree = 0
        bit = 1
        for codes in self.codes:
            if codes[left] == codes[right]:
                agree |= bit
            bit <<= 1
        return agree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncodedRelation({self.arity} cols, {self.num_rows} rows, "
            f"null_equals_null={self.null_equals_null})"
        )
