"""Bloom filters with cardinality estimation.

The paper's duplication score (§7.2) needs the number of distinct values
in an attribute (combination), but computing it exactly for every
violating-FD candidate is expensive.  The authors "create a Bloom filter
for each attribute and use their false positive probabilities to
efficiently estimate the number of unique values".  This module
implements exactly that: a fixed-size bit array, ``k`` double-hashing
probes per item, and the standard fill-ratio estimator

    n̂ = -(m / k) · ln(1 - X / m)

where ``m`` is the bit count and ``X`` the number of set bits
(Swamidass & Baldi 2007).
"""

from __future__ import annotations

import hashlib
import math
from typing import Any

__all__ = ["BloomFilter"]


class BloomFilter:
    """A classic Bloom filter over hashable/stringable items."""

    __slots__ = ("num_bits", "num_hashes", "_bits", "_num_added")

    def __init__(self, num_bits: int = 8192, num_hashes: int = 3) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._num_added = 0

    @classmethod
    def with_capacity(
        cls, expected_items: int, target_fpp: float = 0.01
    ) -> "BloomFilter":
        """Size a filter for ``expected_items`` at the given false-positive rate."""
        expected_items = max(1, expected_items)
        if not 0.0 < target_fpp < 1.0:
            raise ValueError("target_fpp must be in (0, 1)")
        num_bits = max(
            64, int(-expected_items * math.log(target_fpp) / (math.log(2) ** 2))
        )
        num_hashes = max(1, round(num_bits / expected_items * math.log(2)))
        return cls(num_bits=num_bits, num_hashes=num_hashes)

    # ------------------------------------------------------------------
    # Hashing: double hashing from one blake2b digest
    # ------------------------------------------------------------------
    def _positions(self, item: Any) -> list[int]:
        digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [
            (h1 + probe * h2) % self.num_bits for probe in range(self.num_hashes)
        ]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, item: Any) -> None:
        for position in self._positions(item):
            self._bits[position >> 3] |= 1 << (position & 7)
        self._num_added += 1

    def __contains__(self, item: Any) -> bool:
        return all(
            self._bits[position >> 3] >> (position & 7) & 1
            for position in self._positions(item)
        )

    @property
    def num_added(self) -> int:
        """Number of ``add`` calls (not distinct items)."""
        return self._num_added

    def bits_set(self) -> int:
        """Number of set bits in the filter."""
        return sum(byte.bit_count() for byte in self._bits)

    def fill_ratio(self) -> float:
        return self.bits_set() / self.num_bits

    def false_positive_probability(self) -> float:
        """Current false-positive probability given the fill ratio."""
        return self.fill_ratio() ** self.num_hashes

    def estimated_cardinality(self) -> float:
        """Estimate the number of *distinct* items added so far.

        Uses the fill-ratio estimator; a completely full filter returns
        the best representable bound instead of infinity.
        """
        ratio = self.fill_ratio()
        if ratio >= 1.0:
            # Saturated: every distinct-count >= m/k * ln(m) is plausible;
            # return a large finite pseudo-count so scores stay ordered.
            return self.num_bits / self.num_hashes * math.log(self.num_bits)
        return -(self.num_bits / self.num_hashes) * math.log(1.0 - ratio)
