"""A set-trie: prefix tree over attribute sets for fast subset queries.

The paper uses this structure twice:

* the improved/optimized closure algorithms keep one trie of FD LHSs per
  RHS attribute and ask "does this trie contain a subset of the current
  FD's attributes?" (Algorithm 2 line 9, Algorithm 3 line 7), and
* the violation detector keeps all derived keys in a trie and asks the
  same subset question against each FD's LHS (Algorithm 4 line 8).

Sets are attribute bitmasks; internally each set is stored as its sorted
index sequence along a path of child dictionaries.  The subset query
walks only children whose attribute is present in the query mask, which
is the classic set-trie pruning (Savnik-style) the paper refers to.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.model.attributes import bits_of, mask_of

__all__ = ["SetTrie"]


class _Node:
    __slots__ = ("children", "terminal")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.terminal = False


class SetTrie:
    """Stores attribute-set bitmasks; answers subset/superset queries."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, mask: int) -> bool:
        """Insert a set; return True if it was not present before.

        The empty set (mask 0) is a valid member and is a subset of
        everything.
        """
        node = self._root
        for index in bits_of(mask):
            child = node.children.get(index)
            if child is None:
                child = _Node()
                node.children[index] = child
            node = child
        if node.terminal:
            return False
        node.terminal = True
        self._size += 1
        return True

    def remove(self, mask: int) -> bool:
        """Remove a set; return True if it was present.  Leaves are pruned."""
        path: list[tuple[_Node, int]] = []
        node = self._root
        for index in bits_of(mask):
            child = node.children.get(index)
            if child is None:
                return False
            path.append((node, index))
            node = child
        if not node.terminal:
            return False
        node.terminal = False
        self._size -= 1
        for parent, index in reversed(path):
            child = parent.children[index]
            if child.terminal or child.children:
                break
            del parent.children[index]
        return True

    def __contains__(self, mask: int) -> bool:
        node = self._root
        for index in bits_of(mask):
            node = node.children.get(index)  # type: ignore[assignment]
            if node is None:
                return False
        return node.terminal

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains_subset_of(self, mask: int) -> bool:
        """True iff some stored set is a subset of ``mask``.

        This is the hot query of Algorithms 2–4.
        """
        return self._contains_subset(self._root, mask)

    def _contains_subset(self, node: _Node, mask: int) -> bool:
        if node.terminal:
            return True
        for index, child in node.children.items():
            if mask >> index & 1 and self._contains_subset(child, mask):
                return True
        return False

    def contains_proper_subset_of(self, mask: int) -> bool:
        """True iff some stored set is a *proper* subset of ``mask``."""
        return self._contains_proper_subset(self._root, mask, 0)

    def _contains_proper_subset(self, node: _Node, mask: int, depth_mask: int) -> bool:
        if node.terminal and depth_mask != mask:
            return True
        for index, child in node.children.items():
            if mask >> index & 1:
                if self._contains_proper_subset(child, mask, depth_mask | (1 << index)):
                    return True
        return False

    def iter_subsets_of(self, mask: int) -> Iterator[int]:
        """Yield every stored set that is a subset of ``mask``."""
        yield from self._iter_subsets(self._root, mask, ())

    def _iter_subsets(
        self, node: _Node, mask: int, prefix: tuple[int, ...]
    ) -> Iterator[int]:
        if node.terminal:
            yield mask_of(prefix)
        for index, child in sorted(node.children.items()):
            if mask >> index & 1:
                yield from self._iter_subsets(child, mask, prefix + (index,))

    def contains_superset_of(self, mask: int) -> bool:
        """True iff some stored set is a superset of ``mask``."""
        return self._contains_superset(self._root, bits_of(mask), 0)

    def _contains_superset(
        self, node: _Node, required: tuple[int, ...], pos: int
    ) -> bool:
        if pos == len(required):
            return node.terminal or self._has_any_terminal(node)
        target = required[pos]
        for index, child in node.children.items():
            if index > target:
                continue
            next_pos = pos + 1 if index == target else pos
            if self._contains_superset(child, required, next_pos):
                return True
        return False

    def _has_any_terminal(self, node: _Node) -> bool:
        if node.terminal:
            return True
        return any(self._has_any_terminal(child) for child in node.children.values())

    def iter_all(self) -> Iterator[int]:
        """Yield all stored sets (unspecified but deterministic order)."""
        yield from self._iter_all(self._root, ())

    def _iter_all(self, node: _Node, prefix: tuple[int, ...]) -> Iterator[int]:
        if node.terminal:
            yield mask_of(prefix)
        for index, child in sorted(node.children.items()):
            yield from self._iter_all(child, prefix + (index,))
