"""Stripped partitions (position list indexes) and their intersection.

A *stripped partition* ``π(X)`` groups the row indices of a relation by
equal values in the attribute set ``X`` and drops singleton clusters
(they can never witness or violate an FD).  This is the classic TANE
representation [Huhtala et al. 1999] that HyFD and DFD reuse:

* ``X → A`` holds  iff  ``π(X)`` refines ``π(A)``  iff
  ``error(π(X)) == error(π(X ∪ A))``,
* ``X`` is a unique (key candidate) iff ``π(X)`` is empty.

NULL handling is configurable: with ``null_equals_null=True`` (the
Metanome/paper default) all NULLs land in one cluster; otherwise each
NULL is its own singleton and is stripped away.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.model.attributes import bits_of
from repro.model.instance import RelationInstance

__all__ = ["PLICache", "StrippedPartition"]

_NULL_SENTINEL = object()


class StrippedPartition:
    """A stripped partition: non-singleton clusters of row indices."""

    __slots__ = ("clusters", "num_rows")

    def __init__(self, clusters: Sequence[Sequence[int]], num_rows: int) -> None:
        self.clusters: list[list[int]] = [list(c) for c in clusters if len(c) > 1]
        self.num_rows = num_rows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_column(
        cls, values: Sequence[Any], null_equals_null: bool = True
    ) -> "StrippedPartition":
        """Build the single-attribute partition of a data column."""
        groups: dict[Any, list[int]] = {}
        null_group: list[int] = []
        for row, value in enumerate(values):
            if value is None:
                if null_equals_null:
                    null_group.append(row)
                # else: singleton by definition, stripped immediately
            else:
                groups.setdefault(value, []).append(row)
        clusters = [cluster for cluster in groups.values() if len(cluster) > 1]
        if len(null_group) > 1:
            clusters.append(null_group)
        return cls(clusters, len(values))

    @classmethod
    def single_cluster(cls, num_rows: int) -> "StrippedPartition":
        """The partition of the empty attribute set: all rows together."""
        if num_rows <= 1:
            return cls([], num_rows)
        return cls([list(range(num_rows))], num_rows)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_non_singleton_rows(self) -> int:
        return sum(len(cluster) for cluster in self.clusters)

    @property
    def error(self) -> int:
        """TANE's e(X)·|r|: rows that would have to be removed for a key."""
        return self.num_non_singleton_rows - self.num_clusters

    @property
    def is_unique(self) -> bool:
        """True iff the attribute set is a unique column combination."""
        return not self.clusters

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def as_probe(self) -> list[int]:
        """Row → cluster id (-1 for stripped singleton rows)."""
        probe = [-1] * self.num_rows
        for cluster_id, cluster in enumerate(self.clusters):
            for row in cluster:
                probe[row] = cluster_id
        return probe

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """Product partition ``π(X) · π(Y) = π(X ∪ Y)`` via probe table.

        This is the standard linear-time stripped-product algorithm.
        """
        if self.num_rows != other.num_rows:
            raise ValueError("partitions cover different numbers of rows")
        probe = other.as_probe()
        new_clusters: list[list[int]] = []
        for cluster in self.clusters:
            sub: dict[int, list[int]] = {}
            for row in cluster:
                other_id = probe[row]
                if other_id >= 0:
                    sub.setdefault(other_id, []).append(row)
            for rows in sub.values():
                if len(rows) > 1:
                    new_clusters.append(rows)
        return StrippedPartition(new_clusters, self.num_rows)

    def refines_column(self, probe: Sequence[int]) -> bool:
        """True iff every cluster agrees on ``probe`` values (FD check).

        ``probe`` maps row → value id for the RHS attribute, with distinct
        non-negative ids per distinct value; NULL handling must already be
        baked into the ids (same id for all NULLs under null==null).
        """
        for cluster in self.clusters:
            first = probe[cluster[0]]
            for row in cluster[1:]:
                if probe[row] != first:
                    return False
        return True

    def find_violating_pair(self, probe: Sequence[int]) -> tuple[int, int] | None:
        """Return one row pair that agrees on X but differs on the probe."""
        for cluster in self.clusters:
            first_row = cluster[0]
            first = probe[first_row]
            for row in cluster[1:]:
                if probe[row] != first:
                    return (first_row, row)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StrippedPartition({self.num_clusters} clusters, "
            f"{self.num_rows} rows, error={self.error})"
        )


def column_value_ids(
    values: Sequence[Any], null_equals_null: bool = True
) -> list[int]:
    """Map a column to dense value ids (NULL semantics as configured).

    With ``null_equals_null=False`` every NULL receives a fresh id, so no
    two NULL rows ever "agree".
    """
    ids: dict[Any, int] = {}
    out: list[int] = []
    next_id = 0
    for value in values:
        key = _NULL_SENTINEL if value is None else value
        if value is None and not null_equals_null:
            out.append(next_id)
            next_id += 1
            continue
        assigned = ids.get(key)
        if assigned is None:
            assigned = next_id
            ids[key] = assigned
            next_id += 1
        out.append(assigned)
    return out


class PLICache:
    """Builds and memoizes stripped partitions per attribute-set mask.

    Single-attribute partitions are precomputed; multi-attribute
    partitions are produced by intersecting, preferring already-cached
    subsets to keep chains short.  The cache is unbounded — datasets in
    this library are laptop-scale by design (see DESIGN.md §3).
    """

    __slots__ = ("instance", "null_equals_null", "_cache", "_probes")

    def __init__(
        self, instance: RelationInstance, null_equals_null: bool = True
    ) -> None:
        self.instance = instance
        self.null_equals_null = null_equals_null
        self._cache: dict[int, StrippedPartition] = {
            0: StrippedPartition.single_cluster(instance.num_rows)
        }
        self._probes: dict[int, list[int]] = {}
        for index in range(instance.arity):
            column = instance.columns_data[index]
            self._cache[1 << index] = StrippedPartition.from_column(
                column, null_equals_null
            )

    def get(self, mask: int) -> StrippedPartition:
        """Return (building if necessary) the partition for ``mask``."""
        cached = self._cache.get(mask)
        if cached is not None:
            return cached
        partition = self._build(mask)
        self._cache[mask] = partition
        return partition

    def _build(self, mask: int) -> StrippedPartition:
        # Greedy: start from the largest cached subset, then intersect in
        # remaining single columns smallest-first (small partitions first
        # keeps intermediate products small).
        best_mask = 0
        for cached_mask in self._cache:
            if cached_mask and cached_mask & ~mask == 0:
                if cached_mask.bit_count() > best_mask.bit_count():
                    best_mask = cached_mask
        partition = self._cache[best_mask]
        remaining = [1 << i for i in bits_of(mask & ~best_mask)]
        remaining.sort(key=lambda m: self._cache[m].num_non_singleton_rows)
        accumulated = best_mask
        for single in remaining:
            partition = partition.intersect(self._cache[single])
            accumulated |= single
            self._cache[accumulated] = partition
        return partition

    def probe(self, attribute: int) -> list[int]:
        """Row → value id for one attribute (cached)."""
        cached = self._probes.get(attribute)
        if cached is None:
            cached = column_value_ids(
                self.instance.columns_data[attribute], self.null_equals_null
            )
            self._probes[attribute] = cached
        return cached

    def cache_size(self) -> int:
        return len(self._cache)
