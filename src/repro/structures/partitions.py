"""Stripped partitions (position list indexes) on a flat CSR layout.

A *stripped partition* ``π(X)`` groups the row indices of a relation by
equal values in the attribute set ``X`` and drops singleton clusters
(they can never witness or violate an FD).  This is the classic TANE
representation [Huhtala et al. 1999] that HyFD and DFD reuse:

* ``X → A`` holds  iff  ``π(X)`` refines ``π(A)``  iff
  ``error(π(X)) == error(π(X ∪ A))``,
* ``X`` is a unique (key candidate) iff ``π(X)`` is empty.

Storage is columnar, not nested: one contiguous ``array('i')`` of row
indices (``row_data``) plus a cluster-offset array (``offsets``), so
cluster ``i`` occupies ``row_data[offsets[i]:offsets[i+1]]``.  Compared
to the former list-of-lists layout this keeps the hot loops (product
intersection, refinement checks) on flat integer arrays and removes a
Python list object per cluster.  ``clusters`` is kept as a materializing
property for compatibility and tests.

The inner loops (grouping, products, violation scans) are *not*
implemented here: every operation dispatches through the
:mod:`repro.kernels` backend layer, which provides an interpreted
pure-Python implementation (always available, the reference) and a
vectorized numpy implementation (optional ``[perf]`` extra).  Both
produce byte-identical CSR output; selection is via ``--kernel`` /
``REPRO_KERNEL`` (see docs/KERNELS.md).

NULL handling is configurable: with ``null_equals_null=True`` (the
Metanome/paper default) all NULLs land in one cluster; otherwise each
NULL is its own singleton and is stripped away.  Value-id probes come
from the shared :mod:`repro.structures.encoding` layer.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import kernels
from repro.model.attributes import bits_of
from repro.runtime.governor import add_candidates
from repro.structures.encoding import encode_column

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.model.instance import RelationInstance

__all__ = [
    "CacheStats",
    "PLICache",
    "StrippedPartition",
    "column_value_ids",
    "reset_process_state",
]


def reset_process_state() -> None:
    """Reinitialize shared kernel scratch state (fork hygiene).

    Called by forked pool workers on start: the python backend's probe
    buffer is owned by the process that fills it, and a child forked
    while a parent ``intersect`` was in flight would otherwise inherit
    a buffer with live (non ``-1``) entries and silently corrupt its
    first product.  Kernel counters are worker-local and restart at
    zero.
    """
    kernels.reset_process_state()


class StrippedPartition:
    """A stripped partition in CSR form: flat rows + cluster offsets."""

    __slots__ = ("row_data", "offsets", "num_rows")

    def __init__(self, clusters: Sequence[Sequence[int]], num_rows: int) -> None:
        row_data = array("i")
        offsets = array("i", [0])
        for cluster in clusters:
            if len(cluster) > 1:
                row_data.extend(cluster)
                offsets.append(len(row_data))
        self.row_data = row_data
        self.offsets = offsets
        self.num_rows = num_rows

    @classmethod
    def _from_csr(
        cls, row_data: array, offsets: array, num_rows: int
    ) -> "StrippedPartition":
        partition = cls.__new__(cls)
        partition.row_data = row_data
        partition.offsets = offsets
        partition.num_rows = num_rows
        return partition

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_column(
        cls, values: Sequence[Any], null_equals_null: bool = True
    ) -> "StrippedPartition":
        """Build the single-attribute partition of a data column."""
        codes, _, null_code = encode_column(values, null_equals_null)
        return cls.from_value_ids(codes, null_code)

    @classmethod
    def from_value_ids(
        cls, codes: Sequence[int], null_code: int | None = None
    ) -> "StrippedPartition":
        """Build a single-attribute partition from dense value ids.

        ``null_code`` is the shared NULL id (if any); its cluster is
        emitted last, preserving the ordering of the historical
        raw-value grouping.
        """
        kernels.record("pli_from_ids", len(codes))
        row_data, offsets = kernels.active().from_value_ids(codes, null_code)
        return cls._from_csr(row_data, offsets, len(codes))

    @classmethod
    def single_cluster(cls, num_rows: int) -> "StrippedPartition":
        """The partition of the empty attribute set: all rows together."""
        if num_rows <= 1:
            return cls([], num_rows)
        return cls._from_csr(
            array("i", range(num_rows)), array("i", [0, num_rows]), num_rows
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def clusters(self) -> list[list[int]]:
        """Materialized list-of-lists view (compatibility/debugging)."""
        offsets = self.offsets
        row_data = self.row_data
        return [
            list(row_data[offsets[i] : offsets[i + 1]])
            for i in range(len(offsets) - 1)
        ]

    def cluster(self, index: int) -> list[int]:
        """Materialize one cluster by position."""
        return list(self.row_data[self.offsets[index] : self.offsets[index + 1]])

    def iter_clusters(self) -> Iterator[array]:
        """Yield each cluster as an ``array('i')`` slice (no row copies)."""
        offsets = self.offsets
        row_data = self.row_data
        for i in range(len(offsets) - 1):
            yield row_data[offsets[i] : offsets[i + 1]]

    @property
    def num_clusters(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_non_singleton_rows(self) -> int:
        return len(self.row_data)

    @property
    def error(self) -> int:
        """TANE's e(X)·|r|: rows that would have to be removed for a key."""
        return len(self.row_data) - self.num_clusters

    @property
    def is_unique(self) -> bool:
        """True iff the attribute set is a unique column combination."""
        return len(self.offsets) == 1

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def as_probe(self) -> list[int]:
        """Row → cluster id (-1 for stripped singleton rows)."""
        probe = [-1] * self.num_rows
        offsets = self.offsets
        row_data = self.row_data
        for cluster_id in range(len(offsets) - 1):
            for row in row_data[offsets[cluster_id] : offsets[cluster_id + 1]]:
                probe[row] = cluster_id
        return probe

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """Product partition ``π(X) · π(Y) = π(X ∪ Y)``.

        The standard linear-time stripped-product algorithm on the CSR
        layout (python backend: reusable probe buffer; numpy backend:
        scatter + sort/groupby).
        """
        if self.num_rows != other.num_rows:
            raise ValueError("partitions cover different numbers of rows")
        kernels.record(
            "pli_intersect", len(self.row_data) + len(other.row_data)
        )
        new_rows, new_offsets = kernels.active().intersect(
            self.row_data,
            self.offsets,
            self.num_rows,
            other.row_data,
            other.offsets,
        )
        return StrippedPartition._from_csr(new_rows, new_offsets, self.num_rows)

    def intersect_ids(self, codes: Sequence[int]) -> "StrippedPartition":
        """Product with a single attribute given as its value-id vector.

        Equivalent to ``self.intersect(StrippedPartition.from_value_ids(codes))``
        but with no probe fill/reset at all: value ids group rows exactly
        like cluster ids do, and rows that are singletons under ``codes``
        form size-1 groups that the ``len > 1`` filter strips — the same
        rows the ``-1`` probe entries would have skipped.
        """
        kernels.record("pli_intersect_ids", len(self.row_data))
        new_rows, new_offsets = kernels.active().intersect_ids(
            self.row_data, self.offsets, self.num_rows, codes
        )
        return StrippedPartition._from_csr(new_rows, new_offsets, self.num_rows)

    def refines_column(self, probe: Sequence[int]) -> bool:
        """True iff every cluster agrees on ``probe`` values (FD check).

        ``probe`` maps row → value id for the RHS attribute, with distinct
        non-negative ids per distinct value; NULL handling must already be
        baked into the ids (same id for all NULLs under null==null).
        """
        kernels.record("scan_refines", len(self.row_data))
        return kernels.active().refines_column(
            self.row_data, self.offsets, probe
        )

    def find_violating_pair(self, probe: Sequence[int]) -> tuple[int, int] | None:
        """Return one row pair that agrees on X but differs on the probe.

        Both backends return the *same* pair: the first mismatching row
        in CSR order, paired with its cluster's first row.
        """
        kernels.record("scan_violating_pair", len(self.row_data))
        return kernels.active().find_violating_pair(
            self.row_data, self.offsets, probe
        )

    def find_violations(
        self, rhs_attrs: Sequence[int], probes: Sequence[Sequence[int]]
    ) -> dict[int, tuple[int, int]]:
        """Refute many RHS candidates in one sweep over the clusters.

        For each attribute in ``rhs_attrs`` (with its row → value-id
        vector in ``probes``) the result maps refuted attributes to one
        violating row pair — exactly the pair the per-attribute
        :meth:`find_violating_pair` scan would have produced, because
        clusters are visited in the same order and each row is compared
        against its cluster's first row.  Attributes whose FD holds are
        absent from the result.  Each cluster's rows are visited once
        per *still-active* attribute, so validating the whole RHS
        fan-out of an LHS node costs a single pass over the partition
        data instead of one full pass per RHS attribute.
        """
        kernels.record(
            "scan_violations", len(self.row_data) * len(rhs_attrs)
        )
        return kernels.active().find_violations(
            self.row_data, self.offsets, rhs_attrs, probes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StrippedPartition({self.num_clusters} clusters, "
            f"{self.num_rows} rows, error={self.error})"
        )


def column_value_ids(
    values: Sequence[Any], null_equals_null: bool = True
) -> list[int]:
    """Map a column to dense value ids (NULL semantics as configured).

    With ``null_equals_null=False`` every NULL receives a fresh id, so no
    two NULL rows ever "agree".  Thin list wrapper over the columnar
    :func:`repro.structures.encoding.encode_column`.
    """
    codes, _, _ = encode_column(values, null_equals_null)
    return codes.tolist()


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PLICache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "pli_hits": self.hits,
            "pli_misses": self.misses,
            "pli_evictions": self.evictions,
        }


class PLICache:
    """Builds and memoizes stripped partitions per attribute-set mask.

    Single-attribute partitions are precomputed from the shared column
    encoding; multi-attribute partitions are produced by intersecting,
    preferring already-cached subsets to keep chains short.  Cached
    masks are indexed by popcount so the best-cached-subset search
    inspects large subsets first and stops at the first hit instead of
    scanning the whole cache.

    The cache is unbounded by default — datasets in this library are
    laptop-scale by design (see DESIGN.md §3).  ``max_partitions``
    optionally bounds the number of cached *multi*-attribute partitions
    (the empty set and single attributes are permanent); the
    least-recently-used partition is evicted first, and ``stats``
    counts hits, misses, and evictions.
    """

    __slots__ = (
        "instance",
        "null_equals_null",
        "max_partitions",
        "stats",
        "_encoding",
        "_cache",
        "_by_popcount",
        "_multi_count",
    )

    def __init__(
        self,
        instance: RelationInstance,
        null_equals_null: bool = True,
        max_partitions: int | None = None,
        *,
        encoding: Any = None,
        singles: Sequence[StrippedPartition] | None = None,
    ) -> None:
        if max_partitions is not None and max_partitions < 1:
            raise ValueError("max_partitions must be positive (or None)")
        self.instance = instance
        self.null_equals_null = null_equals_null
        self.max_partitions = max_partitions
        self.stats = CacheStats()
        self._reset(
            encoding if encoding is not None else instance.encoded(null_equals_null),
            singles,
        )

    def _reset(
        self, encoding: Any, singles: Sequence[StrippedPartition] | None
    ) -> None:
        """(Re)build the permanent entries from an encoding.

        ``singles`` optionally supplies precomputed single-attribute
        partitions (the incremental engine materializes them from its
        delta-maintained clusters); otherwise they are grouped from the
        encoded columns.
        """
        self._encoding = encoding
        self._cache = {0: StrippedPartition.single_cluster(encoding.num_rows)}
        # popcount → masks in insertion order ({mask: None} as ordered set)
        self._by_popcount: dict[int, dict[int, None]] = {}
        self._multi_count = 0
        if singles is not None and len(singles) != encoding.arity:
            raise ValueError(
                f"expected {encoding.arity} single-attribute partitions, "
                f"got {len(singles)}"
            )
        for index in range(encoding.arity):
            mask = 1 << index
            if singles is not None:
                self._cache[mask] = singles[index]
            else:
                self._cache[mask] = StrippedPartition.from_value_ids(
                    encoding.codes[index], encoding.null_codes[index]
                )
            self._by_popcount.setdefault(1, {})[mask] = None

    def refresh(
        self,
        encoding: Any = None,
        singles: Sequence[StrippedPartition] | None = None,
    ) -> None:
        """Invalidate every cached partition after the data changed.

        The incremental engine calls this after applying a batch,
        passing the maintained encoding and (optionally) its
        delta-maintained single-attribute partitions; cumulative
        ``stats`` survive the refresh.
        """
        self._reset(
            encoding
            if encoding is not None
            else self.instance.encoded(self.null_equals_null),
            singles,
        )

    def invalidate(self) -> None:
        """Drop cached partitions and re-derive from the instance data."""
        self.refresh()

    @property
    def encoding(self):
        """The shared column encoding this cache (and its callers) use."""
        return self._encoding

    def get(self, mask: int) -> StrippedPartition:
        """Return (building if necessary) the partition for ``mask``."""
        cached = self._cache.get(mask)
        if cached is not None:
            self.stats.hits += 1
            self._touch(mask)
            return cached
        self.stats.misses += 1
        add_candidates(1, "pli")
        return self._build(mask)

    def _build(self, mask: int) -> StrippedPartition:
        # Greedy: start from the largest cached subset, then intersect in
        # remaining single columns smallest-first (small partitions first
        # keeps intermediate products small).
        best_mask = self._best_cached_subset(mask)
        partition = self._cache[best_mask]
        remaining = list(bits_of(mask & ~best_mask))
        remaining.sort(
            key=lambda i: self._cache[1 << i].num_non_singleton_rows
        )
        codes = self._encoding.codes
        accumulated = best_mask
        for index in remaining:
            partition = partition.intersect_ids(codes[index])
            accumulated |= 1 << index
            self._insert(accumulated, partition)
        return partition

    def _best_cached_subset(self, mask: int) -> int:
        """Largest cached subset of ``mask`` via the popcount index."""
        for popcount in range(mask.bit_count() - 1, 0, -1):
            bucket = self._by_popcount.get(popcount)
            if not bucket:
                continue
            for cached_mask in bucket:
                if cached_mask & ~mask == 0:
                    self._touch(cached_mask)
                    return cached_mask
        return 0

    def _touch(self, mask: int) -> None:
        """Mark an evictable partition most-recently-used."""
        if self.max_partitions is not None and mask.bit_count() >= 2:
            partition = self._cache.pop(mask)
            self._cache[mask] = partition

    def _insert(self, mask: int, partition: StrippedPartition) -> None:
        if mask in self._cache:
            self._cache[mask] = partition
            self._touch(mask)
            return
        self._cache[mask] = partition
        self._by_popcount.setdefault(mask.bit_count(), {})[mask] = None
        self._multi_count += 1
        if self.max_partitions is None:
            return
        while self._multi_count > self.max_partitions:
            victim = next(m for m in self._cache if m.bit_count() >= 2)
            del self._cache[victim]
            del self._by_popcount[victim.bit_count()][victim]
            self._multi_count -= 1
            self.stats.evictions += 1

    def probe(self, attribute: int) -> array:
        """Row → value id for one attribute (the shared encoded column)."""
        return self._encoding.codes[attribute]

    def agree_set(self, left: int, right: int) -> int:
        """Attribute bitmask on which two rows agree (shared helper)."""
        return self._encoding.agree_set(left, right)

    def cache_size(self) -> int:
        return len(self._cache)
