"""FD positive cover as a level-indexed bitset lattice.

An :class:`FDTree` stores candidate FDs ``X → a``; HyFD's induction
phase repeatedly removes FDs violated by a discovered non-FD and
inserts their minimal specializations, and the validation phase walks
the cover level by level.  Profiling after the kernel layer landed
(DESIGN.md §3) showed ~70% of wide-lattice discovery time in the old
recursive per-node dict walk, so the store is now a **level index**:

* stored LHSs are grouped by popcount *level*; level ``k`` holds two
  parallel arrays ``lhs[i]`` / ``rhs[i]`` (attribute-set bitmask →
  RHS bitmask) plus an exact-membership dict and a ``union``
  over-approximation of all RHS bits on the level;
* ``contains_fd_or_generalization(X, a)`` becomes a subset-mask sweep
  over levels ``≤ popcount(X)`` — ``stored & ~X == 0 and rhs >> a & 1``
  per entry, no pointer chasing, skipping every level whose ``union``
  lacks ``a``;
* ``collect_violated`` is the same sweep with the violation predicate
  ``stored ⊆ agree and rhs & ~agree``.

The sweeps dispatch through the kernel backends (docs/KERNELS.md):
under the pure-Python backend the entry arrays are Python ints and the
sweep is :func:`repro.kernels.pybackend.lattice_find_generalization`
(the normative oracle); under numpy every level additionally maintains
an incrementally-appended uint64 mirror (64 attributes per word, the
kernel bitset layout) and large levels are swept with one broadcast
(:mod:`repro.kernels.npbackend`).  The representation is pinned per
tree at construction from the resolved kernel backend, so a tree never
mixes representations mid-life.

``remove`` tombstones an entry (RHS mask → 0); a level auto-compacts
when tombstones dominate, and :meth:`prune` compacts everything and
recomputes the exact unions — the fix for the old engine's
permanently-stale ``rhs_subtree`` over-approximations.  Iteration
orders (:meth:`iter_level`, :meth:`iter_all`) reproduce the legacy
sorted-path DFS order exactly, so every downstream consumer sees
byte-identical covers (pinned by ``tests/test_fdtree_differential.py``).

Engine selection mirrors the kernel registry: ``set_engine()`` /
``REPRO_FDTREE`` choose between ``auto`` (the default: per-tree width
dispatch — the trie at or below :data:`AUTO_LEGACY_MAX_ATTRIBUTES`
attributes, levels above; see :func:`resolve_engine`), ``level`` (this
module), and ``legacy`` (:mod:`repro.structures.fdtree_legacy`, the
recursive baseline); the CLI exposes ``--fdtree`` and the worker pool
ships the requested engine name with every task.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from itertools import combinations
from math import comb

from repro import kernels
from repro.model.attributes import bits_of, iter_bits

__all__ = [
    "AUTO_LEGACY_MAX_ATTRIBUTES",
    "ENGINE_CHOICES",
    "FDTree",
    "engine_name",
    "ensure_engine",
    "resolve_engine",
    "set_engine",
]

ENGINE_CHOICES = ("level", "legacy", "auto")

#: ``auto`` picks the recursive trie at or below this attribute count —
#: the narrow-lattice regime where per-level sweep setup dominates and
#: the trie's pointer walk is measurably faster (BENCH_fdtree.json:
#: ~1.3x on ≤12-attribute relations) — and the level engine above it.
AUTO_LEGACY_MAX_ATTRIBUTES = 12

# Programmatic override (set_engine); None means "consult REPRO_FDTREE".
_requested: str | None = None

#: below this many entries a mirrored level is swept with the
#: interpreted loop anyway — per-call numpy overhead beats the loop on
#: tiny levels, exactly like ``npbackend.SMALL_INPUT_THRESHOLD``
SMALL_LEVEL_THRESHOLD = 32

#: a level auto-compacts when it holds more than this many tombstones
#: and they are at least half of its entries
COMPACT_MIN_DEAD = 16

_WORD_MASK = (1 << 64) - 1

# The kernel counter store, referenced directly: it is cleared in
# place and never rebound, and these sweeps run millions of times per
# discovery — even the ``kernels.bump`` call overhead shows.
_COUNTERS = kernels._counters

# Precomputed counter keys — per-call f-string key building would cost
# more than the counter update itself.
_GEN_CALLS = "kernel_lattice_generalization_calls"
_GEN_ROWS = "kernel_lattice_generalization_rows"
_VIOL_CALLS = "kernel_lattice_violation_calls"
_VIOL_ROWS = "kernel_lattice_violation_rows"
_LEVELS_CALLS = "kernel_lattice_levels_calls"
_LEVELS_ROWS = "kernel_lattice_levels_rows"


def set_engine(name: str | None) -> None:
    """Select the FD-tree engine programmatically (the ``--fdtree`` flag).

    ``name`` is ``level`` / ``legacy`` / ``auto``, or ``None`` to drop
    the override and fall back to ``REPRO_FDTREE``.  ``auto`` defers
    the choice to construction time: relations at or below
    :data:`AUTO_LEGACY_MAX_ATTRIBUTES` attributes get the recursive
    trie, wider ones the level engine — closing the known narrow-lattice
    gap without giving up the wide-lattice sweeps.  The choice applies
    to trees constructed afterwards; existing trees keep their engine.
    """
    global _requested
    if name is not None:
        name = name.strip().lower()
        if name not in ENGINE_CHOICES:
            from repro.runtime.errors import InputError

            raise InputError(
                f"unknown FD-tree engine {name!r}; "
                f"choose one of {', '.join(ENGINE_CHOICES)}"
            )
    _requested = name


def engine_name() -> str:
    """The requested engine: ``"level"``, ``"legacy"``, or ``"auto"``.

    ``"auto"`` resolves per tree at construction time (see
    :func:`resolve_engine`); it is reported as-is so pool workers
    re-pin the *policy*, not one width's resolution of it.
    """
    if _requested is not None:
        return _requested
    raw = os.environ.get("REPRO_FDTREE", "").strip().lower()
    if not raw:
        # ``auto`` became the default once the width heuristic soaked:
        # narrow lattices get the faster trie, wide ones the level
        # sweeps, and the resolution is a pure function of the relation
        # so byte-identity is unaffected (ROADMAP item 3).
        return "auto"
    if raw not in ENGINE_CHOICES:
        from repro.runtime.errors import InputError

        raise InputError(
            f"REPRO_FDTREE={raw!r} is not a valid FD-tree engine; "
            f"choose one of {', '.join(ENGINE_CHOICES)}"
        )
    return raw


def ensure_engine(name: str) -> None:
    """Pin this process to a resolved engine name.

    Pool workers call this per task batch with the parent's resolved
    engine (alongside ``kernels.ensure_backend``) so spawned workers
    never resolve ``REPRO_FDTREE`` differently from the parent.
    """
    if name != engine_name():
        set_engine(name)


def resolve_engine(num_attributes: int) -> str:
    """The concrete engine a tree of this width gets: level or legacy.

    ``auto`` resolves on the attribute count alone, so the resolution
    is a pure function of the relation — identical in the parent, in
    every pool worker, and across restarts (the byte-identity contract
    does not depend on where a tree is built).
    """
    name = engine_name()
    if name == "auto":
        return (
            "legacy"
            if num_attributes <= AUTO_LEGACY_MAX_ATTRIBUTES
            else "level"
        )
    return name


class _Level:
    """One popcount level: parallel (lhs, rhs) arrays + exact index.

    ``index`` maps every stored LHS (live or tombstoned) to its array
    position; ``union`` over-approximates the OR of all live RHS masks
    (refreshed by compaction); ``dead`` counts tombstones.  ``np_lhs``
    / ``np_rhs`` are the uint64 mirrors, allocated lazily with doubling
    capacity — rows beyond the logical size are garbage, so every sweep
    slices ``[:len(lhs)]``.
    """

    __slots__ = ("lhs", "rhs", "index", "union", "dead", "np_lhs", "np_rhs")

    def __init__(self) -> None:
        self.lhs: list[int] = []
        self.rhs: list[int] = []
        self.index: dict[int, int] = {}
        self.union = 0
        self.dead = 0
        self.np_lhs = None
        self.np_rhs = None


def _path_key(entry: tuple[int, int]) -> tuple[int, ...]:
    return bits_of(entry[0])


class FDTree:
    """Level-indexed positive cover over FD left-hand sides."""

    __slots__ = ("num_attributes", "_levels", "_words", "_np", "_depth_hint")

    engine = "level"

    def __new__(cls, num_attributes: int | None = None):
        # Engine dispatch happens only on explicit construction:
        # pickle/copy re-create instances via ``__new__(cls)`` with no
        # arguments and must get back exactly the class they saved.
        if (
            cls is FDTree
            and num_attributes is not None
            and resolve_engine(int(num_attributes)) == "legacy"
        ):
            from repro.structures.fdtree_legacy import LegacyFDTree

            return super().__new__(LegacyFDTree)
        return super().__new__(cls)

    def __init__(self, num_attributes: int | None = None) -> None:
        self.num_attributes = int(num_attributes or 0)
        self._levels: list[_Level] = []
        self._words = max(1, (self.num_attributes + 63) // 64)
        self._np = (
            kernels.numpy_module() if kernels.backend_name() == "numpy" else None
        )
        self._depth_hint = 0

    # ------------------------------------------------------------------
    # Pickling: the numpy module handle and the per-level uint64
    # mirrors are representation caches pinned to *this* process's
    # kernel backend; strip them on save and rebuild on load under the
    # receiving process's backend.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "num_attributes": self.num_attributes,
            "levels": [
                (level.lhs, level.rhs, level.union, level.dead)
                for level in self._levels
            ],
            "depth_hint": self._depth_hint,
        }

    def __setstate__(self, state) -> None:
        self.num_attributes = state["num_attributes"]
        self._words = max(1, (self.num_attributes + 63) // 64)
        self._np = (
            kernels.numpy_module() if kernels.backend_name() == "numpy" else None
        )
        self._depth_hint = state["depth_hint"]
        self._levels = []
        for lhs, rhs, union, dead in state["levels"]:
            level = _Level()
            level.lhs = list(lhs)
            level.rhs = list(rhs)
            level.index = {mask: pos for pos, mask in enumerate(level.lhs)}
            level.union = union
            level.dead = dead
            if self._np is not None and level.lhs:
                from repro.kernels import npbackend as _npk

                level.np_lhs = _npk.pack_masks(level.lhs, self._words)
                level.np_rhs = _npk.pack_masks(level.rhs, self._words)
            self._levels.append(level)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, lhs: int, rhs: int) -> None:
        """Mark ``lhs → a`` for every attribute ``a`` in ``rhs``."""
        if not rhs:
            return
        depth = lhs.bit_count()
        levels = self._levels
        while len(levels) <= depth:
            levels.append(_Level())
        level = levels[depth]
        pos = level.index.get(lhs)
        if pos is None:
            pos = len(level.lhs)
            level.lhs.append(lhs)
            level.rhs.append(rhs)
            level.index[lhs] = pos
            if self._np is not None:
                self._mirror_append(level, pos, lhs, rhs)
        else:
            old = level.rhs[pos]
            if not old:
                level.dead -= 1  # revived tombstone
            level.rhs[pos] = old | rhs
            if self._np is not None:
                self._pack_row(level.np_rhs, pos, old | rhs)
        level.union |= rhs
        if depth > self._depth_hint:
            self._depth_hint = depth

    def remove(self, lhs: int, rhs: int) -> None:
        """Unmark ``lhs → a`` for every ``a`` in ``rhs``."""
        depth = lhs.bit_count()
        if depth >= len(self._levels):
            return
        level = self._levels[depth]
        pos = level.index.get(lhs)
        if pos is None:
            return
        old = level.rhs[pos]
        new = old & ~rhs
        if new == old:
            return
        level.rhs[pos] = new
        if self._np is not None:
            self._pack_row(level.np_rhs, pos, new)
        if not new:
            level.dead += 1
            if level.dead > COMPACT_MIN_DEAD and level.dead * 2 >= len(level.lhs):
                self._compact_level(level)

    def add_minimal_specializations(
        self, lhs: int, rhs_attr: int, extensions: int
    ) -> list[int]:
        """Insert ``lhs ∪ {b} → rhs_attr`` for each ``b`` in ``extensions``
        that has no stored generalization; return the LHSs added.

        All candidates share one popcount and differ pairwise in one
        bit, so none can generalize another: checking each against the
        pre-insert state is equivalent to the sequential
        check-then-add, which is what this runs.
        """
        rhs_bit = 1 << rhs_attr
        surviving = extensions & ~lhs
        if not surviving:
            return []
        # One sweep over the reachable levels screens every candidate at
        # once: a stored ``Z`` (with the RHS bit) generalizes ``lhs ∪ {b}``
        # iff ``Z \ lhs`` is empty (kills all candidates) or the single
        # bit ``{b}``.  Candidates share one popcount and differ pairwise
        # in one bit, so none generalizes another and screening against
        # the pre-insert state matches the sequential check-then-add.
        levels = self._levels
        popcount = lhs.bit_count()
        top = min(popcount + 1, len(levels) - 1)
        not_lhs = ~lhs
        bits: tuple[int, ...] | None = None
        scanned = 0
        swept = 0
        for depth in range(top + 1):
            level = levels[depth]
            size = len(level.lhs)
            if not size or not level.union & rhs_bit:
                continue
            swept += 1
            # Subset probes, as in :meth:`contains_fd_or_generalization`:
            # a size-``depth`` subset of ``lhs`` screens everything, a
            # ``(depth-1)``-subset plus one candidate bit screens that
            # candidate.  Cheaper than the sweep on large levels.
            base_subsets = comb(popcount, depth) if depth <= popcount else 0
            ext_subsets = comb(popcount, depth - 1) if depth else 0
            probes = base_subsets + surviving.bit_count() * ext_subsets
            if probes * 4 < size:
                scanned += probes
                if bits is None:
                    bits = bits_of(lhs)
                index = level.index
                rhs_rows = level.rhs
                for combo in combinations(bits, depth):
                    mask = 0
                    for bit in combo:
                        mask |= 1 << bit
                    pos = index.get(mask)
                    if pos is not None and rhs_rows[pos] & rhs_bit:
                        surviving = 0
                        break
                if not surviving:
                    break
                if depth:
                    for extension in iter_bits(surviving):
                        ext_bit = 1 << extension
                        for combo in combinations(bits, depth - 1):
                            mask = ext_bit
                            for bit in combo:
                                mask |= 1 << bit
                            pos = index.get(mask)
                            if pos is not None and rhs_rows[pos] & rhs_bit:
                                surviving &= ~ext_bit
                                break
                    if not surviving:
                        break
                continue
            scanned += size
            if level.np_lhs is not None and size >= SMALL_LEVEL_THRESHOLD:
                from repro.kernels import npbackend as _npk

                # Vector prefilter: RHS bit present and Z \ lhs confined
                # to the candidate bits; the (few) hits get the exact
                # empty-or-single-bit test in Python.
                hits = _npk.lattice_specialization_screen(
                    level.np_lhs[:size],
                    level.np_rhs[:size],
                    self._pack_query(lhs | surviving),
                    rhs_attr,
                )
                rows = level.lhs
                for pos in hits:
                    extra = rows[pos] & not_lhs
                    if not extra:
                        surviving = 0
                        break
                    if extra & (extra - 1) == 0:
                        surviving &= ~extra
            else:
                for stored, rhs in zip(level.lhs, level.rhs):
                    if not rhs & rhs_bit:
                        continue
                    extra = stored & not_lhs
                    if not extra:
                        surviving = 0
                        break
                    if extra & (extra - 1) == 0 and extra & surviving:
                        surviving &= ~extra
            if not surviving:
                break
        counters = _COUNTERS
        counters[_GEN_CALLS] = counters.get(_GEN_CALLS, 0) + 1
        counters[_GEN_ROWS] = counters.get(_GEN_ROWS, 0) + scanned
        counters[_LEVELS_CALLS] = counters.get(_LEVELS_CALLS, 0) + 1
        counters[_LEVELS_ROWS] = counters.get(_LEVELS_ROWS, 0) + swept
        added: list[int] = []
        for extension in iter_bits(surviving):
            new_lhs = lhs | (1 << extension)
            self.add(new_lhs, rhs_bit)
            added.append(new_lhs)
        return added

    def prune(self) -> None:
        """Compact every level and recompute exact ``union`` masks.

        Invoked from induction after violation-removal bursts; between
        prunes, ``union`` staleness and tombstones cost sweep time,
        never correctness.
        """
        depth = 0
        for index, level in enumerate(self._levels):
            if level.dead:
                self._compact_level(level)
            else:
                union = 0
                for rhs in level.rhs:
                    union |= rhs
                level.union = union
            if level.lhs:
                depth = index
        while self._levels and not self._levels[-1].lhs:
            self._levels.pop()
        self._depth_hint = depth

    def _compact_level(self, level: _Level) -> None:
        keep = [pos for pos, rhs in enumerate(level.rhs) if rhs]
        level.lhs = [level.lhs[pos] for pos in keep]
        level.rhs = [level.rhs[pos] for pos in keep]
        level.index = {lhs: pos for pos, lhs in enumerate(level.lhs)}
        level.dead = 0
        union = 0
        for rhs in level.rhs:
            union |= rhs
        level.union = union
        if self._np is not None:
            if level.lhs:
                from repro.kernels import npbackend as _npk

                level.np_lhs = _npk.pack_masks(level.lhs, self._words)
                level.np_rhs = _npk.pack_masks(level.rhs, self._words)
            else:
                level.np_lhs = None
                level.np_rhs = None

    # ------------------------------------------------------------------
    # uint64 mirror maintenance (numpy representation only)
    # ------------------------------------------------------------------
    def _mirror_append(self, level: _Level, pos: int, lhs: int, rhs: int) -> None:
        np = self._np
        if level.np_lhs is None:
            capacity = 16
            level.np_lhs = np.zeros((capacity, self._words), dtype=np.uint64)
            level.np_rhs = np.zeros((capacity, self._words), dtype=np.uint64)
        elif pos >= level.np_lhs.shape[0]:
            capacity = level.np_lhs.shape[0]
            while capacity <= pos:
                capacity *= 2
            grown_lhs = np.zeros((capacity, self._words), dtype=np.uint64)
            grown_rhs = np.zeros((capacity, self._words), dtype=np.uint64)
            grown_lhs[:pos] = level.np_lhs[:pos]
            grown_rhs[:pos] = level.np_rhs[:pos]
            level.np_lhs = grown_lhs
            level.np_rhs = grown_rhs
        self._pack_row(level.np_lhs, pos, lhs)
        self._pack_row(level.np_rhs, pos, rhs)

    def _pack_row(self, rows, pos: int, mask: int) -> None:
        if self._words == 1:
            rows[pos, 0] = mask
        else:
            for word in range(self._words):
                rows[pos, word] = (mask >> (64 * word)) & _WORD_MASK

    def _pack_query(self, mask: int):
        np = self._np
        packed = np.empty(self._words, dtype=np.uint64)
        if self._words == 1:
            packed[0] = mask & _WORD_MASK
        else:
            for word in range(self._words):
                packed[word] = (mask >> (64 * word)) & _WORD_MASK
        return packed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains_fd(self, lhs: int, rhs_attr: int) -> bool:
        """Exact membership of ``lhs → rhs_attr`` (``rhs_attr`` is an index)."""
        depth = lhs.bit_count()
        if depth >= len(self._levels):
            return False
        level = self._levels[depth]
        pos = level.index.get(lhs)
        if pos is None:
            return False
        return bool(level.rhs[pos] >> rhs_attr & 1)

    def contains_fd_or_generalization(self, lhs: int, rhs_attr: int) -> bool:
        """True iff some stored ``X → rhs_attr`` has ``X ⊆ lhs``.

        Per level the cheaper of two exact strategies is used: the
        subset-mask sweep over the level's arrays, or — when the query
        is narrow enough that ``C(popcount, depth)`` is far below the
        level size — enumerating the query's size-``depth`` subsets and
        probing the level's membership dict.  Narrow queries dominate
        induction's specialization checks; wide ones its violation
        sweeps.
        """
        levels = self._levels
        popcount = lhs.bit_count()
        top = min(popcount, len(levels) - 1)
        rhs_bit = 1 << rhs_attr
        outside = ~lhs
        bits: tuple[int, ...] | None = None
        scanned = 0
        swept = 0
        found = False
        for depth in range(top + 1):
            level = levels[depth]
            size = len(level.lhs)
            if not size or not level.union & rhs_bit:
                continue
            swept += 1
            subsets = comb(popcount, depth)
            if subsets * 4 < size:
                scanned += subsets
                if bits is None:
                    bits = bits_of(lhs)
                index = level.index
                rhs_rows = level.rhs
                for combo in combinations(bits, depth):
                    mask = 0
                    for bit in combo:
                        mask |= 1 << bit
                    pos = index.get(mask)
                    if pos is not None and rhs_rows[pos] & rhs_bit:
                        found = True
                        break
                if found:
                    break
                continue
            scanned += size
            if level.np_lhs is not None and size >= SMALL_LEVEL_THRESHOLD:
                from repro.kernels import npbackend as _npk

                inv_query = self._np.invert(self._pack_query(lhs))
                if _npk.lattice_find_generalization(
                    level.np_lhs[:size], level.np_rhs[:size], inv_query, rhs_attr
                ):
                    found = True
                    break
            else:
                # pybackend.lattice_find_generalization, inlined: the
                # per-level call overhead shows on induction's tiny
                # levels (the oracle function stays normative and is
                # pinned against this loop by the differential suite).
                for stored, rhs in zip(level.lhs, level.rhs):
                    if rhs & rhs_bit and stored & outside == 0:
                        found = True
                        break
                if found:
                    break
        counters = _COUNTERS
        counters[_GEN_CALLS] = counters.get(_GEN_CALLS, 0) + 1
        counters[_GEN_ROWS] = counters.get(_GEN_ROWS, 0) + scanned
        counters[_LEVELS_CALLS] = counters.get(_LEVELS_CALLS, 0) + 1
        counters[_LEVELS_ROWS] = counters.get(_LEVELS_ROWS, 0) + swept
        return found

    def contains_generalization_batch(
        self, pairs: Iterable[tuple[int, int]]
    ) -> list[bool]:
        """Batch form of :meth:`contains_fd_or_generalization`."""
        return [
            self.contains_fd_or_generalization(lhs, rhs_attr)
            for lhs, rhs_attr in pairs
        ]

    def collect_violated(self, agree_set: int) -> list[tuple[int, int]]:
        """FDs violated by a record pair that agrees exactly on ``agree_set``.

        A stored ``X → a`` is violated iff ``X ⊆ agree_set`` and
        ``a ∉ agree_set``.  Returns ``(lhs, violated_rhs_mask)`` pairs,
        level by level in storage order.
        """
        disagree = ((1 << self.num_attributes) - 1) & ~agree_set
        out: list[tuple[int, int]] = []
        if not disagree:
            return out
        levels = self._levels
        top = min(agree_set.bit_count(), len(levels) - 1)
        scanned = 0
        swept = 0
        inv_agree = disagree_words = None
        for depth in range(top + 1):
            level = levels[depth]
            size = len(level.lhs)
            if not size or not level.union & disagree:
                continue
            swept += 1
            scanned += size
            if level.np_lhs is not None and size >= SMALL_LEVEL_THRESHOLD:
                from repro.kernels import npbackend as _npk

                if inv_agree is None:
                    inv_agree = self._np.invert(self._pack_query(agree_set))
                    disagree_words = self._pack_query(disagree)
                hits = _npk.lattice_violations(
                    level.np_lhs[:size], level.np_rhs[:size],
                    inv_agree, disagree_words,
                )
                for pos in hits:
                    out.append((level.lhs[pos], level.rhs[pos] & disagree))
            else:
                # pybackend.lattice_violations, inlined (storage order
                # preserved); the per-level call overhead shows on
                # induction's tiny levels.
                outside = ~agree_set
                for stored, rhs in zip(level.lhs, level.rhs):
                    if stored & outside == 0:
                        hit = rhs & disagree
                        if hit:
                            out.append((stored, hit))
        counters = _COUNTERS
        counters[_VIOL_CALLS] = counters.get(_VIOL_CALLS, 0) + 1
        counters[_VIOL_ROWS] = counters.get(_VIOL_ROWS, 0) + scanned
        counters[_LEVELS_CALLS] = counters.get(_LEVELS_CALLS, 0) + 1
        counters[_LEVELS_ROWS] = counters.get(_LEVELS_ROWS, 0) + swept
        return out

    def collect_violated_batch(
        self, agree_sets: Iterable[int]
    ) -> list[list[tuple[int, int]]]:
        """Read-only batch form of :meth:`collect_violated`."""
        return [self.collect_violated(agree) for agree in agree_sets]

    def any_violated(self, agree_set: int) -> bool:
        """True iff :meth:`collect_violated` would return anything.

        The screening form of the sweep: early-exits on the first hit,
        so clean agree sets cost one pass over the reachable levels and
        dirty ones usually much less.
        """
        disagree = ((1 << self.num_attributes) - 1) & ~agree_set
        if not disagree:
            return False
        levels = self._levels
        top = min(agree_set.bit_count(), len(levels) - 1)
        scanned = 0
        swept = 0
        found = False
        inv_agree = disagree_words = None
        for depth in range(top + 1):
            level = levels[depth]
            size = len(level.lhs)
            if not size or not level.union & disagree:
                continue
            swept += 1
            scanned += size
            if level.np_lhs is not None and size >= SMALL_LEVEL_THRESHOLD:
                from repro.kernels import npbackend as _npk

                if inv_agree is None:
                    inv_agree = self._np.invert(self._pack_query(agree_set))
                    disagree_words = self._pack_query(disagree)
                hit = _npk.lattice_any_violation(
                    level.np_lhs[:size], level.np_rhs[:size],
                    inv_agree, disagree_words,
                )
            else:
                # pybackend.lattice_any_violation, inlined.
                hit = False
                outside = ~agree_set
                for stored, rhs in zip(level.lhs, level.rhs):
                    if rhs & disagree and stored & outside == 0:
                        hit = True
                        break
            if hit:
                found = True
                break
        counters = _COUNTERS
        counters[_VIOL_CALLS] = counters.get(_VIOL_CALLS, 0) + 1
        counters[_VIOL_ROWS] = counters.get(_VIOL_ROWS, 0) + scanned
        counters[_LEVELS_CALLS] = counters.get(_LEVELS_CALLS, 0) + 1
        counters[_LEVELS_ROWS] = counters.get(_LEVELS_ROWS, 0) + swept
        return found

    def any_violated_batch(self, agree_sets: Iterable[int]) -> list[bool]:
        """Read-only batch form of :meth:`any_violated`."""
        return [self.any_violated(agree) for agree in agree_sets]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_level(self, depth: int) -> Iterator[tuple[int, int]]:
        """Yield ``(lhs, rhs_mask)`` for all FDs with ``|lhs| == depth``.

        Emitted in ascending attribute-path order — the legacy engine's
        sorted-children DFS order — so validation processes candidates
        in the identical sequence under either engine.
        """
        if depth < 0 or depth >= len(self._levels):
            return
        level = self._levels[depth]
        entries = [
            (lhs, rhs) for lhs, rhs in zip(level.lhs, level.rhs) if rhs
        ]
        entries.sort(key=_path_key)
        yield from entries

    def iter_all(self) -> Iterator[tuple[int, int]]:
        """Yield every stored ``(lhs, rhs_mask)`` pair.

        Ordered by ascending attribute path across all levels — byte
        for byte the legacy DFS order (a prefix path sorts before its
        extensions, so interleaving levels falls out of the tuple sort).
        """
        entries = [
            (lhs, rhs)
            for level in self._levels
            for lhs, rhs in zip(level.lhs, level.rhs)
            if rhs
        ]
        entries.sort(key=_path_key)
        yield from entries

    def depth(self) -> int:
        """Length of the longest stored LHS (not shrunk by ``remove``;
        recomputed by :meth:`prune`, exactly like the legacy engine)."""
        return self._depth_hint

    def count_fds(self) -> int:
        """Total number of single-RHS FDs stored."""
        return sum(
            rhs.bit_count() for level in self._levels for rhs in level.rhs
        )

    def stats(self) -> dict[str, int]:
        """Structural size: occupied levels, entry slots, tombstones."""
        entries = sum(len(level.lhs) for level in self._levels)
        dead = sum(level.dead for level in self._levels)
        return {
            "levels": sum(1 for level in self._levels if level.lhs),
            "entries": entries,
            "live": entries - dead,
            "dead": dead,
        }
