"""FD prefix tree — the positive-cover structure of HyFD.

An :class:`FDTree` stores candidate FDs ``X → a`` along the sorted
attribute path of ``X``; each node carries a bitmask ``fds`` of the RHS
attributes for which the path is a (candidate) minimal LHS.  HyFD's
induction phase repeatedly removes FDs violated by a discovered non-FD
and inserts their minimal specializations; the validation phase walks
the tree level by level.

Each node also carries ``rhs_subtree``, an *over-approximation* of the
RHS bits present in the subtree (never shrunk on removal).  It is used
purely to prune traversals; every hit is re-checked against exact
``fds`` masks, so staleness costs time, never correctness.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.model.attributes import bits_of, mask_of

__all__ = ["FDTree"]


class _Node:
    __slots__ = ("children", "fds", "rhs_subtree")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.fds = 0
        self.rhs_subtree = 0


class FDTree:
    """Prefix tree over FD left-hand sides with per-node RHS bitmasks."""

    __slots__ = ("num_attributes", "_root")

    def __init__(self, num_attributes: int) -> None:
        self.num_attributes = num_attributes
        self._root = _Node()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, lhs: int, rhs: int) -> None:
        """Mark ``lhs → a`` for every attribute ``a`` in ``rhs``."""
        if not rhs:
            return
        node = self._root
        node.rhs_subtree |= rhs
        for index in bits_of(lhs):
            child = node.children.get(index)
            if child is None:
                child = _Node()
                node.children[index] = child
            node = child
            node.rhs_subtree |= rhs
        node.fds |= rhs

    def remove(self, lhs: int, rhs: int) -> None:
        """Unmark ``lhs → a`` for every ``a`` in ``rhs`` (nodes stay in place)."""
        node: _Node | None = self._root
        for index in bits_of(lhs):
            node = node.children.get(index) if node else None
            if node is None:
                return
        if node is not None:
            node.fds &= ~rhs

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains_fd(self, lhs: int, rhs_attr: int) -> bool:
        """Exact membership of ``lhs → rhs_attr`` (``rhs_attr`` is an index)."""
        node: _Node | None = self._root
        for index in bits_of(lhs):
            node = node.children.get(index) if node else None
            if node is None:
                return False
        return bool(node.fds >> rhs_attr & 1)

    def contains_fd_or_generalization(self, lhs: int, rhs_attr: int) -> bool:
        """True iff some stored ``X → rhs_attr`` has ``X ⊆ lhs``."""
        return self._contains_generalization(self._root, lhs, rhs_attr)

    def _contains_generalization(self, node: _Node, lhs: int, rhs_attr: int) -> bool:
        if node.fds >> rhs_attr & 1:
            return True
        if not node.rhs_subtree >> rhs_attr & 1:
            return False
        for index, child in node.children.items():
            if lhs >> index & 1:
                if self._contains_generalization(child, lhs, rhs_attr):
                    return True
        return False

    def collect_violated(self, agree_set: int) -> list[tuple[int, int]]:
        """FDs violated by a record pair that agrees exactly on ``agree_set``.

        A stored ``X → a`` is violated iff ``X ⊆ agree_set`` and
        ``a ∉ agree_set``.  Returns ``(lhs, violated_rhs_mask)`` pairs.
        """
        disagree = ((1 << self.num_attributes) - 1) & ~agree_set
        out: list[tuple[int, int]] = []
        self._collect_violated(self._root, agree_set, disagree, (), out)
        return out

    def _collect_violated(
        self,
        node: _Node,
        agree_set: int,
        disagree: int,
        prefix: tuple[int, ...],
        out: list[tuple[int, int]],
    ) -> None:
        hit = node.fds & disagree
        if hit:
            out.append((mask_of(prefix), hit))
        if not node.rhs_subtree & disagree:
            return
        for index, child in node.children.items():
            if agree_set >> index & 1:
                self._collect_violated(
                    child, agree_set, disagree, prefix + (index,), out
                )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_level(self, depth: int) -> Iterator[tuple[int, int]]:
        """Yield ``(lhs, rhs_mask)`` for all FDs with ``|lhs| == depth``."""
        yield from self._iter_level(self._root, depth, ())

    def _iter_level(
        self, node: _Node, depth: int, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, int]]:
        if len(prefix) == depth:
            if node.fds:
                yield (mask_of(prefix), node.fds)
            return
        for index, child in sorted(node.children.items()):
            yield from self._iter_level(child, depth, prefix + (index,))

    def iter_all(self) -> Iterator[tuple[int, int]]:
        """Yield every stored ``(lhs, rhs_mask)`` pair."""
        yield from self._iter_all(self._root, ())

    def _iter_all(
        self, node: _Node, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, int]]:
        if node.fds:
            yield (mask_of(prefix), node.fds)
        for index, child in sorted(node.children.items()):
            yield from self._iter_all(child, prefix + (index,))

    def depth(self) -> int:
        """Length of the longest stored LHS."""
        return self._depth(self._root)

    def _depth(self, node: _Node) -> int:
        if not node.children:
            return 0
        return 1 + max(self._depth(child) for child in node.children.values())

    def count_fds(self) -> int:
        """Total number of single-RHS FDs stored."""
        return sum(rhs.bit_count() for _, rhs in self.iter_all())
