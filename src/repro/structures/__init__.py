"""Core data structures: set-tries, FD trees, stripped partitions, Bloom filters.

These are the performance-critical substrates the paper relies on:

* :mod:`repro.structures.settrie` — the "prefix tree, aka trie" used by
  the improved/optimized closure algorithms and the violation detector
  for subset lookups over attribute sets,
* :mod:`repro.structures.fdtree` — HyFD's positive cover as a
  level-indexed bitset lattice (the recursive prefix-tree baseline
  lives on in :mod:`repro.structures.fdtree_legacy`, selectable via
  ``REPRO_FDTREE=legacy``),
* :mod:`repro.structures.lattice_index` — the SetTrie query surface on
  the same level-indexed layout, backing DFD/DUCC boundary sets and
  TANE's survivor check,
* :mod:`repro.structures.encoding` — columnar dictionary encoding of
  relation values, the shared substrate of the PLI hot path,
* :mod:`repro.structures.partitions` — stripped partitions (position
  list indexes, CSR layout) with intersection, the backbone of
  TANE/DFD/HyFD,
* :mod:`repro.structures.bloom` — Bloom filters with cardinality
  estimation for the duplication score (paper §7.2).
"""

from repro.structures.bloom import BloomFilter
from repro.structures.encoding import EncodedRelation
from repro.structures.fdtree import FDTree
from repro.structures.lattice_index import LevelIndex
from repro.structures.partitions import CacheStats, PLICache, StrippedPartition
from repro.structures.settrie import SetTrie

__all__ = [
    "BloomFilter",
    "CacheStats",
    "EncodedRelation",
    "FDTree",
    "LevelIndex",
    "PLICache",
    "SetTrie",
    "StrippedPartition",
]
