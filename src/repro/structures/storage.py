"""Tiered backing storage for dictionary-encoded columns.

An :class:`~repro.structures.encoding.EncodedRelation` owns one dense
``int32`` vector per column.  This module decides *where those vectors
live* and provides the on-disk tier that makes larger-than-RAM
discovery possible:

* **memory** — in-process ``array('i')`` buffers (the classic default);
* **shm** — the POSIX shared-memory export of :mod:`repro.parallel.shm`
  (a *transport* tier: the parent copies memory-resident columns into a
  segment once per parallel run);
* **spill** — file-backed columns managed by :class:`ColumnStore`:
  code pages are appended to one file per column and the finished
  column is handed out as a ``memoryview`` cast over an ``mmap`` of
  that file.  Every consumer of ``codes`` (PLI construction, violation
  scans, agree-set kernels, ``np.frombuffer``) already speaks the
  buffer protocol, so a spilled column is indistinguishable from an
  in-heap one — only its residency differs.

Tier selection is a process-wide *policy* (``--storage`` /
``REPRO_STORAGE``) resolved per encoding:

* ``memory`` — never spill (bit-for-bit the historical behavior);
* ``spill`` — every encoding goes to disk (the CI soak mode);
* ``auto`` — spill only when the projected encoded footprint of the
  relation would breach the spill threshold, which derives from the
  runtime governor's memory budget (``--memory``), so columns migrate
  to disk exactly when keeping them resident would eat the budget the
  user granted the *whole* process.

Spill files live in pid-attributed directories
(``repro-spill-<pid>-<hex>`` under ``$REPRO_SPILL_DIR`` or the system
temp dir) mirroring the ``repro-shm-<pid>-<hex>`` naming of the shm
tier, so the same ownership story applies: a crashed process cannot
clean up after itself, but the *next* run can attribute its leftovers
and :func:`reap_orphan_spill_dirs` removes them (the pool runs both
reapers at startup and teardown; see ``docs/STORAGE.md``).
:func:`release_process_spill` is the same-process counterpart used by
the CLI signal boundary and an ``atexit`` hook.  Unlinking a mapped
file is safe on POSIX — live mappings (ours or a worker's) keep the
pages readable until the last ``mmap`` is closed.

The module imports nothing from :mod:`repro.structures.encoding` or the
model layer at import time, so both can depend on it without cycles.
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import mmap
import os
import shutil
import tempfile
from array import array
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.errors import InputError
from repro.runtime.governor import current_governor, note_spill, parse_memory

__all__ = [
    "POLICY_CHOICES",
    "ColumnStore",
    "FileHandle",
    "SpilledRelation",
    "attach_file_handle",
    "counters_delta",
    "counters_snapshot",
    "ensure_policy",
    "memory_budget",
    "peak_buffered_cells",
    "policy_name",
    "policy_override",
    "process_spill_dir",
    "reap_orphan_spill_dirs",
    "release_process_spill",
    "reset_counters",
    "resolve_tier",
    "set_policy",
    "spill_dir_override",
    "spill_threshold_bytes",
]

_ITEMSIZE = array("i").itemsize

#: rows buffered per column before a page is flushed to the spill file
PAGE_ROWS = 16384

#: spill threshold when neither ``REPRO_SPILL_THRESHOLD`` nor a
#: governor memory budget is in effect (encoded bytes per relation)
DEFAULT_SPILL_THRESHOLD = 64 * 1024 * 1024

#: Every spill directory this library creates is named
#: ``<prefix>-<pid>-<hex>`` (same attribution scheme as repro-shm).
SPILL_PREFIX = "repro-spill"

POLICY_CHOICES = ("memory", "auto", "spill")


# ----------------------------------------------------------------------
# Policy registry (mirrors repro.kernels / repro.structures.fdtree)
# ----------------------------------------------------------------------
_requested: str | None = None
_policy_overrides: list[str] = []
_budget_hints: list[int] = []


def _validated(name: str, origin: str) -> str:
    cleaned = name.strip().lower()
    if cleaned not in POLICY_CHOICES:
        raise InputError(
            f"unknown storage policy {name!r} (from {origin}); "
            f"choose from {', '.join(POLICY_CHOICES)}"
        )
    return cleaned


def set_policy(name: str | None) -> None:
    """Select the storage policy for this process (``None`` resets).

    ``--storage`` calls this; it overrides ``REPRO_STORAGE``.
    """
    global _requested
    _requested = None if name is None else _validated(name, "--storage")


def policy_name() -> str:
    """The storage policy in effect, without resolving any tier."""
    if _policy_overrides:
        return _policy_overrides[-1]
    if _requested is not None:
        return _requested
    env = os.environ.get("REPRO_STORAGE")
    if env:
        return _validated(env, "REPRO_STORAGE")
    return "memory"


def ensure_policy(name: str) -> None:
    """Pin the policy by exact name (pool workers mirror the parent)."""
    set_policy(name)


@contextlib.contextmanager
def policy_override(name: str | None):
    """Temporarily force a policy (``None`` is a no-op).

    The server uses this to honor a per-session ``storage`` option
    without leaking it into other tenants' requests — safe because the
    compute gate serializes heavy work.
    """
    if name is None:
        yield
        return
    _policy_overrides.append(_validated(name, "session option"))
    try:
        yield
    finally:
        _policy_overrides.pop()


@contextlib.contextmanager
def memory_budget(max_bytes: int | None):
    """Make a memory budget visible to tier selection.

    Used where encoding happens outside a governed region (CSV
    ingestion in the CLI, session create/revive in the server) so
    ``auto`` can see the ``--memory`` budget the discovery run will be
    governed by.  An ambient governor, when active, takes precedence.
    """
    if not max_bytes:
        yield
        return
    _budget_hints.append(int(max_bytes))
    try:
        yield
    finally:
        _budget_hints.pop()


def spill_threshold_bytes() -> int:
    """Encoded bytes above which ``auto`` spills a relation.

    Resolution order: ``REPRO_SPILL_THRESHOLD`` (a ``--memory``-style
    size string), then a quarter of the governing memory budget (the
    encoded columns of *one* relation should never claim the whole
    process allowance), then :data:`DEFAULT_SPILL_THRESHOLD`.
    """
    raw = os.environ.get("REPRO_SPILL_THRESHOLD")
    if raw:
        try:
            return max(1, parse_memory(raw))
        except InputError:
            raise InputError(
                f"invalid REPRO_SPILL_THRESHOLD {raw!r}; "
                "expected a size like 256M or 2G"
            ) from None
    governor = current_governor()
    if governor is not None and governor.budget.max_memory_bytes:
        return max(1, governor.budget.max_memory_bytes // 4)
    if _budget_hints:
        return max(1, _budget_hints[-1] // 4)
    return DEFAULT_SPILL_THRESHOLD


def resolve_tier(estimated_bytes: int | None = None) -> str:
    """``"memory"`` or ``"spill"`` for an encoding of the given size."""
    policy = policy_name()
    if policy == "memory":
        return "memory"
    if policy == "spill":
        return "spill"
    if estimated_bytes is None:
        return "memory"
    return "spill" if estimated_bytes >= spill_threshold_bytes() else "memory"


def chunk_rows() -> int:
    """Rows per ingestion chunk for the streaming CSV reader."""
    raw = os.environ.get("REPRO_CHUNK_ROWS")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise InputError(
                f"invalid REPRO_CHUNK_ROWS {raw!r}; expected an integer"
            ) from None
        if value < 1:
            raise InputError("REPRO_CHUNK_ROWS must be at least 1")
        return value
    return 4096


# ----------------------------------------------------------------------
# Counters (mirrors repro.kernels counters; surfaced via DataProfile)
# ----------------------------------------------------------------------
_COUNTER_KEYS = (
    "spill_columns",
    "spill_pages_written",
    "spill_pages_read",
    "spill_cells_written",
)
_counters: dict[str, int] = {key: 0 for key in _COUNTER_KEYS}
_peak_buffered_cells = 0


def bump(name: str, amount: int = 1) -> None:
    _counters[name] = _counters.get(name, 0) + amount


def note_buffered(cells: int) -> None:
    """Record the in-heap staging footprint (cells) at a flush point."""
    global _peak_buffered_cells
    if cells > _peak_buffered_cells:
        _peak_buffered_cells = cells


def peak_buffered_cells() -> int:
    """High-water mark of cells staged in heap buffers since reset."""
    return _peak_buffered_cells


def counters_snapshot() -> dict[str, int]:
    return dict(_counters)


def counters_delta(mark: dict[str, int]) -> dict[str, int]:
    return {
        key: value - mark.get(key, 0)
        for key, value in _counters.items()
        if value - mark.get(key, 0)
    }


def reset_counters() -> None:
    global _peak_buffered_cells
    for key in list(_counters):
        _counters[key] = 0
    _peak_buffered_cells = 0


# ----------------------------------------------------------------------
# Spill directory lifecycle
# ----------------------------------------------------------------------
_dir_overrides: list[Path] = []
_process_dir: Path | None = None
_process_dir_pid: int | None = None
_store_seq = itertools.count()


def _spill_base() -> Path:
    return Path(os.environ.get("REPRO_SPILL_DIR") or tempfile.gettempdir())


def process_spill_dir() -> Path:
    """This process's pid-attributed spill directory (created lazily).

    After a fork the child sees the parent's path cached; the pid check
    makes it mint its own directory instead of scribbling into one it
    does not own.
    """
    global _process_dir, _process_dir_pid
    pid = os.getpid()
    if _process_dir is None or _process_dir_pid != pid:
        name = f"{SPILL_PREFIX}-{pid}-{os.urandom(4).hex()}"
        path = _spill_base() / name
        path.mkdir(parents=True, exist_ok=True)
        _process_dir = path
        _process_dir_pid = pid
    return _process_dir


@contextlib.contextmanager
def spill_dir_override(path: str | Path):
    """Route new spill stores into ``path`` (per-session server dirs)."""
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    _dir_overrides.append(target)
    try:
        yield target
    finally:
        _dir_overrides.pop()


def _target_dir() -> Path:
    if _dir_overrides:
        return _dir_overrides[-1]
    return process_spill_dir()


def release_process_spill() -> int:
    """Remove this process's spill directory; return 1 if one existed.

    Safe while stores are live: unlinking mapped files leaves existing
    mappings readable (POSIX), and :meth:`ColumnStore.close` tolerates
    already-missing files.  Used by the CLI signal boundary and the
    ``atexit`` hook.
    """
    global _process_dir, _process_dir_pid
    if _process_dir is None or _process_dir_pid != os.getpid():
        return 0
    path = _process_dir
    _process_dir = None
    _process_dir_pid = None
    shutil.rmtree(path, ignore_errors=True)
    return 1


def reap_orphan_spill_dirs(base: str | Path | None = None) -> int:
    """Remove spill directories whose owning process is dead.

    Same contract as :func:`repro.parallel.shm.reap_orphan_segments`:
    only our ``repro-spill-<pid>-...`` naming scheme is considered, and
    directories of live processes (including our own) are never
    touched.  Returns the number of directories removed.
    """
    from repro.parallel.shm import _pid_alive

    root = Path(base) if base is not None else _spill_base()
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    own_pid = os.getpid()
    marker = SPILL_PREFIX + "-"
    reaped = 0
    for name in names:
        if not name.startswith(marker):
            continue
        parts = name.split("-")
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        pid = int(parts[2])
        if pid == own_pid or _pid_alive(pid):
            continue
        shutil.rmtree(root / name, ignore_errors=True)
        reaped += 1
    return reaped


def _atexit_release() -> None:  # pragma: no cover - interpreter teardown
    try:
        release_process_spill()
    except Exception:
        pass


atexit.register(_atexit_release)


# ----------------------------------------------------------------------
# The spill tier proper
# ----------------------------------------------------------------------
class ColumnStore:
    """File-backed code vectors of one relation.

    One binary file per column; pages of ``int32`` codes are appended
    with :meth:`append_page` and :meth:`finalize` maps each file and
    hands out ``memoryview(...).cast('i')`` column views.  Appends
    (:meth:`append_column` + :meth:`remap`) only ever *extend* a file,
    so a handle exported at an earlier generation still maps a
    consistent prefix; deletes (:meth:`rewrite_all`) write fresh
    per-generation files so no mapped bytes are ever mutated in place.
    """

    __slots__ = (
        "directory",
        "arity",
        "generation",
        "num_rows",
        "_paths",
        "_maps",
        "_views",
        "_retired",
        "_closed",
        "stats",
    )

    def __init__(self, arity: int, directory: str | Path | None = None) -> None:
        parent = Path(directory) if directory is not None else _target_dir()
        self.directory = parent / f"store-{next(_store_seq)}"
        self.directory.mkdir(parents=True, exist_ok=True)
        self.arity = arity
        self.generation = 0
        self.num_rows = 0
        self._paths = [self._column_path(attr, 0) for attr in range(arity)]
        self._maps: list[mmap.mmap | None] = [None] * arity
        self._views: list[memoryview | None] = [None] * arity
        self._retired: list[tuple[mmap.mmap | None, memoryview]] = []
        self._closed = False
        self.stats = {
            "spill_pages_written": 0,
            "spill_pages_read": 0,
            "spill_cells_written": 0,
        }
        bump("spill_columns", arity)
        note_spill()

    def _column_path(self, attr: int, generation: int) -> Path:
        return self.directory / f"col{attr}-g{generation}.i32"

    # -- writing -------------------------------------------------------
    def append_page(self, attr: int, codes: array) -> None:
        """Append one page of codes to a column file."""
        if not len(codes):
            return
        with open(self._paths[attr], "ab") as handle:
            handle.write(codes.tobytes())
        bump("spill_pages_written")
        bump("spill_cells_written", len(codes))
        self.stats["spill_pages_written"] += 1
        self.stats["spill_cells_written"] += len(codes)

    def finalize(self, num_rows: int) -> None:
        """Map every column at its final length; views become available."""
        self.num_rows = num_rows
        for attr in range(self.arity):
            self._map_column(attr)

    def append_column(self, attr: int, codes: array) -> None:
        """Append codes to an already-finalized column (incremental extend)."""
        self.append_page(attr, codes)

    def remap(self, num_rows: int) -> None:
        """Re-map every column after appends grew the files."""
        for attr in range(self.arity):
            self._retire(attr)
        self.generation += 1
        self.finalize(num_rows)

    def rewrite_all(self, columns: list[array], num_rows: int) -> None:
        """Replace every column (delete compaction) under a new generation.

        Fresh per-generation filenames keep any still-mapped older
        generation byte-stable; the superseded files are unlinked (live
        mappings survive the unlink).
        """
        self.generation += 1
        for attr, codes in enumerate(columns):
            self._retire(attr)
            old_path = self._paths[attr]
            new_path = self._column_path(attr, self.generation)
            self._paths[attr] = new_path
            self.append_page(attr, codes)
            if not len(codes):
                new_path.touch()
            with contextlib.suppress(OSError):
                old_path.unlink()
        self.finalize(num_rows)

    # -- mapping -------------------------------------------------------
    def _map_column(self, attr: int) -> None:
        num_rows = self.num_rows
        if not num_rows:
            self._paths[attr].touch()
            self._maps[attr] = None
            self._views[attr] = memoryview(array("i"))
            return
        with open(self._paths[attr], "rb") as handle:
            mapped = mmap.mmap(
                handle.fileno(), num_rows * _ITEMSIZE, access=mmap.ACCESS_READ
            )
        self._maps[attr] = mapped
        self._views[attr] = memoryview(mapped).cast("i")
        pages = max(1, -(-num_rows // PAGE_ROWS))
        bump("spill_pages_read", pages)
        self.stats["spill_pages_read"] += pages

    def _retire(self, attr: int) -> None:
        view = self._views[attr]
        if view is None:
            return
        # Consumers may still index the old view (e.g. a PLI probe held
        # across a batch); park it and release on close.
        self._retired.append((self._maps[attr], view))
        self._maps[attr] = None
        self._views[attr] = None

    def views(self) -> list[memoryview]:
        """The current column views (valid after :meth:`finalize`)."""
        return list(self._views)

    # -- export --------------------------------------------------------
    def handle(self, encoding) -> "FileHandle":
        """A picklable descriptor workers can :func:`attach_file_handle`."""
        return FileHandle(
            segment=f"spill:{self.directory}:g{self.generation}",
            paths=tuple(str(path) for path in self._paths),
            arity=self.arity,
            num_rows=self.num_rows,
            cardinalities=tuple(encoding.cardinalities),
            null_codes=tuple(encoding.null_codes),
            null_equals_null=encoding.null_equals_null,
        )

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Release mappings and delete the store's files (idempotent)."""
        if self._closed:
            return
        self._closed = True
        pairs = list(self._retired)
        pairs.extend(zip(self._maps, self._views))
        self._retired = []
        self._maps = [None] * self.arity
        self._views = [None] * self.arity
        for mapped, view in pairs:
            if view is not None:
                with contextlib.suppress(BufferError):
                    view.release()
            if mapped is not None:
                with contextlib.suppress(BufferError, ValueError):
                    mapped.close()
        shutil.rmtree(self.directory, ignore_errors=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        with contextlib.suppress(Exception):
            self.close()


@dataclass(frozen=True, slots=True)
class FileHandle:
    """Picklable descriptor of one spilled relation (worker transport).

    The mirror of :class:`repro.parallel.shm.ShmHandle` for the spill
    tier.  ``segment`` is the attachment-cache key: it embeds the store
    directory *and* generation, so workers re-attach after an extend or
    delete instead of serving stale pages.  ``num_rows`` bounds the
    worker's mapping — the parent may have appended past it by the time
    a queued task attaches, and mapping exactly ``num_rows`` rows keeps
    the view consistent with the exporting generation.
    """

    segment: str
    paths: tuple[str, ...]
    arity: int
    num_rows: int
    cardinalities: tuple[int, ...]
    null_codes: tuple[int | None, ...]
    null_equals_null: bool

    @property
    def num_cells(self) -> int:
        return self.arity * self.num_rows


class SpilledRelation:
    """Parent-side export of a spilled relation — no copy, nothing to own.

    Quacks like :class:`repro.parallel.shm.SharedRelation` (``handle``,
    ``export_seconds``, ``close``) so ``RelationRun`` needs no special
    case; the backing files belong to the :class:`ColumnStore` and
    outlive the run.
    """

    __slots__ = ("handle", "export_seconds")

    def __init__(self, handle: FileHandle) -> None:
        self.handle = handle
        self.export_seconds = 0.0

    def close(self) -> None:
        return None

    def __enter__(self) -> "SpilledRelation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _FileAttachment:
    """Worker-side owner of the mmaps behind an attached spilled relation.

    Mirrors the ``SharedMemory`` object returned by ``attach_encoding``
    for the shm tier: the attachment cache keeps it alive beside the
    encoding and calls :meth:`close` at teardown, after releasing the
    column views carved out of it.
    """

    __slots__ = ("_maps",)

    def __init__(self, maps: list[mmap.mmap]) -> None:
        self._maps = maps

    def close(self) -> None:
        maps, self._maps = self._maps, []
        for mapped in maps:
            with contextlib.suppress(BufferError, ValueError):
                mapped.close()


def attach_file_handle(handle: FileHandle):
    """Map a spilled relation read-only; the worker-side twin of
    :func:`repro.parallel.shm.attach_encoding`.

    Returns ``(encoding, attachment)`` where the encoding's ``codes``
    are zero-copy ``memoryview`` casts over per-column mmaps of exactly
    ``handle.num_rows`` rows.
    """
    from repro.structures.encoding import EncodedRelation

    num_rows = handle.num_rows
    maps: list[mmap.mmap] = []
    codes: list = []
    if num_rows:
        for path in handle.paths:
            with open(path, "rb") as fh:
                mapped = mmap.mmap(
                    fh.fileno(), num_rows * _ITEMSIZE, access=mmap.ACCESS_READ
                )
            maps.append(mapped)
            codes.append(memoryview(mapped).cast("i"))
        bump("spill_pages_read", handle.arity * max(1, -(-num_rows // PAGE_ROWS)))
    else:
        codes = [memoryview(array("i")) for _ in range(handle.arity)]
    encoding = EncodedRelation(
        codes=codes,
        cardinalities=list(handle.cardinalities),
        null_codes=list(handle.null_codes),
        num_rows=num_rows,
        null_equals_null=handle.null_equals_null,
        value_ids=None,
    )
    return encoding, _FileAttachment(maps)
