"""Level-indexed antichain/set store for lattice-search pruning.

:class:`LevelIndex` is the :class:`~repro.structures.settrie.SetTrie`
surface re-implemented on the FD-tree lattice engine's layout: stored
attribute-set bitmasks are grouped by popcount level, each level being
a list plus an exact-membership dict.  Subset ("is some stored set ⊆
mask?") and superset queries become flat mask sweeps over the levels
at or below / above the query's popcount — no pointer chasing, and the
level bound prunes exactly like the trie's path pruning.

It backs the boundary sets of the generic lattice search
(:mod:`repro.discovery.lattice` — DFD's and DUCC's ``min_sat`` /
``max_unsat``) and TANE's prefix-join survivor check, both of which
also consume the batch entry points (:meth:`contains_batch`,
:meth:`contains_all`): screening a whole candidate round against the
pre-round state in one call is sound there because each round's
candidates are pairwise distinct, so earlier insertions in the round
can never be membership hits for later candidates.

Unlike the FD-tree this store carries no RHS payload and its sets
number in the hundreds, so it stays pure Python — the win over the
trie is the flat sweep, not vectorization.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.model.attributes import bits_of

__all__ = ["LevelIndex"]


class LevelIndex:
    """Stores attribute-set bitmasks; answers subset/superset queries."""

    __slots__ = ("_levels", "_size")

    def __init__(self, masks: Iterable[int] = ()) -> None:
        # level k: dict mask -> None (insertion-ordered set) of all
        # stored masks with popcount k
        self._levels: list[dict[int, None]] = []
        self._size = 0
        for mask in masks:
            self.insert(mask)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, mask: int) -> bool:
        """Insert a set; return True if it was not present before.

        The empty set (mask 0) is a valid member and is a subset of
        everything.
        """
        depth = mask.bit_count()
        levels = self._levels
        while len(levels) <= depth:
            levels.append({})
        level = levels[depth]
        if mask in level:
            return False
        level[mask] = None
        self._size += 1
        return True

    def remove(self, mask: int) -> bool:
        """Remove a set; return True if it was present."""
        depth = mask.bit_count()
        if depth >= len(self._levels):
            return False
        level = self._levels[depth]
        if mask not in level:
            return False
        del level[mask]
        self._size -= 1
        return True

    def __contains__(self, mask: int) -> bool:
        depth = mask.bit_count()
        if depth >= len(self._levels):
            return False
        return mask in self._levels[depth]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains_batch(self, masks: Iterable[int]) -> list[bool]:
        """Exact membership for every mask, against the current state."""
        return [mask in self for mask in masks]

    def contains_all(self, masks: Iterable[int]) -> bool:
        """True iff every mask is stored (short-circuits on a miss)."""
        return all(mask in self for mask in masks)

    def contains_subset_of(self, mask: int) -> bool:
        """True iff some stored set is a subset of ``mask``."""
        levels = self._levels
        top = min(mask.bit_count(), len(levels) - 1)
        outside = ~mask
        for depth in range(top + 1):
            for stored in levels[depth]:
                if stored & outside == 0:
                    return True
        return False

    def contains_proper_subset_of(self, mask: int) -> bool:
        """True iff some stored set is a *proper* subset of ``mask``."""
        levels = self._levels
        top = min(mask.bit_count() - 1, len(levels) - 1)
        outside = ~mask
        for depth in range(top + 1):
            for stored in levels[depth]:
                if stored & outside == 0:
                    return True
        return False

    def iter_subsets_of(self, mask: int) -> Iterator[int]:
        """Yield every stored subset of ``mask``, in sorted-path order."""
        levels = self._levels
        top = min(mask.bit_count(), len(levels) - 1)
        outside = ~mask
        matches = [
            stored
            for depth in range(top + 1)
            for stored in levels[depth]
            if stored & outside == 0
        ]
        matches.sort(key=bits_of)
        yield from matches

    def contains_superset_of(self, mask: int) -> bool:
        """True iff some stored set is a superset of ``mask``."""
        levels = self._levels
        for depth in range(mask.bit_count(), len(levels)):
            for stored in levels[depth]:
                if mask & ~stored == 0:
                    return True
        return False

    def iter_all(self) -> Iterator[int]:
        """Yield all stored sets in sorted-path order (the SetTrie order)."""
        entries = [stored for level in self._levels for stored in level]
        entries.sort(key=bits_of)
        yield from entries
