"""The recursive FD prefix tree — the pre-lattice baseline engine.

This is the original :class:`FDTree` implementation: FDs ``X → a`` are
stored along the sorted attribute path of ``X`` in a trie of dict
nodes, and every generalization/violation query is a recursive walk
pruned by per-node ``rhs_subtree`` over-approximations.

It remains in the codebase for three reasons:

* it is the **differential baseline** for the level-indexed lattice
  engine (``tests/test_fdtree_differential.py`` asserts byte-identical
  behaviour between the two on seeded instances),
* it is selectable at runtime (``REPRO_FDTREE=legacy`` or
  ``--fdtree legacy``) so regressions in the new engine can be
  bisected in production without a rollback, and
* ``benchmarks/bench_fdtree.py`` measures the lattice engine's speedup
  against exactly this recursive walk (the ≥5x gate).

Compared to the historical class it gains :meth:`prune` — the original
``remove`` left dead node chains in place and never shrank the
``rhs_subtree`` masks, so heavy removal churn (HyFD induction)
permanently inflated every later traversal — and the batch entry
points of the lattice engine, implemented as plain loops so both
engines expose one interface.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.model.attributes import bits_of, iter_bits, mask_of

from repro.structures import fdtree as _fdtree

__all__ = ["LegacyFDTree"]


class _Node:
    __slots__ = ("children", "fds", "rhs_subtree")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.fds = 0
        self.rhs_subtree = 0


class LegacyFDTree(_fdtree.FDTree):
    """Prefix tree over FD left-hand sides with per-node RHS bitmasks."""

    __slots__ = ("_root",)

    engine = "legacy"

    def __init__(self, num_attributes: int | None = None) -> None:
        self.num_attributes = int(num_attributes or 0)
        self._root = _Node()

    # The base class strips its level/mirror caches on pickling; this
    # engine has none, so it pickles its trie verbatim.
    def __getstate__(self):
        return {"num_attributes": self.num_attributes, "root": self._root}

    def __setstate__(self, state) -> None:
        self.num_attributes = state["num_attributes"]
        self._root = state["root"]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, lhs: int, rhs: int) -> None:
        """Mark ``lhs → a`` for every attribute ``a`` in ``rhs``."""
        if not rhs:
            return
        node = self._root
        node.rhs_subtree |= rhs
        for index in bits_of(lhs):
            child = node.children.get(index)
            if child is None:
                child = _Node()
                node.children[index] = child
            node = child
            node.rhs_subtree |= rhs
        node.fds |= rhs

    def remove(self, lhs: int, rhs: int) -> None:
        """Unmark ``lhs → a`` for every ``a`` in ``rhs`` (nodes stay in place)."""
        node: _Node | None = self._root
        for index in bits_of(lhs):
            node = node.children.get(index) if node else None
            if node is None:
                return
        if node is not None:
            node.fds &= ~rhs

    def prune(self) -> None:
        """Drop dead subtrees and recompute exact ``rhs_subtree`` masks.

        ``remove`` leaves emptied nodes in place and never shrinks the
        over-approximate ``rhs_subtree``, so a removal-heavy induction
        burst permanently inflates every later traversal.  One pruning
        pass restores the tree to what building it from the surviving
        FDs would produce.
        """
        self._prune(self._root)

    def _prune(self, node: _Node) -> int:
        exact = node.fds
        dead: list[int] = []
        for index, child in node.children.items():
            subtree = self._prune(child)
            if subtree:
                exact |= subtree
            else:
                dead.append(index)
        for index in dead:
            del node.children[index]
        node.rhs_subtree = exact
        return exact

    def add_minimal_specializations(
        self, lhs: int, rhs_attr: int, extensions: int
    ) -> list[int]:
        """Insert ``lhs ∪ {b} → rhs_attr`` for each ``b`` in ``extensions``
        that has no stored generalization; return the LHSs added."""
        rhs_bit = 1 << rhs_attr
        added: list[int] = []
        for extension in iter_bits(extensions):
            new_lhs = lhs | (1 << extension)
            if self.contains_fd_or_generalization(new_lhs, rhs_attr):
                continue
            self.add(new_lhs, rhs_bit)
            added.append(new_lhs)
        return added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains_fd(self, lhs: int, rhs_attr: int) -> bool:
        """Exact membership of ``lhs → rhs_attr`` (``rhs_attr`` is an index)."""
        node: _Node | None = self._root
        for index in bits_of(lhs):
            node = node.children.get(index) if node else None
            if node is None:
                return False
        return bool(node.fds >> rhs_attr & 1)

    def contains_fd_or_generalization(self, lhs: int, rhs_attr: int) -> bool:
        """True iff some stored ``X → rhs_attr`` has ``X ⊆ lhs``."""
        return self._contains_generalization(self._root, lhs, rhs_attr)

    def _contains_generalization(self, node: _Node, lhs: int, rhs_attr: int) -> bool:
        if node.fds >> rhs_attr & 1:
            return True
        if not node.rhs_subtree >> rhs_attr & 1:
            return False
        for index, child in node.children.items():
            if lhs >> index & 1:
                if self._contains_generalization(child, lhs, rhs_attr):
                    return True
        return False

    def contains_generalization_batch(
        self, pairs: Iterable[tuple[int, int]]
    ) -> list[bool]:
        """Batch form of :meth:`contains_fd_or_generalization`."""
        return [
            self.contains_fd_or_generalization(lhs, rhs_attr)
            for lhs, rhs_attr in pairs
        ]

    def collect_violated(self, agree_set: int) -> list[tuple[int, int]]:
        """FDs violated by a record pair that agrees exactly on ``agree_set``.

        A stored ``X → a`` is violated iff ``X ⊆ agree_set`` and
        ``a ∉ agree_set``.  Returns ``(lhs, violated_rhs_mask)`` pairs.
        """
        disagree = ((1 << self.num_attributes) - 1) & ~agree_set
        out: list[tuple[int, int]] = []
        self._collect_violated(self._root, agree_set, disagree, (), out)
        return out

    def _collect_violated(
        self,
        node: _Node,
        agree_set: int,
        disagree: int,
        prefix: tuple[int, ...],
        out: list[tuple[int, int]],
    ) -> None:
        hit = node.fds & disagree
        if hit:
            out.append((mask_of(prefix), hit))
        if not node.rhs_subtree & disagree:
            return
        for index, child in node.children.items():
            if agree_set >> index & 1:
                self._collect_violated(
                    child, agree_set, disagree, prefix + (index,), out
                )

    def collect_violated_batch(
        self, agree_sets: Iterable[int]
    ) -> list[list[tuple[int, int]]]:
        """Read-only batch form of :meth:`collect_violated`."""
        return [self.collect_violated(agree) for agree in agree_sets]

    def any_violated(self, agree_set: int) -> bool:
        """True iff :meth:`collect_violated` would return anything."""
        disagree = ((1 << self.num_attributes) - 1) & ~agree_set
        if not disagree:
            return False
        return self._any_violated(self._root, agree_set, disagree)

    def _any_violated(self, node: _Node, agree_set: int, disagree: int) -> bool:
        if node.fds & disagree:
            return True
        if not node.rhs_subtree & disagree:
            return False
        for index, child in node.children.items():
            if agree_set >> index & 1:
                if self._any_violated(child, agree_set, disagree):
                    return True
        return False

    def any_violated_batch(self, agree_sets: Iterable[int]) -> list[bool]:
        """Read-only batch form of :meth:`any_violated`."""
        return [self.any_violated(agree) for agree in agree_sets]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_level(self, depth: int) -> Iterator[tuple[int, int]]:
        """Yield ``(lhs, rhs_mask)`` for all FDs with ``|lhs| == depth``."""
        yield from self._iter_level(self._root, depth, ())

    def _iter_level(
        self, node: _Node, depth: int, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, int]]:
        if len(prefix) == depth:
            if node.fds:
                yield (mask_of(prefix), node.fds)
            return
        for index, child in sorted(node.children.items()):
            yield from self._iter_level(child, depth, prefix + (index,))

    def iter_all(self) -> Iterator[tuple[int, int]]:
        """Yield every stored ``(lhs, rhs_mask)`` pair."""
        yield from self._iter_all(self._root, ())

    def _iter_all(
        self, node: _Node, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, int]]:
        if node.fds:
            yield (mask_of(prefix), node.fds)
        for index, child in sorted(node.children.items()):
            yield from self._iter_all(child, prefix + (index,))

    def depth(self) -> int:
        """Length of the longest stored LHS."""
        return self._depth(self._root)

    def _depth(self, node: _Node) -> int:
        if not node.children:
            return 0
        return 1 + max(self._depth(child) for child in node.children.values())

    def count_fds(self) -> int:
        """Total number of single-RHS FDs stored."""
        return sum(rhs.bit_count() for _, rhs in self.iter_all())

    def stats(self) -> dict[str, int]:
        """Structural size: trie nodes vs. nodes carrying live FDs."""
        nodes = live = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            if node.fds:
                live += 1
            stack.extend(node.children.values())
        return {"nodes": nodes, "live": live, "dead": nodes - live}
