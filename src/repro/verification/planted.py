"""Planted-FD instance generation: tables with a known ground truth.

Pure random tables (:func:`repro.datagen.random_tables.random_instance`)
exercise the discoverers, but their true FD set is only known *after*
running an oracle — any bug shared by generator-side reasoning and the
oracle goes unseen.  A *planted* instance turns this around: first draw
a random acyclic FD cover and (optionally) a key, then materialize a
table that **satisfies every planted dependency by construction**:

* free columns draw values independently, per-column domain sizes and
  Zipf skew included, optionally with NULLs,
* a planted key is materialized as mixed-radix digits of the row index,
  so its column set is unique no matter what the other columns do,
* each derived column ``A`` with planted LHS ``X`` maps every distinct
  ``X``-value combination to a randomly chosen codomain value through a
  memo table — ``X → A`` therefore holds *exactly*.

LHS attributes are always drawn from strictly smaller column indices,
which keeps the cover acyclic and the materialization well-defined in a
single left-to-right pass.

What the planted cover guarantees (and what it does not): every planted
FD **holds** in the data and every planted key **is unique**; the data
may additionally satisfy accidental dependencies (small domains collide)
and a planted FD may turn out non-minimal (a subset of its LHS can
accidentally determine the RHS).  The verification harness therefore
checks *containment* — the discovered minimal FDs must imply every
planted FD, and some discovered UCC must be a subset of the planted key
— rather than set equality.  Exact equality is covered separately by
the definitional oracle (:mod:`repro.verification.differential`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.attributes import iter_bits, mask_of
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["PlantedInstance", "plant_instance"]


@dataclass(frozen=True, slots=True)
class PlantedInstance:
    """A materialized table plus the dependencies planted into it."""

    instance: RelationInstance
    #: the planted FD cover; every contained FD holds in ``instance``
    cover: FDSet
    #: bitmask of the planted unique column combination (0 = none planted)
    key_mask: int
    #: seed the table was grown from (for reproduction messages)
    seed: int

    def planted_fds(self) -> list[FD]:
        """The planted cover as single-RHS FDs (stable order)."""
        out: list[FD] = []
        for lhs, rhs in sorted(self.cover.items()):
            for attr in iter_bits(rhs):
                out.append(FD(lhs, 1 << attr))
        return out


def plant_instance(
    seed: int,
    num_columns: int = 5,
    num_rows: int = 30,
    max_lhs_size: int = 2,
    derived_rate: float = 0.5,
    null_rate: float = 0.0,
    plant_key: bool = True,
    max_domain: int = 4,
    max_skew: float = 1.5,
    name: str = "planted",
) -> PlantedInstance:
    """Materialize a random table with a planted FD cover and key.

    ``derived_rate`` is the probability that a column (other than the
    first) becomes functionally derived from earlier columns;
    ``max_lhs_size`` bounds planted LHS widths.  ``null_rate`` injects
    NULLs into *free, non-key* columns only, so planted dependencies
    hold under both NULL semantics (NULL never appears in a derived
    column, and a NULL on an LHS at worst shrinks the agreeing groups).
    """
    if num_columns < 1:
        raise ValueError("need at least one column")
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    if max_lhs_size < 1:
        raise ValueError("max_lhs_size must be positive")
    rng = random.Random(seed)

    # --- structural draw: key columns, derived columns, planted LHSs ---
    key_columns: list[int] = []
    if plant_key and num_rows > 0:
        key_width = rng.randint(1, min(2, num_columns))
        key_columns = sorted(rng.sample(range(num_columns), key_width))
    key_set = set(key_columns)

    lhs_of: dict[int, int] = {}  # derived column -> planted LHS mask
    for col in range(1, num_columns):
        if col in key_set:
            continue  # key digits must stay free to guarantee uniqueness
        if rng.random() >= derived_rate:
            continue
        width = rng.randint(1, min(max_lhs_size, col))
        lhs_of[col] = mask_of(rng.sample(range(col), width))

    # --- materialization, one left-to-right pass ----------------------
    columns_data: list[list] = [[] for _ in range(num_columns)]
    key_radix = _key_radix(len(key_columns), num_rows, max_domain)
    domains = [rng.randint(2, max_domain) for _ in range(num_columns)]
    skews = [
        rng.uniform(0.5, max_skew) if rng.random() < 0.5 else 0.0
        for _ in range(num_columns)
    ]
    memos: dict[int, dict[tuple, object]] = {col: {} for col in lhs_of}

    for row in range(num_rows):
        values: list = [None] * num_columns
        for col in range(num_columns):
            if col in key_set:
                digit_index = key_columns.index(col)
                values[col] = _key_digit(row, digit_index, key_radix)
            elif col in lhs_of:
                witness = tuple(values[i] for i in iter_bits(lhs_of[col]))
                memo = memos[col]
                if witness not in memo:
                    memo[witness] = rng.randrange(domains[col])
                values[col] = memo[witness]
            else:
                if null_rate and rng.random() < null_rate:
                    values[col] = None
                else:
                    values[col] = _draw(rng, domains[col], skews[col])
        for col in range(num_columns):
            columns_data[col].append(values[col])

    relation = Relation(name, tuple(f"c{i}" for i in range(num_columns)))
    instance = RelationInstance(relation, columns_data)

    cover = FDSet(num_columns)
    for col, lhs in lhs_of.items():
        cover.add_masks(lhs, 1 << col)
    return PlantedInstance(
        instance=instance,
        cover=cover,
        key_mask=mask_of(key_columns),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _key_radix(key_width: int, num_rows: int, max_domain: int) -> int:
    """Per-digit radix so ``key_width`` digits can address every row.

    The radix is at least ``max_domain`` so key columns look like normal
    categorical columns on small tables, and grows as needed so that
    ``radix ** key_width >= num_rows``.
    """
    if key_width == 0:
        return 0
    radix = max(max_domain, 2)
    while radix**key_width < num_rows:
        radix += 1
    return radix


def _key_digit(row: int, digit_index: int, radix: int) -> int:
    return (row // radix**digit_index) % radix


def _draw(rng: random.Random, domain: int, skew: float) -> int:
    """One value draw: uniform, or Zipf-ish via inverse rank weighting."""
    if not skew:
        return rng.randrange(domain)
    # Rejection-free: walk cumulative 1/(r+1)^skew weights.
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain)]
    total = sum(weights)
    target = rng.random() * total
    acc = 0.0
    for rank, weight in enumerate(weights):
        acc += weight
        if target <= acc:
            return rank
    return domain - 1
