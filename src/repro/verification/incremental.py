"""Differential verification of the incremental normalization engine.

The incremental engine's correctness bar is brutal on purpose: after
*every* applied batch, the maintained FD cover, key set, and emitted
DDL must be **byte-identical** to a from-scratch run of the full
pipeline over the updated instance.  This module turns that bar into a
seeded campaign:

* one seed draws a planted-cover base table
  (:func:`repro.verification.planted.plant_instance`) and a stream of
  change batches in one of five shapes — insert-only, delete-only,
  mixed, NULL-carrying inserts, and *key-flipping* batches that
  duplicate an existing key value with different dependent values
  (the adversarial case: they refute planted FDs and force cover
  repairs);
* an :class:`~repro.incremental.engine.IncrementalNormalizer` consumes
  the stream while a plain row mirror tracks what the data should be;
* after each batch four oracles run — row fidelity (live data vs the
  mirror), FD-cover equality against scratch HyFD (content *and*
  emission order), key-cover equality against scratch HyUCC, and DDL
  equality against a scratch :class:`~repro.core.normalize.Normalizer`
  configured exactly like the engine.

Console entry point: ``repro verify --incremental`` (wired in
:mod:`repro.verification.runner`).
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.normalize import Normalizer
from repro.core.selection import AutoDecider
from repro.discovery.hyucc import HyUCC
from repro.discovery.base import discover_fds
from repro.incremental.changes import ChangeBatch
from repro.incremental.engine import IncrementalNormalizer
from repro.io.ddl import schema_to_ddl
from repro.model.attributes import iter_bits
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.verification.planted import plant_instance

__all__ = [
    "IncrementalMismatch",
    "IncrementalReport",
    "STREAM_KINDS",
    "generate_batch_stream",
    "run_incremental_differential",
    "verify_incremental_seeds",
]

#: the batch-stream shapes one seed can draw (see module docstring)
STREAM_KINDS = ("insert-only", "delete-only", "mixed", "nulls", "key-flip")


@dataclass(slots=True)
class IncrementalMismatch:
    """One divergence between the engine and the from-scratch oracle."""

    seed: int
    kind: str
    batch_index: int
    check: str
    detail: str

    def describe(self) -> str:
        return (
            f"seed {self.seed} [{self.kind}] batch {self.batch_index} / "
            f"{self.check}: {self.detail}"
        )


@dataclass(slots=True)
class IncrementalReport:
    """Outcome of an incremental-differential campaign."""

    seeds: list[int] = field(default_factory=list)
    batches_applied: int = 0
    checks_run: int = 0
    mismatches: list[IncrementalMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_str(self) -> str:
        lines = [
            f"incremental-differential: {len(self.seeds)} seeds, "
            f"{self.batches_applied} batches, {self.checks_run} checks: "
            + (
                "all passed"
                if self.ok
                else f"{len(self.mismatches)} MISMATCHES"
            )
        ]
        for mismatch in self.mismatches:
            lines.append("  " + mismatch.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Batch-stream generation
# ----------------------------------------------------------------------
def generate_batch_stream(
    seed: int,
    base: RelationInstance,
    key_mask: int,
    num_batches: int,
    kind: str | None = None,
) -> tuple[str, list[ChangeBatch]]:
    """Draw a seeded stream of batches against ``base``.

    Ids follow the engine's convention: the initial rows get ids
    ``0..n-1`` and each insert takes the next free id, so this
    generator can produce valid delete targets without consulting the
    engine.  Returns the drawn stream kind and the batches.
    """
    rng = random.Random(seed * 0xC2B2AE35 + 11)
    if kind is None:
        kind = rng.choice(STREAM_KINDS)
    elif kind not in STREAM_KINDS:
        raise ValueError(f"unknown stream kind {kind!r}; one of {STREAM_KINDS}")

    arity = base.arity
    key_columns = list(iter_bits(key_mask))
    # Value pools per column: what the base table uses, plus a few fresh
    # values so inserts both collide with and extend the old domains.
    pools: list[list] = []
    for col in range(arity):
        seen = [v for v in base.columns_data[col] if v is not None]
        fresh = [f"n{seed % 97}_{col}_{i}" for i in range(2)]
        pools.append((seen or [0]) + fresh)

    live: dict[int, tuple] = {
        row_id: tuple(
            base.columns_data[col][row_id] for col in range(arity)
        )
        for row_id in range(base.num_rows)
    }
    next_id = base.num_rows

    def draw_row(allow_null: bool) -> tuple:
        values = []
        for col in range(arity):
            if allow_null and rng.random() < 0.2:
                values.append(None)
            else:
                values.append(rng.choice(pools[col]))
        return tuple(values)

    def flip_row() -> tuple:
        """Copy an existing row's key values, randomize the dependents."""
        victim = list(live[rng.choice(list(live))])
        for col in range(arity):
            if col not in key_columns:
                victim[col] = rng.choice(pools[col])
        return tuple(victim)

    batches: list[ChangeBatch] = []
    for _ in range(num_batches):
        inserts: list[tuple] = []
        deletes: list[int] = []
        if kind in ("insert-only", "mixed", "nulls", "key-flip"):
            for _ in range(rng.randint(1, 4)):
                if kind == "key-flip" and live and rng.random() < 0.7:
                    inserts.append(flip_row())
                elif rng.random() < 0.25 and live:
                    # exact duplicate of a live row
                    inserts.append(live[rng.choice(list(live))])
                else:
                    inserts.append(draw_row(allow_null=(kind == "nulls")))
        if kind in ("delete-only", "mixed") or (
            kind in ("nulls", "key-flip") and rng.random() < 0.3
        ):
            removable = max(0, len(live) - 2)  # keep >= 2 rows live
            for row_id in rng.sample(
                list(live), min(removable, rng.randint(1, 3))
            ):
                deletes.append(row_id)

        if not inserts and not deletes:
            inserts.append(draw_row(allow_null=False))
        for row_id in deletes:
            del live[row_id]
        for row in inserts:
            live[next_id] = row
            next_id += 1
        batches.append(
            ChangeBatch(
                inserts=tuple(inserts),
                deletes=tuple(sorted(deletes)),
                relation=base.name,
            )
        )
    return kind, batches


# ----------------------------------------------------------------------
# One seed = one engine run against four oracles
# ----------------------------------------------------------------------
def run_incremental_differential(
    seed: int,
    num_batches: int = 10,
    num_columns: int | None = None,
    num_rows: int | None = None,
    null_equals_null: bool | None = None,
    target: str | None = None,
    kind: str | None = None,
) -> list[IncrementalMismatch]:
    """Drive one seeded batch stream; return every oracle divergence.

    Unset parameters are drawn from the seed, so a bare seed range
    covers both NULL semantics, both normal-form targets, and all
    stream kinds.
    """
    rng = random.Random(seed * 0x85EBCA77 + 3)
    if num_columns is None:
        num_columns = rng.randint(3, 6)
    if num_rows is None:
        num_rows = rng.randint(8, 24)
    if null_equals_null is None:
        null_equals_null = rng.random() < 0.5
    if target is None:
        target = rng.choice(("bcnf", "3nf"))

    planted = plant_instance(
        seed,
        num_columns=num_columns,
        num_rows=num_rows,
        null_rate=rng.choice([0.0, 0.0, 0.15]),
    )
    base = planted.instance
    kind, batches = generate_batch_stream(
        seed, base, planted.key_mask, num_batches, kind=kind
    )

    engine = IncrementalNormalizer(
        RelationInstance(base.relation, [list(c) for c in base.columns_data]),
        target=target,
        null_equals_null=null_equals_null,
    )
    mismatches: list[IncrementalMismatch] = []

    # The independent row mirror (id -> row), same id discipline as the
    # engine: initial rows are 0..n-1, inserts take the next free id.
    mirror: dict[int, tuple] = {
        row_id: tuple(
            base.columns_data[col][row_id] for col in range(base.arity)
        )
        for row_id in range(base.num_rows)
    }
    next_id = base.num_rows

    def fail(index: int, check: str, detail: str) -> None:
        mismatches.append(
            IncrementalMismatch(
                seed=seed,
                kind=kind,
                batch_index=index,
                check=check,
                detail=detail,
            )
        )

    for index, batch in enumerate(batches):
        engine.apply_batch(batch)
        for row_id in batch.deletes:
            del mirror[row_id]
        for row in batch.inserts:
            mirror[next_id] = row
            next_id += 1

        live = engine.live(base.name)
        expected_rows = [mirror[row_id] for row_id in sorted(mirror)]

        # Oracle 1: live data matches the mirror, in stable-id order.
        actual_rows = [
            tuple(
                live.instance.columns_data[col][pos]
                for col in range(base.arity)
            )
            for pos in range(live.num_rows)
        ]
        mirror_order = [
            mirror[row_id] for row_id in live.row_ids
        ] if sorted(live.row_ids) == sorted(mirror) else None
        if mirror_order is None:
            fail(
                index,
                "rows",
                f"live ids {sorted(live.row_ids)} != mirror ids "
                f"{sorted(mirror)}",
            )
        elif actual_rows != mirror_order:
            fail(index, "rows", "live rows diverged from the mirror")
        if Counter(actual_rows) != Counter(expected_rows):
            fail(index, "rows", "live multiset diverged from the mirror")

        updated = RelationInstance(
            Relation(base.name, base.relation.columns),
            [
                [row[col] for row in expected_rows]
                for col in range(base.arity)
            ],
        )

        # Oracle 2: FD cover == scratch HyFD, content and order.
        scratch_fds = discover_fds(
            updated, "hyfd", null_equals_null=null_equals_null
        )
        maintained = engine.fd_cover(base.name)
        if list(maintained.items()) != list(scratch_fds.items()):
            fail(
                index,
                "fd-cover",
                f"maintained {sorted(maintained.items())} != scratch "
                f"{sorted(scratch_fds.items())}",
            )

        # Oracle 3: key cover == scratch HyUCC.
        scratch_uccs = HyUCC(null_equals_null=null_equals_null).discover(
            updated
        )
        if engine.key_cover(base.name) != list(scratch_uccs):
            fail(
                index,
                "key-cover",
                f"maintained {engine.key_cover(base.name)} != scratch "
                f"{list(scratch_uccs)}",
            )

        # Oracle 4: DDL byte-identical to a from-scratch pipeline run.
        scratch = Normalizer(
            algorithm="hyfd",
            decider=AutoDecider(),
            target=target,
            closure_algorithm=engine.closure_algorithm,
            null_equals_null=null_equals_null,
            exact_distinct=engine.exact_distinct,
            score_features=engine.score_features,
            ucc_seed=engine.ucc_seed,
            degrade=False,
        ).run(
            RelationInstance(
                updated.relation,
                [list(c) for c in updated.columns_data],
            )
        )
        scratch_ddl = schema_to_ddl(scratch.schema, scratch.instances)
        if engine.ddl() != scratch_ddl:
            fail(
                index,
                "ddl",
                "maintained DDL != from-scratch DDL:\n--- maintained\n"
                f"{engine.ddl()}\n--- scratch\n{scratch_ddl}",
            )
    return mismatches


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
def verify_incremental_seeds(
    seeds: int | Iterable[int],
    num_batches: int = 10,
    progress: Callable[[str], None] | None = None,
) -> IncrementalReport:
    """Run :func:`run_incremental_differential` over a seed range."""
    if isinstance(seeds, int):
        seeds = range(seeds)
    report = IncrementalReport()
    for seed in seeds:
        report.seeds.append(seed)
        if progress is not None:
            progress(f"seed {seed}")
        report.batches_applied += num_batches
        report.checks_run += num_batches * 4
        report.mismatches.extend(
            run_incremental_differential(seed, num_batches=num_batches)
        )
    return report
