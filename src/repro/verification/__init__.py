"""Differential & metamorphic verification of the Normalize pipeline.

The paper's guarantees — completeness and minimality of the discovered
FD set (the precondition of the optimized closure, Lemma 1), key
derivation (Lemma 2), lossless decomposition (Lemma 3) — are invariants
that silently break under aggressive optimization.  This subsystem
makes them continuously executable:

* :mod:`~repro.verification.planted` — adversarial instance generation
  with a planted (known-to-hold) FD cover and key,
* :mod:`~repro.verification.differential` — cross-algorithm diffing of
  FD and UCC discoverers plus definition-level semantic checks,
* :mod:`~repro.verification.metamorphic` — closure agreement and
  idempotence, normal-form compliance of the pipeline output, lossless
  join, dependency-preservation accounting,
* :mod:`~repro.verification.shrinker` — ddmin-style minimization of
  failing instances into ready-to-paste pytest reproductions,
* :mod:`~repro.verification.incremental` — seeded batch streams against
  the incremental engine, asserting maintained covers/keys/DDL stay
  byte-identical to from-scratch runs (``repro verify --incremental``),
* :mod:`~repro.verification.runner` — seeded campaigns behind
  ``repro verify --seeds N`` and the ``@pytest.mark.fuzz`` suite.

See ``docs/TESTING.md`` for the oracle design and workflows.
"""

from repro.verification.differential import (
    Disagreement,
    canonical_fds,
    fd_holds_in,
    run_fd_differential,
    run_ucc_differential,
    semantic_fd_errors,
)
from repro.verification.metamorphic import (
    PropertyViolation,
    check_closure_properties,
    check_pipeline_properties,
    lost_dependencies,
)
from repro.verification.incremental import (
    IncrementalMismatch,
    IncrementalReport,
    run_incremental_differential,
    verify_incremental_seeds,
)
from repro.verification.planted import PlantedInstance, plant_instance
from repro.verification.runner import (
    VerificationFailure,
    VerificationReport,
    verify_seeds,
)
from repro.verification.shrinker import shrink_instance, to_pytest_repro

__all__ = [
    "Disagreement",
    "IncrementalMismatch",
    "IncrementalReport",
    "PlantedInstance",
    "PropertyViolation",
    "VerificationFailure",
    "VerificationReport",
    "canonical_fds",
    "check_closure_properties",
    "check_pipeline_properties",
    "fd_holds_in",
    "lost_dependencies",
    "plant_instance",
    "run_fd_differential",
    "run_incremental_differential",
    "run_ucc_differential",
    "semantic_fd_errors",
    "shrink_instance",
    "to_pytest_repro",
    "verify_incremental_seeds",
    "verify_seeds",
]
