"""Automatic minimization of failing instances.

A fuzz failure on a 30-row, 7-column table is evidence; a 4-row,
3-column table reproducing the same failure is a bug report.  The
shrinker takes an instance plus a *predicate* (truthy while the failure
reproduces) and greedily minimizes:

1. **columns** — drop one attribute at a time while the predicate stays
   true (restarting after every success, so interacting columns fall
   out in any order),
2. **rows** — classic ddmin: remove progressively smaller chunks of
   rows, falling back to finer granularity when nothing can go,
3. repeat until a full pass changes nothing.

The result is turned into a ready-to-paste pytest reproduction by
:func:`to_pytest_repro` — a self-contained test module literal that the
CI fuzz job uploads as an artifact on failure.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["shrink_instance", "to_pytest_repro"]

Predicate = Callable[[RelationInstance], bool]


def shrink_instance(
    instance: RelationInstance,
    predicate: Predicate,
    max_evaluations: int = 3000,
) -> RelationInstance:
    """Minimize ``instance`` while ``predicate`` keeps returning True.

    ``predicate(instance)`` must already be True on entry (the failure
    reproduces on the input); raises :class:`ValueError` otherwise, so a
    flaky predicate is caught at the call site instead of producing a
    bogus "minimal" table.  ``max_evaluations`` bounds the number of
    predicate calls; on exhaustion the best instance found so far is
    returned.
    """
    budget = [max_evaluations]

    def holds(candidate: RelationInstance) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return bool(predicate(candidate))

    if not predicate(instance):
        raise ValueError("predicate does not hold on the initial instance")

    current = instance
    changed = True
    while changed and budget[0] > 0:
        changed = False
        shrunk = _shrink_columns(current, holds)
        if shrunk is not None:
            current, changed = shrunk, True
        shrunk = _shrink_rows(current, holds)
        if shrunk is not None:
            current, changed = shrunk, True
    return current


# ----------------------------------------------------------------------
# Column pass
# ----------------------------------------------------------------------
def _shrink_columns(
    instance: RelationInstance, holds: Predicate
) -> RelationInstance | None:
    current = instance
    improved = False
    index = 0
    while current.arity > 1 and index < current.arity:
        keep = [i for i in range(current.arity) if i != index]
        candidate = _project_columns(current, keep)
        if holds(candidate):
            current = candidate
            improved = True
            index = 0  # dropping one column can unlock earlier ones
        else:
            index += 1
    return current if improved else None


def _project_columns(
    instance: RelationInstance, keep: Sequence[int]
) -> RelationInstance:
    relation = Relation(
        instance.name, tuple(instance.columns[i] for i in keep)
    )
    return RelationInstance(
        relation, [list(instance.columns_data[i]) for i in keep]
    )


# ----------------------------------------------------------------------
# Row pass (ddmin)
# ----------------------------------------------------------------------
def _shrink_rows(
    instance: RelationInstance, holds: Predicate
) -> RelationInstance | None:
    rows = list(range(instance.num_rows))
    if len(rows) <= 1:
        return None
    improved = False
    granularity = 2
    while len(rows) >= 2:
        chunk_size = max(1, len(rows) // granularity)
        removed_any = False
        start = 0
        while start < len(rows):
            survivor = rows[:start] + rows[start + chunk_size :]
            if survivor and holds(_keep_rows(instance, survivor)):
                rows = survivor
                removed_any = True
                improved = True
                # stay at the same start: the next chunk slid into place
            else:
                start += chunk_size
        if removed_any:
            granularity = max(granularity - 1, 2)
        elif chunk_size == 1:
            break
        else:
            granularity = min(granularity * 2, len(rows))
    return _keep_rows(instance, rows) if improved else None


def _keep_rows(
    instance: RelationInstance, rows: Sequence[int]
) -> RelationInstance:
    relation = Relation(instance.name, instance.columns)
    return RelationInstance(
        relation,
        [[column[row] for row in rows] for column in instance.columns_data],
    )


# ----------------------------------------------------------------------
# Reproduction emission
# ----------------------------------------------------------------------
def to_pytest_repro(
    instance: RelationInstance,
    failure_expr: str,
    imports: Sequence[str] = (),
    test_name: str = "test_shrunk_repro",
    comment: str | None = None,
) -> str:
    """Render a self-contained pytest module reproducing the failure.

    ``failure_expr`` is a Python expression over the local name
    ``instance`` that is truthy while the bug reproduces; the emitted
    test asserts its falsity, so pasting the module into ``tests/``
    yields a red test until the bug is fixed.
    """
    lines = ["from repro.model.instance import RelationInstance"]
    lines.append("from repro.model.schema import Relation")
    lines.extend(imports)
    lines.append("")
    lines.append("")
    lines.append(f"def {test_name}():")
    if comment:
        for row in comment.splitlines():
            lines.append(f"    # {row}")
    columns = ", ".join(repr(name) for name in instance.columns)
    trailing = "," if instance.arity == 1 else ""
    lines.append("    instance = RelationInstance(")
    lines.append(f"        Relation({instance.name!r}, ({columns}{trailing})),")
    lines.append("        [")
    for column in instance.columns_data:
        lines.append(f"            {column!r},")
    lines.append("        ],")
    lines.append("    )")
    lines.append(f"    assert not ({failure_expr})")
    lines.append("")
    return "\n".join(lines)
