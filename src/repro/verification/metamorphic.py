"""Metamorphic properties of the Normalize pipeline.

Instead of comparing against a second implementation, these checks
assert relations *between* runs of the pipeline that must hold for any
input — the algebraic guarantees the paper proves:

* **closure agreement** — Algorithms 1/2/3 (naive, improved, optimized)
  compute the same ``F+`` whenever the input is a complete set of
  minimal FDs (Lemma 1 is what lets Algorithm 3 join the other two),
* **closure idempotence** — closing a closed set changes nothing,
* **normal-form compliance** — every relation the normalizer emits must
  pass the independent :func:`~repro.core.nf_check.check_normal_form`
  audit for the requested target,
* **lossless join** (Lemma 3) — natural-joining the decomposed
  relations back along the recorded foreign keys reproduces the
  original instance row-for-row (as a multiset),
* **dependency preservation** — accounting: which originally discovered
  FDs are no longer enforceable within a single relation of the result.
  BCNF decomposition legitimately loses dependencies (the paper accepts
  this; the classical counterexamples cannot be avoided), so losses are
  reported as accounting only; asserting emptiness is opt-in for
  callers that construct synthesis-style inputs.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.closure import improved_closure, naive_closure, optimized_closure
from repro.core.nf_check import check_normal_form
from repro.core.normalize import Normalizer
from repro.core.result import NormalizationResult
from repro.core.selection import AutoDecider
from repro.discovery.base import discover_fds
from repro.model.attributes import mask_of_names, names_of
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.verification.differential import attribute_closure, canonical_fds

__all__ = [
    "PropertyViolation",
    "check_closure_properties",
    "check_pipeline_properties",
    "lost_dependencies",
]


@dataclass(slots=True)
class PropertyViolation:
    """One broken metamorphic property."""

    prop: str
    detail: str

    def describe(self) -> str:
        return f"[{self.prop}] {self.detail}"


# ----------------------------------------------------------------------
# Closure layer
# ----------------------------------------------------------------------
def check_closure_properties(fds: FDSet) -> list[PropertyViolation]:
    """Cross-check the three closure algorithms on one FD set.

    ``fds`` must be a complete set of minimal FDs (any discoverer's
    output) — the precondition under which all three algorithms are
    specified to agree.
    """
    violations: list[PropertyViolation] = []
    closed = optimized_closure(fds)
    for label, algorithm in (("naive", naive_closure), ("improved", improved_closure)):
        other = algorithm(fds)
        if canonical_fds(other) != canonical_fds(closed):
            violations.append(
                PropertyViolation(
                    "closure-agreement",
                    f"{label} closure disagrees with optimized closure",
                )
            )
    # Idempotence via the algorithm valid for arbitrary inputs.
    if canonical_fds(improved_closure(closed)) != canonical_fds(closed):
        violations.append(
            PropertyViolation(
                "closure-idempotence", "closing a closed FD set changed it"
            )
        )
    return violations


# ----------------------------------------------------------------------
# Whole-pipeline properties
# ----------------------------------------------------------------------
def lost_dependencies(
    original: RelationInstance,
    result: NormalizationResult,
    audit_algorithm: str = "bruteforce",
) -> list[FD]:
    """FDs of the original not enforceable inside any single final relation.

    Re-discovers the FDs of every final relation, maps them back into
    the original attribute space, and returns each originally discovered
    minimal FD that the union does not imply.  An empty list means the
    decomposition is dependency-preserving.
    """
    union = FDSet(original.arity)
    for part in result.instances.values():
        part_fds = discover_fds(part, audit_algorithm)
        for lhs, rhs in part_fds.items():
            union.add_masks(
                mask_of_names(names_of(lhs, part.columns), original.columns),
                mask_of_names(names_of(rhs, part.columns), original.columns),
            )
    lost: list[FD] = []
    for lhs, rhs in result.discovered_fds[original.name].items():
        implied = attribute_closure(union, lhs)
        if rhs & ~implied:
            lost.append(FD(lhs, rhs & ~implied))
    return lost


def check_pipeline_properties(
    instance: RelationInstance,
    target: str = "bcnf",
    algorithm: str = "hyfd",
    closure_algorithm: str = "optimized",
    audit_algorithm: str = "bruteforce",
    require_dependency_preservation: bool = False,
) -> tuple[list[PropertyViolation], NormalizationResult]:
    """Normalize ``instance`` and check the end-to-end guarantees.

    The audit re-discovers FDs with ``audit_algorithm`` (brute force by
    default) so a bug in the pipeline's discoverer cannot hide itself
    from its own verdict.  Returns the violations plus the result for
    further inspection.
    """
    violations: list[PropertyViolation] = []
    decider = _RecordingDecider()
    result = Normalizer(
        algorithm=algorithm,
        decider=decider,
        target=target,
        closure_algorithm=closure_algorithm,
    ).run(instance)

    # Normal-form compliance of every output relation.  The audit uses
    # the constraint context the decomposition loop actually guaranteed:
    # primary keys selected *afterwards* (step 7, DUCC) are stripped,
    # because Algorithm 4's "never tear the primary key apart" rule is
    # non-monotone in 3NF mode — a late-assigned key removes attributes
    # from violating RHSs, which removes mutual-exclusion vetoes and can
    # resurface decompositions the loop never saw.  (Found by this very
    # harness; see docs/TESTING.md.)
    for part in result.instances.values():
        if part.name in result.stopped_relations:
            continue
        audited = part
        if part.name in decider.step7_relations:
            audited = RelationInstance(
                Relation(
                    part.name,
                    part.columns,
                    foreign_keys=list(part.relation.foreign_keys),
                ),
                part.columns_data,
            )
        report = check_normal_form(
            audited, target=target, algorithm=audit_algorithm
        )
        if not report.conforms:
            rendered = "; ".join(
                fd.to_str(part.columns) for fd in report.violating_fds
            )
            violations.append(
                PropertyViolation(
                    "nf-compliance",
                    f"relation {part.name!r} violates {target}: {rendered}",
                )
            )

    # Lossless join (Lemma 3): rebuild and compare as row multisets.
    try:
        rebuilt = _rows(result.reconstruct(instance.name))
    except ValueError as error:
        violations.append(PropertyViolation("lossless-join", str(error)))
    else:
        expected = _rows(instance)
        if rebuilt != expected:
            spurious = rebuilt - expected
            missing = expected - rebuilt
            violations.append(
                PropertyViolation(
                    "lossless-join",
                    f"reconstruction differs: {sum(missing.values())} rows "
                    f"missing, {sum(spurious.values())} rows spurious",
                )
            )

    # Dependency-preservation accounting.
    lost = lost_dependencies(instance, result, audit_algorithm)
    if lost and require_dependency_preservation:
        rendered = "; ".join(fd.to_str(instance.columns) for fd in lost)
        violations.append(
            PropertyViolation("dependency-preservation", f"lost FDs: {rendered}")
        )
    return violations, result


class _RecordingDecider(AutoDecider):
    """AutoDecider that remembers which relations got a step-7 key."""

    def __init__(self) -> None:
        self.step7_relations: set[str] = set()

    def choose_primary_key(self, instance, ranking):
        self.step7_relations.add(instance.name)
        return super().choose_primary_key(instance, ranking)


def _rows(instance: RelationInstance) -> Counter:
    return Counter(instance.iter_rows())


def summarize(violations: Sequence[PropertyViolation]) -> str:
    return "\n".join(violation.describe() for violation in violations)
