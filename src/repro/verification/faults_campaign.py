"""Fault-injection campaigns over the resource-governed pipeline.

Where the differential/metamorphic campaign (``repro verify``) checks
*what* the pipeline computes, this campaign checks *how it fails*: a
seeded :class:`~repro.runtime.faults.FaultPlan` fires one deterministic
fault at a checkpoint tick — a synthetic deadline/OOM breach or a
simulated ``kill -9`` — and the harness asserts the robustness
contract:

* a breach under ``degrade=True`` never escapes ``Normalizer.run``:
  the run completes and, if the fault actually fired, the degradation
  is visible in the fidelity report (a breached ladder rung or a
  pipeline event),
* a breach never corrupts the result: the returned schema still
  reconstructs losslessly wherever a reconstruction is defined,
* a kill mid-run is survivable: resuming from the journaled checkpoint
  reproduces the *byte-identical* DDL of an uninterrupted reference
  run,
* an un-fired fault leaves the pipeline bit-for-bit unaffected (the
  governed result equals the reference).

Sweeping seeds moves the fault tick across every checkpoint site the
pipeline has.  Console entry point: ``repro verify --faults``.
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.normalize import Normalizer
from repro.datagen.random_tables import random_instance
from repro.io.ddl import schema_to_ddl
from repro.runtime.checkpointing import load_state
from repro.runtime.errors import BudgetExceeded, CheckpointError, ReproError
from repro.runtime.faults import FaultPlan, SimulatedKill

__all__ = ["FaultCampaignReport", "run_fault_campaign"]


@dataclass(slots=True)
class FaultCampaignReport:
    """Outcome of one fault-injection campaign."""

    seeds: list[int] = field(default_factory=list)
    fired: int = 0
    kills: int = 0
    resumes: int = 0
    degraded_results: int = 0
    worker_faults: int = 0
    respawns: int = 0
    quarantined: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_str(self) -> str:
        lines = [
            f"fault campaign: {len(self.seeds)} seeds, "
            f"{self.fired} faults fired ({self.kills} kills, "
            f"{self.resumes} successful resumes), "
            f"{self.degraded_results} degraded results"
        ]
        if self.worker_faults or self.respawns or self.quarantined:
            lines[0] += (
                f", {self.worker_faults} worker faults "
                f"({self.respawns} respawns, "
                f"{self.quarantined} quarantined)"
            )
        lines[0] += ": " + (
            "all passed" if self.ok else f"{len(self.failures)} FAILURES"
        )
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


def _make_instance(seed: int, num_rows: int, max_columns: int):
    import random

    rng = random.Random(seed * 0x9E3779B1 + 0xFA17)
    columns = rng.randint(4, max(4, max_columns))
    rows = rng.randint(12, max(12, num_rows))
    domains = [rng.randint(2, 5) for _ in range(columns)]
    return random_instance(seed, columns, rows, domain_size=domains)


def _normalizer(**kwargs) -> Normalizer:
    return Normalizer(algorithm="hyfd", **kwargs)


def _ddl(result) -> str:
    return schema_to_ddl(result.schema, result.instances)


def run_fault_campaign(
    seeds: int | Iterable[int],
    num_rows: int = 40,
    max_columns: int = 8,
    progress: Callable[[str], None] | None = None,
    workers: int | None = None,
) -> FaultCampaignReport:
    """Sweep fault seeds over the governed pipeline; see module docstring.

    With ``workers`` resolved above 1 (explicitly or via
    ``REPRO_WORKERS``), every odd seed becomes a *worker-fault* run:
    a ``worker_kill``/``worker_oom``/``worker_hang`` plan fires inside
    a pool worker mid-shard and the harness asserts the self-healing
    contract — the run completes, the recovery is visible in the pool
    counters, and the DDL is byte-identical to the serial reference.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    from repro.parallel import resolve_workers

    resolved = resolve_workers(workers)
    report = FaultCampaignReport()
    for seed in seeds:
        report.seeds.append(seed)
        if resolved > 1 and seed % 2 == 1:
            if progress is not None:
                progress(f"worker-fault seed {seed}")
            _run_one_worker_fault(seed, report, num_rows, max_columns, resolved)
        else:
            if progress is not None:
                progress(f"fault seed {seed}")
            _run_one(seed, report, num_rows, max_columns)
    return report


def _run_one(
    seed: int,
    report: FaultCampaignReport,
    num_rows: int,
    max_columns: int,
) -> None:
    instance = _make_instance(seed, num_rows, max_columns)
    reference_ddl = _ddl(_normalizer().run(instance))

    # Cycle the mode deterministically so every third seed is a kill,
    # and keep ticks low — small campaign tables only produce a few
    # hundred — so most seeds actually exercise a recovery path.
    from repro.runtime.faults import PROCESS_FAULT_MODES

    plan = FaultPlan.from_seed(
        seed,
        mode=PROCESS_FAULT_MODES[seed % len(PROCESS_FAULT_MODES)],
        max_tick=256,
    )

    handle, ckpt = tempfile.mkstemp(prefix="repro-fault-", suffix=".json")
    os.close(handle)
    os.unlink(ckpt)  # the pipeline creates it atomically
    try:
        governed = _normalizer(fault_plan=plan, checkpoint_path=ckpt)
        try:
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = governed.run(instance)
        except SimulatedKill:
            report.fired += 1
            report.kills += 1
            _check_resume(seed, report, instance, ckpt, reference_ddl)
            return
        except BudgetExceeded as exc:
            report.failures.append(
                f"seed {seed}: BudgetExceeded escaped run() despite "
                f"degrade=True ({exc})"
            )
            return
        except ReproError as exc:
            report.failures.append(
                f"seed {seed}: unexpected taxonomy error from run(): {exc!r}"
            )
            return
        except Exception as exc:  # noqa: BLE001 - the contract under test
            report.failures.append(
                f"seed {seed}: raw {type(exc).__name__} escaped run(): {exc!r}"
            )
            return

        if result.fidelity is None:
            report.failures.append(
                f"seed {seed}: governed run returned no fidelity report"
            )
            return
        if plan.fired:
            report.fired += 1
            breach_visible = bool(result.fidelity.events) or any(
                attempt.outcome == "breach"
                for fidelity in result.fidelity.relations.values()
                for attempt in fidelity.attempts
            )
            if not breach_visible:
                report.failures.append(
                    f"seed {seed}: fault {plan.mode!r} fired at stage "
                    f"{plan.fired_at_stage!r} but the fidelity report "
                    "shows no breach"
                )
            if result.fidelity.degraded:
                report.degraded_results += 1
        else:
            # The fault never fired: governance must be a no-op.
            if _ddl(result) != reference_ddl:
                report.failures.append(
                    f"seed {seed}: governed run (no fault fired) differs "
                    "from the ungoverned reference"
                )
    finally:
        for leftover in (ckpt, ckpt + ".tmp"):
            try:
                os.unlink(leftover)
            except OSError:
                pass


def _check_resume(
    seed: int,
    report: FaultCampaignReport,
    instance,
    ckpt: str,
    reference_ddl: str,
) -> None:
    """After a simulated kill: resume from the journal, compare DDL."""
    if not os.path.exists(ckpt):
        # Killed before the first flush: nothing to resume, rerun fresh.
        resumed = _normalizer().run(instance)
    else:
        try:
            state = load_state(ckpt)
        except CheckpointError as exc:
            report.failures.append(
                f"seed {seed}: checkpoint unreadable after kill: {exc}"
            )
            return
        try:
            resumed = _normalizer(checkpoint_path=ckpt).run(
                instance, resume_state=state
            )
        except ReproError as exc:
            report.failures.append(f"seed {seed}: resume failed: {exc!r}")
            return
    report.resumes += 1
    if _ddl(resumed) != reference_ddl:
        report.failures.append(
            f"seed {seed}: resumed run's DDL differs from the "
            "uninterrupted reference run"
        )


def _run_one_worker_fault(
    seed: int,
    report: FaultCampaignReport,
    num_rows: int,
    max_columns: int,
    workers: int,
) -> None:
    """One worker-fault chaos run: kill/OOM/hang a pool worker mid-shard.

    The self-healing contract under test: the supervisor respawns the
    dead (or killed-for-hanging) worker and retries the lost shard, the
    run completes without any error escaping, the recovery is visible
    in the pool counters, and — by the deterministic shard/merge
    contract — the DDL is byte-identical to the serial reference.
    """
    import random

    from repro.parallel import pool as pool_mod
    from repro.parallel import supervisor as supervisor_mod
    from repro.parallel.pool import pool_stats, shutdown_pool
    from repro.runtime.faults import WORKER_FAULT_MODES

    instance = _make_instance(seed, num_rows, max_columns)
    reference_ddl = _ddl(_normalizer().run(instance))

    mode = WORKER_FAULT_MODES[(seed // 2) % len(WORKER_FAULT_MODES)]
    # Worker governors count ticks per task, so keep at_tick inside the
    # handful of checkpoints a small campaign shard actually makes.
    rng = random.Random(seed * 0x51ED270 ^ 0xC8A05)
    plan = FaultPlan(mode=mode, at_tick=rng.randint(1, 12))

    # Force the pool path on these small campaign tables, and keep hang
    # detection fast enough for a test-sized timeout.
    saved_threshold = pool_mod.SERIAL_THRESHOLD
    saved_hang = supervisor_mod.HANG_TIMEOUT
    pool_mod.SERIAL_THRESHOLD = 0
    supervisor_mod.HANG_TIMEOUT = 0.75
    shutdown_pool()  # a fresh pool re-arms the one-shot fault flag
    try:
        import warnings

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = _normalizer(fault_plan=plan, workers=workers).run(
                    instance
                )
        except ReproError as exc:
            report.failures.append(
                f"seed {seed}: worker fault {mode!r} escaped the "
                f"self-healing pool: {exc!r}"
            )
            return
        except Exception as exc:  # noqa: BLE001 - the contract under test
            report.failures.append(
                f"seed {seed}: raw {type(exc).__name__} escaped run() "
                f"under worker fault {mode!r}: {exc!r}"
            )
            return

        stats = pool_stats()
        if plan.fired:
            report.fired += 1
            report.worker_faults += 1
            if stats is None:
                report.failures.append(
                    f"seed {seed}: worker fault {mode!r} fired but no "
                    "pool exists to account for the recovery"
                )
                return
            report.respawns += stats.respawns
            report.quarantined += stats.quarantined
            recovered = (
                stats.respawns > 0
                or stats.quarantined > 0
                or stats.pool_disabled
            )
            if not recovered:
                report.failures.append(
                    f"seed {seed}: worker fault {mode!r} fired at tick "
                    f"{plan.at_tick} but the pool counters show no "
                    "respawn, quarantine, or fallback"
                )
        if _ddl(result) != reference_ddl:
            report.failures.append(
                f"seed {seed}: DDL after worker fault {mode!r} differs "
                "from the serial reference"
            )
    finally:
        shutdown_pool()
        pool_mod.SERIAL_THRESHOLD = saved_threshold
        supervisor_mod.HANG_TIMEOUT = saved_hang
