"""Differential execution of FD and UCC discoverers.

All complete FD discoverers must produce the *identical* set of minimal
non-trivial FDs on any instance — that is the contract the optimized
closure (Algorithm 3, Lemma 1) builds on.  The differential runner makes
the contract executable: run every algorithm on the same instance,
canonicalize the outputs, and report each pairwise disagreement against
a baseline (the brute-force definitional oracle by default).  The same
treatment applies to UCC discovery (NaiveUCC / DUCC / HyUCC), which the
primary-key selection step depends on.

Alongside the cross-algorithm diff, :func:`semantic_fd_errors` checks a
single discoverer's output against the *definition* of a minimal FD —
soundness (every reported FD holds, verified by grouping rows),
minimality (no immediate LHS generalization holds), and planted-cover
containment (every dependency known to hold is implied).  This catches
the pathological case of all discoverers agreeing on a wrong answer.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.discovery.base import FDAlgorithm, resolve_fd_algorithm
from repro.discovery.ucc import resolve_ucc_algorithm
from repro.model.attributes import iter_bits, names_of
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.structures.partitions import column_value_ids

__all__ = [
    "DEFAULT_FD_ALGORITHMS",
    "DEFAULT_UCC_ALGORITHMS",
    "Disagreement",
    "attribute_closure",
    "canonical_fds",
    "fd_holds_in",
    "run_fd_differential",
    "run_ucc_differential",
    "semantic_fd_errors",
]

#: baseline first: the brute-force oracle defines the expected output.
DEFAULT_FD_ALGORITHMS: tuple[str, ...] = ("bruteforce", "tane", "dfd", "hyfd")
DEFAULT_UCC_ALGORITHMS: tuple[str, ...] = ("naive", "ducc", "hyucc")


@dataclass(slots=True)
class Disagreement:
    """One algorithm disagreeing with the baseline on one instance."""

    kind: str  # "fd" | "ucc"
    baseline: str
    algorithm: str
    null_equals_null: bool
    #: canonical items present in the baseline but missing here
    missing: tuple = ()
    #: canonical items reported here but absent from the baseline
    extra: tuple = ()

    def describe(self, columns: Sequence[str]) -> str:
        def render(item) -> str:
            if self.kind == "fd":
                lhs, attr = item
                lhs_names = ",".join(names_of(lhs, columns)) or "{}"
                return f"{lhs_names} -> {columns[attr]}"
            return "{" + ",".join(names_of(item, columns)) + "}"

        parts = [
            f"[{self.kind}] {self.algorithm} vs {self.baseline} "
            f"(null_equals_null={self.null_equals_null})"
        ]
        for label, items in (("missing", self.missing), ("extra", self.extra)):
            if items:
                parts.append(
                    f"  {label}: " + "; ".join(render(item) for item in items)
                )
        return "\n".join(parts)


def canonical_fds(fds: FDSet) -> frozenset[tuple[int, int]]:
    """Single-RHS canonical form: ``{(lhs_mask, rhs_attr_index)}``."""
    out = set()
    for lhs, rhs in fds.items():
        for attr in iter_bits(rhs):
            out.add((lhs, attr))
    return frozenset(out)


def _resolve_fd(
    algorithms: Mapping[str, FDAlgorithm | str] | Sequence[str] | None,
    null_equals_null: bool,
    max_lhs_size: int | None,
) -> list[tuple[str, FDAlgorithm]]:
    """Normalize the ``algorithms`` argument to ``(name, instance)`` pairs.

    Names are resolved with the given semantics; pre-built
    :class:`FDAlgorithm` objects (e.g. deliberately corrupted mutants in
    the harness's own smoke tests) are used as handed in.
    """
    if algorithms is None:
        algorithms = DEFAULT_FD_ALGORITHMS
    if not isinstance(algorithms, Mapping):
        algorithms = {name: name for name in algorithms}
    resolved: list[tuple[str, FDAlgorithm]] = []
    for label, algo in algorithms.items():
        if isinstance(algo, str):
            algo = resolve_fd_algorithm(
                algo,
                null_equals_null=null_equals_null,
                max_lhs_size=max_lhs_size,
            )
        resolved.append((label, algo))
    if len(resolved) < 2:
        raise ValueError("differential execution needs at least two algorithms")
    return resolved


def run_fd_differential(
    instance: RelationInstance,
    algorithms: Mapping[str, FDAlgorithm | str] | Sequence[str] | None = None,
    null_equals_null: bool = True,
    max_lhs_size: int | None = None,
) -> list[Disagreement]:
    """Run all FD discoverers on ``instance`` and diff against the first.

    Returns one :class:`Disagreement` per algorithm that deviates from
    the baseline (the first entry — brute force by default); an empty
    list means unanimous agreement.
    """
    resolved = _resolve_fd(algorithms, null_equals_null, max_lhs_size)
    baseline_name, baseline_algo = resolved[0]
    expected = canonical_fds(baseline_algo.discover(instance))
    disagreements: list[Disagreement] = []
    for label, algo in resolved[1:]:
        got = canonical_fds(algo.discover(instance))
        if got != expected:
            disagreements.append(
                Disagreement(
                    kind="fd",
                    baseline=baseline_name,
                    algorithm=label,
                    null_equals_null=null_equals_null,
                    missing=tuple(sorted(expected - got)),
                    extra=tuple(sorted(got - expected)),
                )
            )
    return disagreements


def run_ucc_differential(
    instance: RelationInstance,
    algorithms: Mapping[str, object] | Sequence[str] | None = None,
    null_equals_null: bool = True,
) -> list[Disagreement]:
    """Diff the minimal-UCC discoverers (keys feed primary-key selection)."""
    if algorithms is None:
        algorithms = DEFAULT_UCC_ALGORITHMS
    if not isinstance(algorithms, Mapping):
        algorithms = {name: name for name in algorithms}
    resolved = []
    for label, algo in algorithms.items():
        if isinstance(algo, str):
            algo = resolve_ucc_algorithm(algo, null_equals_null=null_equals_null)
        resolved.append((label, algo))
    if len(resolved) < 2:
        raise ValueError("differential execution needs at least two algorithms")
    baseline_name, baseline_algo = resolved[0]
    expected = frozenset(baseline_algo.discover(instance))
    disagreements: list[Disagreement] = []
    for label, algo in resolved[1:]:
        got = frozenset(algo.discover(instance))
        if got != expected:
            disagreements.append(
                Disagreement(
                    kind="ucc",
                    baseline=baseline_name,
                    algorithm=label,
                    null_equals_null=null_equals_null,
                    missing=tuple(sorted(expected - got)),
                    extra=tuple(sorted(got - expected)),
                )
            )
    return disagreements


# ----------------------------------------------------------------------
# Definition-level semantic checks (independent of every discoverer)
# ----------------------------------------------------------------------
def fd_holds_in(
    instance: RelationInstance,
    lhs: int,
    rhs: int,
    null_equals_null: bool = True,
) -> bool:
    """Does ``lhs → rhs`` hold, straight from the FD definition?

    Groups rows by their LHS value combination and demands a single RHS
    value combination per group; no partitions, no lattice — this is
    the ground truth every optimization must agree with.
    """
    probes = [
        column_value_ids(instance.columns_data[i], null_equals_null)
        for i in range(instance.arity)
    ]
    lhs_bits = list(iter_bits(lhs))
    rhs_bits = list(iter_bits(rhs))
    seen: dict[tuple, tuple] = {}
    for row in range(instance.num_rows):
        key = tuple(probes[i][row] for i in lhs_bits)
        value = tuple(probes[i][row] for i in rhs_bits)
        if seen.setdefault(key, value) != value:
            return False
    return True


def attribute_closure(fds: FDSet, mask: int) -> int:
    """Attribute closure of ``mask`` under ``fds`` (fixpoint iteration)."""
    closure = mask
    changed = True
    while changed:
        changed = False
        for lhs, rhs in fds.items():
            if lhs & ~closure == 0 and rhs & ~closure:
                closure |= rhs
                changed = True
    return closure


@dataclass(slots=True)
class SemanticErrors:
    """Definition-level violations of one discoverer's output."""

    unsound: list[FD] = field(default_factory=list)  # reported, does not hold
    non_minimal: list[FD] = field(default_factory=list)
    #: planted FDs not implied by the reported set
    uncovered: list[FD] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.unsound or self.non_minimal or self.uncovered)

    def describe(self, columns: Sequence[str]) -> str:
        lines = []
        for label, fds in (
            ("unsound", self.unsound),
            ("non-minimal", self.non_minimal),
            ("uncovered planted", self.uncovered),
        ):
            for fd in fds:
                lines.append(f"  {label}: {fd.to_str(columns)}")
        return "\n".join(lines)


def semantic_fd_errors(
    instance: RelationInstance,
    fds: FDSet,
    null_equals_null: bool = True,
    planted_cover: FDSet | None = None,
) -> SemanticErrors:
    """Check a discovered FD set against the definition of minimal FDs.

    * soundness — every reported FD holds in the data,
    * minimality — removing any single LHS attribute breaks the FD,
    * coverage — every FD of ``planted_cover`` (dependencies known to
      hold by construction) is implied by the reported set.
    """
    errors = SemanticErrors()
    for lhs, rhs in fds.items():
        for attr in iter_bits(rhs):
            bit = 1 << attr
            if not fd_holds_in(instance, lhs, bit, null_equals_null):
                errors.unsound.append(FD(lhs, bit))
                continue
            for gone in iter_bits(lhs):
                if fd_holds_in(instance, lhs & ~(1 << gone), bit, null_equals_null):
                    errors.non_minimal.append(FD(lhs, bit))
                    break
    if planted_cover is not None:
        for lhs, rhs in planted_cover.items():
            implied = attribute_closure(fds, lhs)
            if rhs & ~implied:
                errors.uncovered.append(FD(lhs, rhs & ~implied))
    return errors
