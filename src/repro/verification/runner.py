"""Seeded verification campaigns: generate, check, shrink, report.

One *seed* drives one adversarial round: a pure-random table (per-column
domains, Zipf skew, NULL patterns) plus a planted-cover table with known
ground truth, pushed through every check the subsystem offers —

* differential FD discovery under both NULL semantics,
* differential UCC discovery,
* definition-level soundness/minimality of the oracle's own output and
  containment of the planted cover,
* closure metamorphics (agreement + idempotence),
* whole-pipeline metamorphics for BCNF and 3NF (normal-form compliance,
  lossless join, dependency-preservation accounting).

Every failure is minimized with the shrinker and rendered as a
ready-to-paste pytest module, so a red fuzz run in CI hands the next
developer a finished regression test instead of a seed number.

Console entry point: ``repro verify --seeds N`` (also reachable as
``python -m repro verify``).
"""

from __future__ import annotations

import argparse
import random
import sys
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.datagen.random_tables import random_instance
from repro.discovery.base import discover_fds
from repro.discovery.ucc import discover_uccs
from repro.model.attributes import mask_of_names, names_of
from repro.model.instance import RelationInstance
from repro.verification.differential import (
    DEFAULT_FD_ALGORITHMS,
    DEFAULT_UCC_ALGORITHMS,
    attribute_closure,
    fd_holds_in,
    run_fd_differential,
    run_ucc_differential,
    semantic_fd_errors,
)
from repro.verification.metamorphic import (
    check_closure_properties,
    check_pipeline_properties,
    lost_dependencies,
)
from repro.verification.planted import plant_instance
from repro.verification.shrinker import shrink_instance, to_pytest_repro

__all__ = [
    "VerificationFailure",
    "VerificationReport",
    "build_verify_parser",
    "main_verify",
    "verify_seeds",
]

_DIFFERENTIAL_IMPORT = (
    "from repro.verification.differential import run_fd_differential"
)
_UCC_IMPORT = "from repro.verification.differential import run_ucc_differential"


@dataclass(slots=True)
class VerificationFailure:
    """One failed check, with its shrunk reproduction."""

    seed: int
    check: str
    detail: str
    instance: RelationInstance
    shrunk: RelationInstance | None = None
    repro: str | None = None

    def describe(self) -> str:
        lines = [
            f"seed {self.seed} / {self.check}: {self.detail}",
            f"  original instance: {self.instance.arity} cols x "
            f"{self.instance.num_rows} rows",
        ]
        if self.shrunk is not None:
            lines.append(
                f"  shrunk to: {self.shrunk.arity} cols x "
                f"{self.shrunk.num_rows} rows"
            )
        return "\n".join(lines)


@dataclass(slots=True)
class VerificationReport:
    """Outcome of one verification campaign."""

    seeds: list[int] = field(default_factory=list)
    checks_run: int = 0
    failures: list[VerificationFailure] = field(default_factory=list)
    #: FDs the BCNF/3NF decompositions could not keep enforceable in a
    #: single relation (informational; BCNF legitimately loses some)
    dependency_losses: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_str(self) -> str:
        lines = [
            f"verified {len(self.seeds)} seeds, {self.checks_run} checks: "
            + ("all passed" if self.ok else f"{len(self.failures)} FAILURES"),
            f"dependency-preservation losses observed: {self.dependency_losses}"
            " (accounting only)",
        ]
        for failure in self.failures:
            lines.append("")
            lines.append(failure.describe())
            if failure.repro:
                lines.append("  pytest reproduction:")
                lines.extend(
                    "    " + line for line in failure.repro.splitlines()
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def verify_seeds(
    seeds: int | Iterable[int],
    num_rows: int = 26,
    max_columns: int = 6,
    shrink: bool = True,
    fd_algorithms: Mapping[str, object] | Sequence[str] | None = None,
    ucc_algorithms: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int | None = None,
) -> VerificationReport:
    """Run the full check battery over a seed range or iterable.

    ``fd_algorithms`` follows the differential runner's convention
    (names, or a mapping including pre-built algorithm objects — the
    mutation smoke tests inject deliberately broken discoverers this
    way).  Failures are shrunk unless ``shrink=False``.

    ``workers > 1`` shards the seed list over the process pool, one
    contiguous chunk per worker; every seed's round is independent and
    chunk reports are merged in seed order, so the campaign outcome is
    identical to a serial run.  Campaigns with injected algorithm
    *objects* (not picklable by contract) always run serially.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    fd_algorithms = (
        tuple(DEFAULT_FD_ALGORITHMS) if fd_algorithms is None else fd_algorithms
    )
    ucc_algorithms = (
        tuple(DEFAULT_UCC_ALGORITHMS) if ucc_algorithms is None else ucc_algorithms
    )
    seed_list = list(seeds)
    resolved = _resolve_campaign_workers(workers, seed_list, fd_algorithms)
    if resolved > 1:
        return _verify_seeds_parallel(
            seed_list,
            num_rows,
            max_columns,
            shrink,
            fd_algorithms,
            ucc_algorithms,
            progress,
            resolved,
        )
    report = VerificationReport()
    for seed in seed_list:
        report.seeds.append(seed)
        if progress is not None:
            progress(f"seed {seed}")
        _verify_one_seed(
            seed, report, num_rows, max_columns, shrink, fd_algorithms, ucc_algorithms
        )
    return report


def _resolve_campaign_workers(workers, seed_list, fd_algorithms) -> int:
    from repro.parallel import resolve_workers

    resolved = resolve_workers(workers)
    if resolved <= 1 or len(seed_list) < 2:
        return 1
    named = (
        fd_algorithms.values()
        if isinstance(fd_algorithms, Mapping)
        else fd_algorithms
    )
    if not all(isinstance(algorithm, str) for algorithm in named):
        return 1
    return resolved


def _verify_seeds_parallel(
    seed_list: list[int],
    num_rows: int,
    max_columns: int,
    shrink: bool,
    fd_algorithms,
    ucc_algorithms,
    progress,
    workers: int,
) -> VerificationReport:
    from repro.parallel import RelationRun

    names = (
        dict(fd_algorithms)
        if isinstance(fd_algorithms, Mapping)
        else tuple(fd_algorithms)
    )
    run = RelationRun(workers)
    try:
        payloads = [
            {
                "seeds": seed_list[start:stop],
                "num_rows": num_rows,
                "max_columns": max_columns,
                "shrink": shrink,
                "fd_algorithms": names,
                "ucc_algorithms": tuple(ucc_algorithms),
            }
            for start, stop in run.ranges(len(seed_list))
        ]
        report = VerificationReport()
        for index, chunk in enumerate(
            run.map(
                "verify_chunk",
                payloads,
                stage="verify-campaign",
                items=len(seed_list),
            )
        ):
            chunk_seeds, checks_run, failures, losses = chunk
            report.seeds.extend(chunk_seeds)
            report.checks_run += checks_run
            report.failures.extend(failures)
            report.dependency_losses += losses
            if progress is not None:
                progress(
                    f"chunk {index + 1}/{len(payloads)} "
                    f"({len(report.seeds)}/{len(seed_list)} seeds)"
                )
    finally:
        run.close()
    return report


def _verify_one_seed(
    seed: int,
    report: VerificationReport,
    num_rows: int,
    max_columns: int,
    shrink: bool,
    fd_algorithms,
    ucc_algorithms,
) -> None:
    rng = random.Random(seed * 0x9E3779B1 + 7)
    columns = rng.randint(3, max(3, max_columns))
    rows = rng.randint(6, max(6, num_rows))
    domains = [rng.randint(2, 4) for _ in range(columns)]
    skews = [rng.choice([0.0, 0.0, 1.0, 2.0]) for _ in range(columns)]
    null_rate = rng.choice([0.0, 0.0, 0.25])
    rand = random_instance(
        seed, columns, rows, domain_size=domains, null_rate=null_rate, skew=skews
    )
    planted = plant_instance(
        seed,
        num_columns=columns,
        num_rows=rows,
        null_rate=null_rate / 2,
    )

    named_algorithms = (
        fd_algorithms
        if isinstance(fd_algorithms, Mapping)
        else {name: name for name in fd_algorithms}
    )
    only_names = all(isinstance(a, str) for a in named_algorithms.values())

    for label, instance in (("random", rand), ("planted", planted.instance)):
        # 1. Differential FD discovery, both NULL semantics.
        for nen in (True, False):
            report.checks_run += 1
            disagreements = run_fd_differential(
                instance, named_algorithms, null_equals_null=nen
            )
            if disagreements:
                detail = "\n".join(
                    d.describe(instance.columns) for d in disagreements
                )
                expr = (
                    f"run_fd_differential(instance, null_equals_null={nen})"
                    if only_names
                    else f"run_fd_differential(instance, ALGORITHMS, "
                    f"null_equals_null={nen})"
                )
                predicate = lambda inst, nen=nen: bool(  # noqa: E731
                    run_fd_differential(
                        inst, named_algorithms, null_equals_null=nen
                    )
                )
                _record(
                    report,
                    seed,
                    f"fd-differential[{label}, nen={nen}]",
                    detail,
                    instance,
                    predicate,
                    expr,
                    (_DIFFERENTIAL_IMPORT,),
                    shrink,
                )

        # 2. Differential UCC discovery.
        report.checks_run += 1
        ucc_disagreements = run_ucc_differential(instance, ucc_algorithms)
        if ucc_disagreements:
            detail = "\n".join(
                d.describe(instance.columns) for d in ucc_disagreements
            )
            predicate = lambda inst: bool(  # noqa: E731
                run_ucc_differential(inst, ucc_algorithms)
            )
            _record(
                report,
                seed,
                f"ucc-differential[{label}]",
                detail,
                instance,
                predicate,
                "run_ucc_differential(instance)",
                (_UCC_IMPORT,),
                shrink,
            )

        # 3. Closure metamorphics on the discovered (minimal) FD set.
        report.checks_run += 1
        fds = discover_fds(instance, "bruteforce")
        closure_violations = check_closure_properties(fds)
        if closure_violations:
            detail = "; ".join(v.describe() for v in closure_violations)
            predicate = lambda inst: bool(  # noqa: E731
                check_closure_properties(discover_fds(inst, "bruteforce"))
            )
            _record(
                report,
                seed,
                f"closure[{label}]",
                detail,
                instance,
                predicate,
                "check_closure_properties(discover_fds(instance, 'bruteforce'))",
                (
                    "from repro.discovery.base import discover_fds",
                    "from repro.verification.metamorphic import"
                    " check_closure_properties",
                ),
                shrink,
            )

        # 4. Whole-pipeline metamorphics, BCNF and 3NF.
        for target in ("bcnf", "3nf"):
            report.checks_run += 1
            violations, result = check_pipeline_properties(
                instance, target=target
            )
            report.dependency_losses += len(
                lost_dependencies(instance, result)
            )
            if violations:
                detail = "; ".join(v.describe() for v in violations)
                predicate = lambda inst, target=target: bool(  # noqa: E731
                    check_pipeline_properties(inst, target=target)[0]
                )
                _record(
                    report,
                    seed,
                    f"pipeline[{label}, {target}]",
                    detail,
                    instance,
                    predicate,
                    f"check_pipeline_properties(instance, target={target!r})[0]",
                    (
                        "from repro.verification.metamorphic import"
                        " check_pipeline_properties",
                    ),
                    shrink,
                )

    # 5. Ground-truth checks only the planted table can provide.
    report.checks_run += 1
    oracle_fds = discover_fds(planted.instance, "bruteforce")
    errors = semantic_fd_errors(
        planted.instance, oracle_fds, planted_cover=planted.cover
    )
    if errors:
        predicate = lambda inst: bool(  # noqa: E731
            semantic_fd_errors(inst, discover_fds(inst, "bruteforce"))
        )
        _record(
            report,
            seed,
            "planted-cover",
            errors.describe(planted.instance.columns),
            planted.instance,
            predicate,
            "semantic_fd_errors(instance, discover_fds(instance, 'bruteforce'))",
            (
                "from repro.discovery.base import discover_fds",
                "from repro.verification.differential import semantic_fd_errors",
            ),
            shrink,
        )

    if planted.key_mask:
        report.checks_run += 1
        uccs = discover_uccs(planted.instance, "naive")
        if not any(ucc & ~planted.key_mask == 0 for ucc in uccs):
            key_names = names_of(planted.key_mask, planted.instance.columns)
            _record(
                report,
                seed,
                "planted-key",
                f"no minimal UCC within planted key {{{','.join(key_names)}}}",
                planted.instance,
                predicate=None,
                failure_expr=None,
                imports=(),
                shrink=False,
            )


def _record(
    report: VerificationReport,
    seed: int,
    check: str,
    detail: str,
    instance: RelationInstance,
    predicate,
    failure_expr,
    imports,
    shrink: bool,
) -> None:
    failure = VerificationFailure(
        seed=seed, check=check, detail=detail, instance=instance
    )
    if shrink and predicate is not None:
        try:
            failure.shrunk = shrink_instance(instance, predicate)
        except ValueError:
            failure.shrunk = None  # flaky predicate; keep the original
        if failure.shrunk is not None and failure_expr is not None:
            safe = "".join(c if c.isalnum() else "_" for c in check)
            failure.repro = to_pytest_repro(
                failure.shrunk,
                failure_expr,
                imports=imports,
                test_name=f"test_repro_seed{seed}_{safe}".rstrip("_"),
                comment=f"shrunk from seed {seed}: {check}",
            )
    report.failures.append(failure)


# ----------------------------------------------------------------------
# Semantic re-checks usable from shrunk repros
# ----------------------------------------------------------------------
def planted_fd_still_uncovered(
    instance: RelationInstance, lhs_names: Sequence[str], rhs_names: Sequence[str]
) -> bool:
    """True while a holding FD (by names) is missing from discovery.

    Helper for hand-edited repros of `planted-cover` failures: checks
    that ``lhs -> rhs`` still *holds* in the (possibly row-reduced)
    instance yet is not implied by the brute-force output.
    """
    lhs = mask_of_names(lhs_names, instance.columns)
    rhs = mask_of_names(rhs_names, instance.columns)
    if not fd_holds_in(instance, lhs, rhs):
        return False
    closure = attribute_closure(discover_fds(instance, "bruteforce"), lhs)
    return bool(rhs & ~closure)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Differential & metamorphic verification of the whole "
        "Normalize pipeline over generated adversarial instances.",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=25,
        help="number of seeds to verify (seed values start at --start)",
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed value (default: 0)"
    )
    parser.add_argument(
        "--rows", type=int, default=26, help="max rows per generated table"
    )
    parser.add_argument(
        "--columns", type=int, default=6, help="max columns per generated table"
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip failure minimization (faster triage runs)",
    )
    parser.add_argument(
        "--repro-out",
        metavar="FILE",
        help="write shrunk pytest reproductions of all failures to FILE",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-seed progress"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the seed campaign over N worker processes "
        "(default: $REPRO_WORKERS or 1); with --faults, N > 1 also runs "
        "worker-level chaos seeds (worker_kill/worker_oom/worker_hang) "
        "against the self-healing pool; --incremental stays serial",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the fault-injection campaign instead: deterministic "
        "timeout/OOM/kill faults at checkpoint ticks, asserting graceful "
        "degradation and checkpoint/resume (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="run the incremental-differential campaign instead: seeded "
        "batch streams (insert-only, delete-only, mixed, NULL-carrying, "
        "key-flipping) against the incremental engine, asserting the "
        "maintained covers, keys, and DDL stay byte-identical to "
        "from-scratch runs (see docs/INCREMENTAL.md)",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=10,
        help="batches per seed for --incremental (default: 10)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("python", "numpy", "auto"),
        help="kernel backend for the partition/agree-set hot paths "
        "(default: $REPRO_KERNEL or auto); the campaign's oracles and "
        "subjects all run under the selected backend",
    )
    parser.add_argument(
        "--fdtree",
        default=None,
        choices=("level", "legacy", "auto"),
        help="FD-tree lattice engine (default: $REPRO_FDTREE or level); "
        "the campaign's oracles and subjects all run under the selected "
        "engine",
    )
    return parser


def main_verify(argv: Sequence[str] | None = None) -> int:
    args = build_verify_parser().parse_args(argv)
    if args.kernel is not None:
        from repro import kernels
        from repro.runtime.errors import InputError

        try:
            kernels.set_backend(args.kernel)
            kernels.backend_name()  # resolve eagerly; fail at the boundary
        except InputError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.fdtree is not None:
        from repro.runtime.errors import InputError
        from repro.structures import fdtree

        try:
            fdtree.set_engine(args.fdtree)
        except InputError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    progress = None
    if not args.quiet:
        progress = lambda msg: print(f"  {msg}", end="\r", flush=True)  # noqa: E731
    if args.incremental:
        from repro.verification.incremental import verify_incremental_seeds

        incremental_report = verify_incremental_seeds(
            range(args.start, args.start + args.seeds),
            num_batches=args.batches,
            progress=progress,
        )
        if not args.quiet:
            print()
        print(incremental_report.to_str())
        return 0 if incremental_report.ok else 1
    if args.faults:
        from repro.verification.faults_campaign import run_fault_campaign

        fault_report = run_fault_campaign(
            range(args.start, args.start + args.seeds),
            num_rows=args.rows,
            max_columns=args.columns,
            progress=progress,
            workers=args.workers,
        )
        if not args.quiet:
            print()
        print(fault_report.to_str())
        return 0 if fault_report.ok else 1
    report = verify_seeds(
        range(args.start, args.start + args.seeds),
        num_rows=args.rows,
        max_columns=args.columns,
        shrink=not args.no_shrink,
        progress=progress,
        workers=args.workers,
    )
    if not args.quiet:
        print()
    print(report.to_str())
    if args.repro_out and not report.ok:
        blocks = [
            failure.repro for failure in report.failures if failure.repro
        ]
        if blocks:
            with open(args.repro_out, "w", encoding="utf-8") as handle:
                handle.write("\n\n".join(blocks))
            print(f"shrunk reproductions written to {args.repro_out}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_verify())
