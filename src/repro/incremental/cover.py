"""Incremental minimal-cover maintenance for FDs and keys (EAIFD-style).

The maintained state per relation is exactly HyFD's / HyUCC's:

* an :class:`~repro.structures.fdtree.FDTree` positive cover of the
  minimal FDs, and
* a :class:`~repro.structures.settrie.SetTrie` antichain of the
  minimal unique column combinations (keys),

plus, once deletes appear, a **negative-cover multiset**: a counter
mapping each record-pair agree set to the number of live pairs
producing it.

Inserts (the EAIFD insight).  A record pair can only *refute* FDs;
FDs valid on the old data stay valid unless a pair involving a new
tuple breaks them.  Computing the agree sets of every pair ``(new,
any)`` and pushing them through HyFD's induction
(:func:`~repro.discovery.hyfd.induction.apply_agree_set` semantics)
therefore turns the exact old cover into the exact new cover — the old
pairs already shaped the old cover, and any specialization of an FD
that held on the old data still holds on the old rows.  The engine
still *validates* every specialization the batch introduced ("dirty"
candidates) against the data via the single-pass
:meth:`~repro.structures.partitions.StrippedPartition.find_violations`
path — a cheap, targeted check (only candidates the batch touched)
that turns a would-be silent divergence into a self-healing
specialization round.  Keys are maintained identically with HyUCC's
induction step.

Deletes.  Removing rows can only *generalize* covers, and the new
minimal FDs are not reachable from the old ones by local search (a
refuted ``{B,C} → A`` says nothing about ``{D} → A`` becoming valid).
What *is* exactly maintainable is the negative cover: deleting a row
removes precisely the pairs involving it.  The cover is lazily
switched to negative-cover mode on the first delete (one O(n²/2)
agree-set pass — comparable to a single from-scratch validation
sweep), decremented in O(Δ·n) per delete batch afterwards, and the
positive covers are rebuilt by pure induction from the surviving
distinct agree sets — exact by construction, no validation needed.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro import kernels
from repro.discovery.hyfd.induction import build_positive_cover
from repro.model.attributes import full_mask, iter_bits
from repro.model.fd import FDSet
from repro.runtime.governor import checkpoint
from repro.structures.encoding import EncodedRelation
from repro.structures.fdtree import FDTree
from repro.structures.partitions import PLICache
from repro.structures.settrie import SetTrie

__all__ = ["CoverDelta", "IncrementalCover"]


class CoverDelta:
    """What one batch did to a relation's covers (for reporting)."""

    __slots__ = (
        "fds_removed",
        "fds_added",
        "uccs_removed",
        "uccs_added",
        "pairs_examined",
        "validations",
        "repairs",
    )

    def __init__(self) -> None:
        self.fds_removed: list[tuple[int, int]] = []
        self.fds_added: list[tuple[int, int]] = []
        self.uccs_removed: list[int] = []
        self.uccs_added: list[int] = []
        self.pairs_examined = 0
        self.validations = 0
        self.repairs = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.fds_removed
            or self.fds_added
            or self.uccs_removed
            or self.uccs_added
        )


class IncrementalCover:
    """Maintains the minimal FD cover and minimal-UCC antichain of one
    relation under inserts and deletes."""

    def __init__(
        self,
        arity: int,
        fds: FDSet,
        uccs: Iterable[int],
        null_equals_null: bool = True,
    ) -> None:
        self.arity = arity
        self.null_equals_null = null_equals_null
        self._tree = FDTree(arity)
        for lhs, rhs in fds.items():
            self._tree.add(lhs, rhs)
        self._uccs = SetTrie()
        for mask in uccs:
            self._uccs.insert(mask)
        #: agree-set mask → number of live record pairs with that agree
        #: set; ``None`` until the first delete forces the switch.
        self.pair_counts: Counter[int] | None = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def fds(self) -> FDSet:
        """The maintained minimal FD cover, in the canonical order.

        Built from ``FDTree.iter_all()`` — the same sorted-path order
        HyFD emits — so every downstream consumer (ranking tie-breaks
        included) sees exactly what a from-scratch run would see.
        """
        result = FDSet(self.arity)
        for lhs, rhs_mask in self._tree.iter_all():
            result.add_masks(lhs, rhs_mask)
        return result

    def uccs(self) -> list[int]:
        """The maintained minimal UCCs, sorted (HyUCC's output order)."""
        return sorted(self._uccs.iter_all())

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------
    def apply_insert(
        self,
        encoding: EncodedRelation,
        first_new_position: int,
        cache: PLICache,
    ) -> CoverDelta:
        """Refine the covers for rows appended at ``first_new_position``.

        Computes the agree set of every pair involving a new row (each
        pair once: new×old plus new×new), applies them through the
        induction step with dirty-candidate recording, then validates
        the dirty candidates level-wise against the data.
        """
        delta = CoverDelta()
        before_fds = dict(self._tree.iter_all())
        before_uccs = set(self._uccs.iter_all())

        num_rows = encoding.num_rows
        batched = kernels.backend_name() == "numpy"
        agree_sets: set[int] = set()
        new_pairs = 0
        for left in range(first_new_position, num_rows):
            checkpoint("incremental-pairs")
            if batched:
                agree_sets.update(encoding.agree_sets_vs(left, range(left)))
                new_pairs += left
            else:
                for right in range(left):
                    agree_sets.add(encoding.agree_set(left, right))
                    new_pairs += 1
        delta.pairs_examined = new_pairs
        if self.pair_counts is not None:
            for left in range(first_new_position, num_rows):
                counts = self.pair_counts
                if batched:
                    counts.update(encoding.agree_sets_vs(left, range(left)))
                else:
                    for right in range(left):
                        counts[encoding.agree_set(left, right)] += 1

        dirty_fds: set[tuple[int, int]] = set()
        dirty_uccs: set[int] = set()
        ordered = sorted(agree_sets, key=lambda mask: -mask.bit_count())
        # One batched screen of the whole agree-set batch against the
        # current FD cover: sets that violate nothing can be skipped for
        # the FD side, and stay clean as the tree evolves (every later
        # specialization's LHS extends outside its own agree set — see
        # induction.apply_agree_sets).  The UCC side is maintained
        # unconditionally: its antichain is a different structure.
        flags = self._tree.any_violated_batch(ordered)
        for agree, violates in zip(ordered, flags):
            checkpoint("incremental-induct")
            if violates:
                self._apply_fd_agree(agree, dirty_fds)
            self._apply_ucc_agree(agree, dirty_uccs)

        self._validate_dirty_fds(cache, dirty_fds, delta)
        self._validate_dirty_uccs(cache, dirty_uccs, delta)

        self._record_delta(before_fds, before_uccs, delta)
        return delta

    # ------------------------------------------------------------------
    # Deletes
    # ------------------------------------------------------------------
    def apply_delete(
        self,
        encoding_before: EncodedRelation,
        deleted_positions: list[int],
    ) -> CoverDelta:
        """Generalize the covers after a delete.

        ``encoding_before`` is the encoding *before* compaction (the
        deleted rows still present), ``deleted_positions`` their
        positions in it.  On the first delete the pair multiset is
        built from the *surviving* rows; afterwards it is decremented
        by the pairs the deleted rows participated in.  Either way the
        positive covers are rebuilt from the surviving distinct agree
        sets — pure induction, exact by the completeness of the
        negative cover.
        """
        delta = CoverDelta()
        if not deleted_positions:
            return delta
        before_fds = dict(self._tree.iter_all())
        before_uccs = set(self._uccs.iter_all())

        doomed = set(deleted_positions)
        if self.pair_counts is None:
            survivors = [
                pos for pos in range(encoding_before.num_rows)
                if pos not in doomed
            ]
            batched = kernels.backend_name() == "numpy"
            counts: Counter[int] = Counter()
            for index, left in enumerate(survivors):
                checkpoint("incremental-pairs")
                if batched:
                    counts.update(
                        encoding_before.agree_sets_vs(left, survivors[:index])
                    )
                else:
                    for right in survivors[:index]:
                        counts[encoding_before.agree_set(left, right)] += 1
            self.pair_counts = counts
            delta.pairs_examined = len(survivors) * (len(survivors) - 1) // 2
        else:
            batched = kernels.backend_name() == "numpy"
            counts = self.pair_counts
            for left in deleted_positions:
                checkpoint("incremental-pairs")
                partners = [
                    right
                    for right in range(encoding_before.num_rows)
                    if right != left and not (right in doomed and right < left)
                ]  # count each doomed-doomed pair once
                if batched:
                    masks = encoding_before.agree_sets_vs(left, partners)
                else:
                    masks = [
                        encoding_before.agree_set(left, right)
                        for right in partners
                    ]
                for agree in masks:
                    counts[agree] -= 1
                    if counts[agree] <= 0:
                        del counts[agree]
                    delta.pairs_examined += 1

        self._rebuild_from_counts()
        self._record_delta(before_fds, before_uccs, delta)
        return delta

    def _rebuild_from_counts(self) -> None:
        assert self.pair_counts is not None
        agree_sets = list(self.pair_counts.keys())
        self._tree = build_positive_cover(self.arity, agree_sets)
        self._uccs = SetTrie()
        if self.arity:
            self._uccs.insert(0)
            for agree in sorted(
                set(agree_sets), key=lambda mask: -mask.bit_count()
            ):
                self._apply_ucc_agree(agree, None)

    # ------------------------------------------------------------------
    # Induction with dirty-candidate recording
    # ------------------------------------------------------------------
    def _apply_fd_agree(
        self, agree: int, dirty: set[tuple[int, int]]
    ) -> None:
        """HyFD's induction step, recording the specializations it adds."""
        tree = self._tree
        for lhs, rhs_mask in tree.collect_violated(agree):
            tree.remove(lhs, rhs_mask)
            for rhs_attr in iter_bits(rhs_mask):
                dirty.discard((lhs, rhs_attr))
                self._specialize_fd(lhs, rhs_attr, agree, dirty)

    def _specialize_fd(
        self,
        lhs: int,
        rhs_attr: int,
        agree: int,
        dirty: set[tuple[int, int]],
    ) -> None:
        candidates = full_mask(self.arity) & ~(agree | (1 << rhs_attr) | lhs)
        added = self._tree.add_minimal_specializations(lhs, rhs_attr, candidates)
        for new_lhs in added:
            dirty.add((new_lhs, rhs_attr))

    def _apply_ucc_agree(self, agree: int, dirty: set[int] | None) -> None:
        """HyUCC's induction step, recording the specializations it adds."""
        candidates = self._uccs
        refuted = list(candidates.iter_subsets_of(agree))
        for mask in refuted:
            candidates.remove(mask)
            if dirty is not None:
                dirty.discard(mask)
        extension_bits = full_mask(self.arity) & ~agree
        for mask in refuted:
            for bit_index in iter_bits(extension_bits):
                specialized = mask | (1 << bit_index)
                if not candidates.contains_subset_of(specialized):
                    candidates.insert(specialized)
                    if dirty is not None:
                        dirty.add(specialized)

    # ------------------------------------------------------------------
    # Targeted validation of dirty candidates
    # ------------------------------------------------------------------
    def _validate_dirty_fds(
        self,
        cache: PLICache,
        dirty: set[tuple[int, int]],
        delta: CoverDelta,
    ) -> None:
        """Validate batch-introduced FD candidates level-wise.

        Groups the dirty candidates by LHS and refutes all their RHS
        attributes in one partition sweep
        (:meth:`StrippedPartition.find_violations`).  Refutations
        specialize further (recording new dirty candidates), so the
        loop runs until the dirty set drains — in the expected case
        (induction over a complete pair set is exact) the very first
        round confirms everything.
        """
        tree = self._tree
        while dirty:
            level = min(lhs.bit_count() for lhs, _ in dirty)
            current = [
                (lhs, attr)
                for lhs, attr in dirty
                if lhs.bit_count() == level
            ]
            by_lhs: dict[int, list[int]] = {}
            for lhs, attr in current:
                dirty.discard((lhs, attr))
                if tree.contains_fd(lhs, attr):
                    by_lhs.setdefault(lhs, []).append(attr)
            for lhs, attrs in sorted(by_lhs.items()):
                checkpoint("incremental-validate")
                attrs = sorted(attrs)
                probes = [cache.probe(attr) for attr in attrs]
                partition = cache.get(lhs)
                delta.validations += 1
                violations = partition.find_violations(attrs, probes)
                for attr, pair in violations.items():
                    delta.repairs += 1
                    tree.remove(lhs, 1 << attr)
                    # The witnessing pair is an existing pair (already
                    # counted, if counting); it only steers specialization.
                    agree = cache.agree_set(*pair)
                    self._specialize_fd(lhs, attr, agree, dirty)

    def _validate_dirty_uccs(
        self,
        cache: PLICache,
        dirty: set[int],
        delta: CoverDelta,
    ) -> None:
        """Validate batch-introduced UCC candidates level-wise."""
        candidates = self._uccs
        while dirty:
            level = min(mask.bit_count() for mask in dirty)
            current = sorted(
                mask for mask in dirty if mask.bit_count() == level
            )
            for mask in current:
                dirty.discard(mask)
                if mask not in candidates:
                    continue
                checkpoint("incremental-validate")
                partition = cache.get(mask)
                delta.validations += 1
                if partition.is_unique:
                    continue
                delta.repairs += 1
                pair_cluster = partition.cluster(0)
                agree = cache.agree_set(pair_cluster[0], pair_cluster[1])
                self._apply_ucc_agree(agree, dirty)

    # ------------------------------------------------------------------
    # Delta bookkeeping
    # ------------------------------------------------------------------
    def _record_delta(
        self,
        before_fds: dict[int, int],
        before_uccs: set[int],
        delta: CoverDelta,
    ) -> None:
        after_fds = dict(self._tree.iter_all())
        for lhs, rhs in before_fds.items():
            gone = rhs & ~after_fds.get(lhs, 0)
            if gone:
                delta.fds_removed.append((lhs, gone))
        for lhs, rhs in after_fds.items():
            new = rhs & ~before_fds.get(lhs, 0)
            if new:
                delta.fds_added.append((lhs, new))
        after_uccs = set(self._uccs.iter_all())
        delta.uccs_removed.extend(sorted(before_uccs - after_uccs))
        delta.uccs_added.extend(sorted(after_uccs - before_uccs))
