"""The incremental normalization engine.

:class:`IncrementalNormalizer` keeps a set of original (denormalized)
relations, their normalized schema, and the maintained FD/key covers
consistent under a stream of :class:`~repro.incremental.changes.ChangeBatch`
edits.  Per batch:

1. **report** — the incoming rows are routed through the
   :class:`~repro.incremental.monitor.ConstraintMonitor` of the
   *current* result, so the caller learns which discovered constraints
   the batch breaks before the schema evolves to accommodate it;
2. **maintain** — the live data structures (raw columns, dictionary
   encoding, single-attribute PLIs, stable row ids) absorb the batch in
   O(Δ) where possible, and the minimal FD / UCC covers are maintained
   via :class:`~repro.incremental.cover.IncrementalCover`;
3. **refresh** — the normalization pipeline (closure → keys →
   violating FDs → decomposition → primary keys) re-runs with the
   maintained covers served through
   :class:`~repro.discovery.precomputed.PrecomputedFDs`, skipping FD
   discovery entirely — the step the paper's evaluation shows dominates
   the runtime.  A closure cache keyed by cover fingerprint skips
   closure/key recomputation for relations whose cover did not change.
4. **plan** — the schema diff against the pre-batch schema becomes an
   ordered :class:`~repro.incremental.migration.MigrationPlan`.

The engine's correctness bar (checked by ``repro verify
--incremental``): after every batch, the maintained cover, key set and
DDL are byte-identical to a from-scratch :func:`repro.normalize` of the
updated data.  Everything is threaded through the runtime governor —
pass a :class:`~repro.runtime.governor.Budget` and both the maintenance
loops and the refresh pipeline become cooperatively cancellable
(budgets apply per batch) — and through the incremental journal
(:mod:`repro.incremental.journal`), so a killed run resumes at the
last completed batch.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.normalize import Normalizer
from repro.core.result import NormalizationResult
from repro.core.selection import AutoDecider
from repro.discovery.hyucc import HyUCC
from repro.discovery.precomputed import PrecomputedFDs
from repro.incremental.changes import ChangeBatch
from repro.incremental.cover import CoverDelta, IncrementalCover
from repro.incremental.migration import MigrationPlan
from repro.incremental.monitor import ConstraintMonitor, ConstraintViolation
from repro.incremental.structures import LiveRelation
from repro.io.ddl import schema_to_ddl
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import Schema
from repro.runtime.errors import InputError
from repro.runtime.governor import Budget, Governor, activate

__all__ = ["BatchOutcome", "IncrementalNormalizer"]


@dataclass(slots=True)
class BatchOutcome:
    """Everything one ``apply_batch`` call did, for reports and tests."""

    relation: str
    batch_index: int
    columns: tuple[str, ...]
    inserts_applied: int = 0
    deletes_applied: int = 0
    violations: list[ConstraintViolation] = field(default_factory=list)
    delta: CoverDelta = field(default_factory=CoverDelta)
    schema_changed: bool = False
    migration: MigrationPlan = field(default_factory=MigrationPlan)
    fidelity: str = "exact"
    maintenance_seconds: float = 0.0
    refresh_seconds: float = 0.0

    def to_str(self) -> str:
        """Render the per-relation violation and fidelity summary."""
        lines = [
            f"batch {self.batch_index} -> relation {self.relation!r}: "
            f"+{self.inserts_applied} rows, -{self.deletes_applied} rows"
        ]
        if self.violations:
            lines.append(
                f"  {len(self.violations)} constraint violation(s) against "
                "the previous schema:"
            )
            for violation in self.violations:
                lines.append(f"    {violation.to_str()}")
        else:
            lines.append("  no constraint violations against the previous schema")
        removed = sum(rhs.bit_count() for _, rhs in self.delta.fds_removed)
        added = sum(rhs.bit_count() for _, rhs in self.delta.fds_added)
        lines.append(
            f"  FD cover: -{removed} / +{added}; keys: "
            f"-{len(self.delta.uccs_removed)} / +{len(self.delta.uccs_added)} "
            f"({self.delta.pairs_examined} pair(s) examined, "
            f"{self.delta.validations} validation(s), "
            f"{self.delta.repairs} repair(s))"
        )
        for lhs, rhs in self.delta.fds_removed:
            lines.append(f"    - {FD(lhs, rhs & ~lhs).to_str(self.columns)}")
        for lhs, rhs in self.delta.fds_added:
            lines.append(f"    + {FD(lhs, rhs & ~lhs).to_str(self.columns)}")
        if self.schema_changed:
            lines.append(f"  schema changed: {self.migration.summary()}")
        else:
            lines.append("  schema unchanged")
        lines.append(f"  fidelity: {self.fidelity}")
        lines.append(
            f"  timings: maintenance {self.maintenance_seconds:.3f}s, "
            f"refresh {self.refresh_seconds:.3f}s"
        )
        return "\n".join(lines)


class IncrementalNormalizer:
    """Maintains a normalized schema under batched inserts and deletes."""

    def __init__(
        self,
        data: RelationInstance | Iterable[RelationInstance],
        algorithm: str = "hyfd",
        target: str = "bcnf",
        closure_algorithm: str = "optimized",
        null_equals_null: bool = True,
        exact_distinct: bool = False,
        score_features: tuple[str, ...] = (
            "length",
            "value",
            "position",
            "duplication",
        ),
        ucc_seed: int = 42,
        budget: Budget | None = None,
        journal_path: str | Path | None = None,
        defer_initial_run: bool = False,
    ) -> None:
        inputs = (
            [data] if isinstance(data, RelationInstance) else list(data)
        )
        if not inputs:
            raise InputError("no input relations given")
        names = [instance.name for instance in inputs]
        if len(set(names)) != len(names):
            raise InputError("input relation names must be unique")
        self.algorithm = algorithm
        self.target = target
        self.closure_algorithm = closure_algorithm
        self.null_equals_null = null_equals_null
        self.exact_distinct = exact_distinct
        self.score_features = tuple(score_features)
        self.ucc_seed = ucc_seed
        self.budget = budget
        self.journal_path = journal_path
        self._order = names
        self._live: dict[str, LiveRelation] = {
            instance.name: LiveRelation(instance, null_equals_null)
            for instance in inputs
        }
        self._covers: dict[str, IncrementalCover] = {}
        self._closure_cache: dict = {}
        self.applied_batches = 0
        self.result: NormalizationResult | None = None
        if not defer_initial_run:
            self._initial_run()
            self._write_journal()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _initial_run(self) -> None:
        """Discover covers once, from scratch, and seed the maintenance."""
        normalizer = Normalizer(
            algorithm=self.algorithm,
            decider=AutoDecider(),
            target=self.target,
            closure_algorithm=self.closure_algorithm,
            null_equals_null=self.null_equals_null,
            exact_distinct=self.exact_distinct,
            score_features=self.score_features,
            ucc_seed=self.ucc_seed,
            budget=self.budget,
            degrade=False,
        )
        normalizer.closure_cache = self._closure_cache
        self.result = normalizer.run(
            [self._live[name].snapshot_instance() for name in self._order]
        )
        for name in self._order:
            live = self._live[name]
            self._covers[name] = IncrementalCover(
                live.arity,
                self.result.discovered_fds[name],
                HyUCC(null_equals_null=self.null_equals_null).discover(
                    live.snapshot_instance()
                ),
                self.null_equals_null,
            )

    def config(self) -> dict:
        """The knob set the journal validates resumes against."""
        return {
            "algorithm": self.algorithm,
            "target": self.target,
            "closure_algorithm": self.closure_algorithm,
            "null_equals_null": self.null_equals_null,
            "exact_distinct": self.exact_distinct,
            "score_features": list(self.score_features),
            "ucc_seed": self.ucc_seed,
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        assert self.result is not None
        return self.result.schema

    def ddl(self) -> str:
        """The current normalized schema as SQL DDL."""
        assert self.result is not None
        return schema_to_ddl(self.result.schema, self.result.instances)

    def fd_cover(self, name: str) -> FDSet:
        """The maintained minimal FD cover of one original relation."""
        return self._covers[name].fds()

    def key_cover(self, name: str) -> list[int]:
        """The maintained minimal UCCs of one original relation."""
        return self._covers[name].uccs()

    def live(self, name: str) -> LiveRelation:
        return self._live[name]

    def relation_names(self) -> list[str]:
        return list(self._order)

    # ------------------------------------------------------------------
    # The batch loop
    # ------------------------------------------------------------------
    def apply_batch(self, batch: ChangeBatch) -> BatchOutcome:
        """Apply one change batch; returns the outcome (report + plan)."""
        assert self.result is not None
        name = self._resolve_relation(batch)
        live = self._live[name]
        cover = self._covers[name]
        outcome = BatchOutcome(
            relation=name,
            batch_index=self.applied_batches,
            columns=live.instance.columns,
        )

        # 1. Report: which constraints of the *current* schema does the
        # batch break?  (The schema will evolve to absorb them anyway.)
        monitor = ConstraintMonitor(self.result)
        for row in batch.inserts:
            outcome.violations.extend(
                monitor.route_universal_row(name, tuple(row), apply=False)
            )

        # 2. Maintain data structures and covers (governed).
        started = time.perf_counter()
        governor = (
            Governor(self.budget)
            if self.budget is not None and not self.budget.unbounded
            else None
        )
        with activate(governor):
            if batch.deletes:
                positions = sorted(
                    live.position_of(row_id) for row_id in batch.deletes
                )
                delete_delta = cover.apply_delete(live.encoding, positions)
                live.delete_ids(batch.deletes)
                outcome.deletes_applied = len(positions)
                self._merge_delta(outcome.delta, delete_delta)
            if batch.inserts:
                start, _ = live.insert_rows(batch.inserts)
                insert_delta = cover.apply_insert(
                    live.encoding, start, live.pli_cache()
                )
                outcome.inserts_applied = len(batch.inserts)
                self._merge_delta(outcome.delta, insert_delta)
        outcome.maintenance_seconds = time.perf_counter() - started

        # 3. Refresh the normalized schema from the maintained covers.
        old_schema = self.result.schema
        started = time.perf_counter()
        self._refresh()
        outcome.refresh_seconds = time.perf_counter() - started

        # 4. Diff into a migration plan.
        outcome.migration = MigrationPlan.diff(
            old_schema,
            self.result.schema,
            self._origins(),
            self.result.instances,
        )
        outcome.schema_changed = not outcome.migration.is_empty
        if self.result.fidelity is not None and self.result.fidelity.degraded:
            outcome.fidelity = "degraded"

        self.applied_batches += 1
        self._write_journal()
        return outcome

    def _resolve_relation(self, batch: ChangeBatch) -> str:
        if batch.relation is not None:
            if batch.relation not in self._live:
                raise InputError(
                    f"batch targets unknown relation {batch.relation!r}; "
                    f"known: {self._order}"
                )
            return batch.relation
        if len(self._order) == 1:
            return self._order[0]
        raise InputError(
            "batch must name a relation when the engine manages several: "
            f"{self._order}"
        )

    @staticmethod
    def _merge_delta(into: CoverDelta, other: CoverDelta) -> None:
        into.fds_removed.extend(other.fds_removed)
        into.fds_added.extend(other.fds_added)
        into.uccs_removed.extend(other.uccs_removed)
        into.uccs_added.extend(other.uccs_added)
        into.pairs_examined += other.pairs_examined
        into.validations += other.validations
        into.repairs += other.repairs

    def _refresh(self) -> None:
        """Re-run the pipeline tail with the maintained covers plugged in."""
        precomputed = PrecomputedFDs(
            {name: self._covers[name].fds() for name in self._order}
        )
        normalizer = Normalizer(
            algorithm=precomputed,
            decider=AutoDecider(),
            target=self.target,
            closure_algorithm=self.closure_algorithm,
            null_equals_null=self.null_equals_null,
            exact_distinct=self.exact_distinct,
            score_features=self.score_features,
            ucc_seed=self.ucc_seed,
            budget=self.budget,
            degrade=False,
        )
        normalizer.closure_cache = self._closure_cache
        self.result = normalizer.run(
            [self._live[name].snapshot_instance() for name in self._order]
        )

    def _origins(self) -> dict[str, str]:
        """Map each final relation to the original it was decomposed from."""
        assert self.result is not None
        origin = {name: name for name in self.result.originals}
        for step in self.result.steps:
            source = origin.get(step.parent)
            if source is not None:
                origin[step.r1] = source
                origin[step.r2] = source
        return {
            name: origin[name]
            for name in self.result.instances
            if name in origin
        }

    def _write_journal(self) -> None:
        if self.journal_path is None:
            return
        from repro.incremental.journal import save_journal

        save_journal(self, self.journal_path)
