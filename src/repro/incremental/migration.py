"""Migration plans: ordered DDL taking the old schema to the new one.

After a batch changes a relation's FD cover, the engine re-decomposes
and the normalized schema may gain, lose, or reshape relations.  A
:class:`MigrationPlan` is the diff between the schema before and after
one batch, rendered as an ordered, executable SQL script:

1. **create** — new relations, referenced-first (topological along
   foreign keys, the same order the DDL export uses),
2. **backfill** — each new relation is populated from its *original*
   relation's staging table via ``INSERT … SELECT DISTINCT`` (the
   projection Π that decomposition performs; DISTINCT is what makes
   the natural join of the fragments reproduce the original — the
   lossless-join guarantee of Theorem 2 carries over),
3. **rebuild** — relations whose column set or constraints changed are
   rebuilt under ``<name>__new`` and swapped in, so their dependents
   never see a half-migrated table,
4. **drop** — relations that no longer exist, dependents-first.

The plan assumes the updated original data is reachable as
``<original>__staging`` (one table per input relation); the header
comment restates this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.io.ddl import _topological, create_table_statement, quote_identifier
from repro.model.instance import RelationInstance
from repro.model.schema import Relation, Schema

__all__ = ["MigrationPlan"]


def _signature(relation: Relation) -> tuple:
    """Everything that makes two same-named relations interchangeable."""
    return (
        relation.columns,
        relation.primary_key,
        tuple(
            (fk.columns, fk.ref_relation, fk.ref_columns)
            for fk in relation.foreign_keys
        ),
    )


def _staging_name(original: str) -> str:
    return f"{original}__staging"


@dataclass(slots=True)
class MigrationPlan:
    """The ordered DDL diff between two normalized schemas."""

    created: list[str] = field(default_factory=list)
    rebuilt: list[str] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)
    statements: list[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.created or self.rebuilt or self.dropped)

    @classmethod
    def diff(
        cls,
        old_schema: Schema,
        new_schema: Schema,
        origin_of: dict[str, str],
        instances: dict[str, RelationInstance] | None = None,
    ) -> "MigrationPlan":
        """Plan the migration from ``old_schema`` to ``new_schema``.

        ``origin_of`` maps each new relation name to the original
        (input) relation it was decomposed from — the staging table
        its backfill reads.  ``instances`` (the new result's data)
        drives column-type inference, exactly like the DDL export.
        """
        old_by_name = {relation.name: relation for relation in old_schema}
        new_by_name = {relation.name: relation for relation in new_schema}

        plan = cls()
        ordered_new = _topological(new_schema)
        for relation in ordered_new:
            old = old_by_name.get(relation.name)
            if old is None:
                plan.created.append(relation.name)
            elif _signature(old) != _signature(relation):
                plan.rebuilt.append(relation.name)
            else:
                plan.unchanged.append(relation.name)
        plan.dropped = sorted(
            name for name in old_by_name if name not in new_by_name
        )

        if plan.is_empty:
            return plan

        statements = plan.statements
        statements.append(
            "-- Migration plan: assumes each updated original relation is "
            "loaded as its"
        )
        statements.append(
            "-- <original>__staging table; fragments are backfilled with "
            "SELECT DISTINCT"
        )
        statements.append(
            "-- projections, so natural-joining them reproduces the "
            "original (lossless join)."
        )
        for relation in ordered_new:
            if relation.name in plan.created:
                statements.append(
                    create_table_statement(relation, instances)
                )
                statements.append(
                    plan._backfill(relation, origin_of[relation.name])
                )
        for relation in ordered_new:
            if relation.name in plan.rebuilt:
                staged = f"{relation.name}__new"
                statements.append(
                    create_table_statement(relation, instances, name=staged)
                )
                statements.append(
                    plan._backfill(
                        relation, origin_of[relation.name], into=staged
                    )
                )
                statements.append(
                    f"DROP TABLE {quote_identifier(relation.name)};"
                )
                statements.append(
                    f"ALTER TABLE {quote_identifier(staged)} RENAME TO "
                    f"{quote_identifier(relation.name)};"
                )
        for name in plan.dropped:
            statements.append(f"DROP TABLE {quote_identifier(name)};")
        return plan

    @staticmethod
    def _backfill(relation: Relation, origin: str, into: str | None = None) -> str:
        columns = ", ".join(quote_identifier(c) for c in relation.columns)
        target = quote_identifier(into or relation.name)
        staging = quote_identifier(_staging_name(origin))
        return (
            f"INSERT INTO {target} ({columns}) "
            f"SELECT DISTINCT {columns} FROM {staging};"
        )

    def to_sql(self) -> str:
        if self.is_empty:
            return "-- No schema changes.\n"
        return "\n".join(self.statements) + "\n"

    def summary(self) -> str:
        return (
            f"{len(self.created)} created, {len(self.rebuilt)} rebuilt, "
            f"{len(self.dropped)} dropped, {len(self.unchanged)} unchanged"
        )
