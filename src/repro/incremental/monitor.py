"""Constraint monitoring against a frozen normalization result.

Historically ``repro.extensions.incremental`` (still importable from
there); now part of the incremental subsystem, where
:class:`~repro.incremental.engine.IncrementalNormalizer` uses it to
report which discovered constraints an incoming batch breaks *before*
the schema is evolved to accommodate the batch.

Once a dataset is normalized, *new* data must respect the constraints
the decomposition established — primary keys, foreign keys, and the
functional dependencies that were promoted to keys.

:class:`ConstraintMonitor` wraps a finished
:class:`~repro.core.result.NormalizationResult` and offers:

* :meth:`check_insert` — validate rows destined for one normalized
  relation against its primary key and outgoing foreign keys,
* :meth:`route_universal_row` — split a row of the *original*
  (denormalized) relation into the per-relation tuples the normalized
  schema stores, reporting every discovered FD the new row violates
  (i.e. where the data-driven constraint turns out to be semantically
  false for the evolving data),
* :meth:`apply` — ingest previously validated rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.result import NormalizationResult
from repro.model.instance import RelationInstance

__all__ = ["ConstraintMonitor", "ConstraintViolation"]

Row = tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class ConstraintViolation:
    """One broken constraint, with enough context to act on it."""

    relation: str
    kind: str  # "primary-key" | "foreign-key" | "functional-dependency" | "null-key"
    message: str
    row: Row

    def to_str(self) -> str:
        return f"[{self.relation}] {self.kind}: {self.message}"


class ConstraintMonitor:
    """Validates and routes new data against a normalization result."""

    def __init__(self, result: NormalizationResult) -> None:
        self._result = result
        self._instances = result.instances
        # Primary-key value index per relation, kept current on apply().
        self._pk_index: dict[str, set[Row]] = {}
        for name, instance in self._instances.items():
            pk = instance.relation.primary_key
            if pk:
                self._pk_index[name] = set(self._project_rows(instance, pk))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _project_rows(instance: RelationInstance, columns) -> list[Row]:
        data = [instance.column(col) for col in columns]
        return list(zip(*data)) if data else []

    @staticmethod
    def _project_row(instance: RelationInstance, row: Row, columns) -> Row:
        positions = {col: i for i, col in enumerate(instance.columns)}
        return tuple(row[positions[col]] for col in columns)

    # ------------------------------------------------------------------
    # Per-relation validation
    # ------------------------------------------------------------------
    def check_insert(
        self, relation_name: str, rows: list[Row]
    ) -> list[ConstraintViolation]:
        """Validate rows for one normalized relation (no mutation)."""
        if relation_name not in self._instances:
            raise KeyError(f"unknown relation {relation_name!r}")
        instance = self._instances[relation_name]
        relation = instance.relation
        violations: list[ConstraintViolation] = []

        pk = relation.primary_key
        seen_new: set[Row] = set()
        for row in rows:
            if len(row) != instance.arity:
                raise ValueError(
                    f"row width {len(row)} does not match relation "
                    f"{relation_name!r} arity {instance.arity}"
                )
            if pk:
                key = self._project_row(instance, row, pk)
                if any(value is None for value in key):
                    violations.append(
                        ConstraintViolation(
                            relation_name,
                            "null-key",
                            f"NULL in primary key {pk}",
                            row,
                        )
                    )
                elif key in self._pk_index[relation_name] or key in seen_new:
                    violations.append(
                        ConstraintViolation(
                            relation_name,
                            "primary-key",
                            f"duplicate key {key!r} for {pk}",
                            row,
                        )
                    )
                else:
                    seen_new.add(key)
            for fk in relation.foreign_keys:
                target = self._instances.get(fk.ref_relation)
                if target is None:
                    continue
                value = self._project_row(instance, row, fk.columns)
                existing = set(self._project_rows(target, fk.ref_columns))
                if value not in existing:
                    violations.append(
                        ConstraintViolation(
                            relation_name,
                            "foreign-key",
                            f"{fk.to_str()} dangling value {value!r}",
                            row,
                        )
                    )
        return violations

    def apply(self, relation_name: str, rows: list[Row]) -> None:
        """Insert rows previously validated with :meth:`check_insert`."""
        violations = self.check_insert(relation_name, rows)
        if violations:
            raise ValueError(
                "refusing to apply rows with violations: "
                + "; ".join(v.to_str() for v in violations)
            )
        instance = self._instances[relation_name]
        for row in rows:
            for index, value in enumerate(row):
                instance.columns_data[index].append(value)
        pk = instance.relation.primary_key
        if pk:
            self._pk_index[relation_name].update(
                self._project_row(instance, row, pk) for row in rows
            )

    # ------------------------------------------------------------------
    # Universal-row routing
    # ------------------------------------------------------------------
    def route_universal_row(
        self, original_name: str, row: Row, apply: bool = False
    ) -> list[ConstraintViolation]:
        """Split a row of the original relation across the normalized schema.

        Every normalized relation receives the row's projection onto its
        columns.  A projection whose primary-key value already exists
        with *different* dependent values means the new row violates a
        discovered FD — the constraint held on the old data only.  With
        ``apply=True`` and no violations, all projections are inserted
        (dimension projections are skipped when identical rows exist).
        """
        original = self._result.originals.get(original_name)
        if original is None:
            raise KeyError(f"unknown original relation {original_name!r}")
        if len(row) != original.arity:
            raise ValueError(
                f"row width {len(row)} does not match original arity "
                f"{original.arity}"
            )
        positions = {col: i for i, col in enumerate(original.columns)}

        violations: list[ConstraintViolation] = []
        pending: list[tuple[str, Row]] = []
        for name in self._descendants_of(original_name):
            instance = self._instances[name]
            projected = tuple(row[positions[col]] for col in instance.columns)
            pk = instance.relation.primary_key
            if pk:
                key = self._project_row(instance, projected, pk)
                match = self._lookup_by_key(instance, pk, key)
                if match is None:
                    pending.append((name, projected))
                elif match != projected:
                    violations.append(
                        ConstraintViolation(
                            name,
                            "functional-dependency",
                            f"key {key!r} maps to {match!r} but the new row "
                            f"implies {projected!r}",
                            projected,
                        )
                    )
                # identical row: nothing to insert
            else:
                pending.append((name, projected))

        if apply and not violations:
            for name, projected in pending:
                instance = self._instances[name]
                for index, value in enumerate(projected):
                    instance.columns_data[index].append(value)
                pk = instance.relation.primary_key
                if pk:
                    self._pk_index[name].add(
                        self._project_row(instance, projected, pk)
                    )
        return violations

    def _descendants_of(self, original_name: str) -> list[str]:
        """Final relations produced by decomposing ``original_name``.

        With multiple input relations, a universal row of one original
        must only be routed into that original's fragments.
        """
        alive = {original_name}
        for step in self._result.steps:
            if step.parent in alive:
                alive.discard(step.parent)
                alive.add(step.r1)
                alive.add(step.r2)
        return [name for name in self._instances if name in alive]

    def _lookup_by_key(
        self, instance: RelationInstance, pk, key: Row
    ) -> Row | None:
        if key not in self._pk_index.get(instance.name, set()):
            return None
        key_columns = [instance.column(col) for col in pk]
        for index, existing in enumerate(zip(*key_columns)):
            if existing == key:
                return instance.row(index)
        return None
