"""Checkpoint/resume journal for incremental runs.

After every applied batch (and once after the initial run) the engine
journals its maintained state: per relation, the stable row ids, the
FD cover, the UCC antichain, and — once deletes switched the cover to
negative-cover mode — the agree-set pair multiset.  The journal does
**not** store the raw data (the change log and the original CSVs are
the durable inputs); :func:`resume_engine` replays the raw edits of
the already-applied batch prefix, verifies the resulting row ids match
the journal, restores the covers, and re-runs one refresh.  A killed
``repro apply-batch`` run therefore loses at most the batch that was
in flight.

Writes are atomic (tmp + fsync + rename), the same discipline as the
pipeline checkpoint in :mod:`repro.runtime.checkpointing`; malformed
or mismatched journals raise
:class:`~repro.runtime.errors.CheckpointError`, which the CLI boundary
maps to exit code 4.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.io.serialization import fdset_from_json, fdset_to_json
from repro.model.attributes import mask_of_names, names_of
from repro.model.instance import RelationInstance
from repro.runtime.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.incremental.changes import ChangeBatch
    from repro.incremental.engine import IncrementalNormalizer

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "load_journal",
    "resume_engine",
    "save_journal",
]

JOURNAL_FORMAT = "repro/incremental-journal"
JOURNAL_VERSION = 1


def journal_to_json(engine: "IncrementalNormalizer") -> dict:
    """Serialize an engine's maintained state."""
    relations = []
    for name in engine.relation_names():
        live = engine.live(name)
        cover = engine._covers[name]
        columns = live.instance.columns
        relations.append(
            {
                "name": name,
                "columns": list(columns),
                "row_ids": list(live.row_ids),
                "next_row_id": live.next_row_id,
                "fd_cover": fdset_to_json(cover.fds(), columns),
                "uccs": [
                    list(names_of(mask, columns)) for mask in cover.uccs()
                ],
                "pair_counts": (
                    sorted(cover.pair_counts.items())
                    if cover.pair_counts is not None
                    else None
                ),
            }
        )
    return {
        "format": JOURNAL_FORMAT,
        "version": JOURNAL_VERSION,
        "config": engine.config(),
        "applied_batches": engine.applied_batches,
        "relations": relations,
    }


def save_journal(engine: "IncrementalNormalizer", path: str | Path) -> None:
    """Atomically write the engine's journal."""
    path = Path(path)
    payload = json.dumps(journal_to_json(engine), indent=2)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write journal {path}: {exc}") from exc


def load_journal(path: str | Path) -> dict:
    """Read and validate a journal document."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CheckpointError(f"cannot read journal {path}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(f"journal {path} is not valid JSON: {exc}") from exc
    if payload.get("format") != JOURNAL_FORMAT:
        raise CheckpointError(
            f"not an incremental journal (format={payload.get('format')!r})"
        )
    if payload.get("version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"unsupported journal version {payload.get('version')!r} "
            f"(this build reads version {JOURNAL_VERSION})"
        )
    return payload


def resume_engine(
    sources: Sequence[RelationInstance],
    batches: Sequence["ChangeBatch"],
    journal_path: str | Path,
    **engine_kwargs,
) -> "IncrementalNormalizer":
    """Rebuild an engine from its journal, original data, and change log.

    ``batches`` must be the same change log the killed run was
    consuming; the journal's already-applied prefix is replayed as raw
    data edits (no discovery, no per-batch refresh), the covers are
    restored verbatim, and a single refresh re-materializes the
    normalized result.  The caller then continues with
    ``batches[engine.applied_batches:]``.
    """
    from repro.incremental.cover import IncrementalCover
    from repro.incremental.engine import IncrementalNormalizer

    state = load_journal(journal_path)
    engine = IncrementalNormalizer(
        list(sources),
        journal_path=journal_path,
        defer_initial_run=True,
        **engine_kwargs,
    )
    if state["config"] != engine.config():
        raise CheckpointError(
            "journal was written with a different configuration: "
            f"{state['config']} != {engine.config()}"
        )
    applied = state["applied_batches"]
    if not isinstance(applied, int) or applied < 0 or applied > len(batches):
        raise CheckpointError(
            f"journal records {applied!r} applied batches but the change "
            f"log has {len(batches)}"
        )

    try:
        for batch in list(batches)[:applied]:
            name = engine._resolve_relation(batch)
            live = engine.live(name)
            if batch.deletes:
                live.delete_ids(batch.deletes)
            if batch.inserts:
                live.insert_rows(batch.inserts)

        journal_names = [entry["name"] for entry in state["relations"]]
        if sorted(journal_names) != sorted(engine.relation_names()):
            raise CheckpointError(
                f"journal covers relations {sorted(journal_names)} but the "
                f"engine manages {sorted(engine.relation_names())}"
            )
        for entry in state["relations"]:
            live = engine.live(entry["name"])
            columns = live.instance.columns
            if tuple(entry["columns"]) != columns:
                raise CheckpointError(
                    f"journal columns {entry['columns']} do not match "
                    f"relation {entry['name']!r} columns {list(columns)}"
                )
            if list(entry["row_ids"]) != live.row_ids or int(
                entry["next_row_id"]
            ) != live.next_row_id:
                raise CheckpointError(
                    f"replaying the change log for {entry['name']!r} "
                    "produced different row ids than the journal records; "
                    "the change log was modified since the journal was "
                    "written"
                )
            fds, _ = fdset_from_json(entry["fd_cover"])
            uccs = [
                mask_of_names(names, columns) for names in entry["uccs"]
            ]
            cover = IncrementalCover(
                live.arity, fds, uccs, engine.null_equals_null
            )
            if entry["pair_counts"] is not None:
                cover.pair_counts = Counter(
                    {
                        int(mask): int(count)
                        for mask, count in entry["pair_counts"]
                    }
                )
            engine._covers[entry["name"]] = cover
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed journal document: {exc}") from exc

    engine.applied_batches = applied
    engine._refresh()
    return engine
