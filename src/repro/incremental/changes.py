"""Change batches: the unit of work of the incremental engine.

A :class:`ChangeBatch` describes one atomic set of edits against an
*original* (denormalized) relation: rows to insert (full-width tuples)
and rows to delete (by **stable row id**).  Row ids are assigned by the
engine — the initial rows of a relation get ids ``0..n-1`` and every
inserted row gets the next id, so ids survive deletes (positions do
not) and a change log replays deterministically.

A :class:`ChangeLog` is an ordered sequence of batches.  Both types are
plain data; JSON (de)serialization lives in
:mod:`repro.io.serialization` (``changelog_to_json`` /
``changelog_from_json``) next to the other on-disk formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.runtime.errors import InputError

__all__ = ["ChangeBatch", "ChangeLog"]

Row = tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class ChangeBatch:
    """One atomic batch of inserts and deletes against one relation.

    ``relation`` may be ``None`` when the engine manages a single
    original (the common case); with several originals it must name
    the target.  Deletes are applied before inserts, so a batch can
    replace a row under its key without tripping over itself.
    """

    inserts: tuple[Row, ...] = ()
    deletes: tuple[int, ...] = ()
    relation: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "inserts", tuple(tuple(row) for row in self.inserts)
        )
        object.__setattr__(self, "deletes", tuple(self.deletes))
        if len(set(self.deletes)) != len(self.deletes):
            raise InputError("duplicate row ids in deletes")
        for row_id in self.deletes:
            if not isinstance(row_id, int) or row_id < 0:
                raise InputError(f"row ids are non-negative ints, got {row_id!r}")

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def to_json(self) -> dict:
        return {
            "relation": self.relation,
            "inserts": [list(row) for row in self.inserts],
            "deletes": list(self.deletes),
        }

    @classmethod
    def from_json(cls, payload: dict, coerce_str: bool = False) -> "ChangeBatch":
        """Build a batch from its JSON object.

        ``coerce_str=True`` converts non-NULL scalars to strings — the
        CSV reader represents every value as a string, so batches fed
        to a CSV-backed engine must match (``42`` and ``"42"`` are
        different values to FD discovery).
        """
        try:
            inserts = [tuple(row) for row in payload.get("inserts", ())]
            deletes = tuple(payload.get("deletes", ()))
            relation = payload.get("relation")
        except (TypeError, AttributeError) as exc:
            raise InputError(f"malformed change batch: {exc}") from exc
        if coerce_str:
            inserts = [
                tuple(
                    value if value is None else str(value) for value in row
                )
                for row in inserts
            ]
        return cls(inserts=tuple(inserts), deletes=deletes, relation=relation)


@dataclass(slots=True)
class ChangeLog:
    """An ordered sequence of change batches."""

    batches: list[ChangeBatch] = field(default_factory=list)

    def append(self, batch: ChangeBatch) -> None:
        self.batches.append(batch)

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[ChangeBatch]:
        return iter(self.batches)

    def __getitem__(self, index: int) -> ChangeBatch:
        return self.batches[index]
