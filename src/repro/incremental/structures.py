"""Live relation state: delta-maintained encoding, PLIs, and row ids.

A :class:`LiveRelation` owns the mutable state of one original relation
under a stream of change batches:

* the raw column-major data (a plain
  :class:`~repro.model.instance.RelationInstance`),
* the dictionary encoding, grown append-only via
  :meth:`~repro.structures.encoding.EncodedRelation.extend` and
  compacted on delete,
* one :class:`MutableColumnPartition` per attribute — the cluster map
  behind the single-attribute stripped partitions, updated in O(Δ) on
  append and rebuilt lazily after a delete (a delete shifts every
  later row position, so an O(n) pass is unavoidable *somewhere*; it
  happens at most once per batch, on materialization),
* the stable row ids that change batches address deletes with, and
* a :class:`~repro.structures.partitions.PLICache` refreshed per batch
  from the maintained encoding and singles, for cover validation.

Positions vs. ids: partitions and encodings speak row *positions*
(0-based, dense); change batches speak row *ids* (stable).  The
``row_ids`` list maps position → id and is the single source of truth
for the translation.
"""

from __future__ import annotations

from array import array
from typing import Any, Sequence

from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.errors import InputError
from repro.structures.encoding import EncodedRelation
from repro.structures.partitions import PLICache, StrippedPartition

__all__ = ["LiveRelation", "MutableColumnPartition"]

Row = tuple[Any, ...]


class MutableColumnPartition:
    """Value-id → row-position clusters of one column, delta-updatable.

    Appends extend the affected clusters in O(Δ); deletes flag the map
    for a lazy O(n) rebuild (positions shift).  :meth:`to_stripped`
    materializes the CSR :class:`StrippedPartition` with the same
    cluster order as
    :meth:`StrippedPartition.from_value_ids` — first-occurrence order,
    NULL cluster last — so partitions built either way are identical.
    """

    __slots__ = ("groups", "_dirty")

    def __init__(self) -> None:
        self.groups: dict[int, list[int]] = {}
        self._dirty = True

    def append_codes(self, codes: Sequence[int], start: int) -> None:
        """Account for rows ``start..len(codes)-1`` appended to the column."""
        if self._dirty:
            return  # a rebuild will see the new rows anyway
        groups = self.groups
        for position in range(start, len(codes)):
            code = codes[position]
            group = groups.get(code)
            if group is None:
                groups[code] = [position]
            else:
                group.append(position)

    def mark_dirty(self) -> None:
        """Invalidate after a delete (every later position shifted)."""
        self._dirty = True

    def rebuild(self, codes: Sequence[int]) -> None:
        groups: dict[int, list[int]] = {}
        for position, code in enumerate(codes):
            group = groups.get(code)
            if group is None:
                groups[code] = [position]
            else:
                group.append(position)
        self.groups = groups
        self._dirty = False

    def to_stripped(
        self, codes: Sequence[int], null_code: int | None
    ) -> StrippedPartition:
        """Materialize the CSR stripped partition (rebuilding if dirty)."""
        if self._dirty:
            self.rebuild(codes)
        groups = self.groups
        null_group = groups.get(null_code) if null_code is not None else None
        row_data = array("i")
        offsets = array("i", [0])
        for code, cluster in groups.items():
            if len(cluster) > 1 and cluster is not null_group:
                row_data.extend(cluster)
                offsets.append(len(row_data))
        if null_group is not None and len(null_group) > 1:
            row_data.extend(null_group)
            offsets.append(len(row_data))
        return StrippedPartition._from_csr(row_data, offsets, len(codes))


class LiveRelation:
    """The mutable state of one original relation under change batches."""

    def __init__(
        self, instance: RelationInstance, null_equals_null: bool = True
    ) -> None:
        # Own a bare copy: no keys/FKs (originals enter the pipeline bare),
        # and callers' instances are never mutated.
        relation = Relation(instance.name, instance.columns)
        self.instance = RelationInstance(relation, instance.columns_data)
        self.null_equals_null = null_equals_null
        self.encoding = EncodedRelation.encode(
            self.instance.columns_data, null_equals_null
        )
        self.instance.install_encoding(null_equals_null, self.encoding)
        num_rows = self.instance.num_rows
        self.row_ids: list[int] = list(range(num_rows))
        self.next_row_id = num_rows
        self._positions: dict[int, int] = {
            row_id: pos for pos, row_id in enumerate(self.row_ids)
        }
        self.partitions = [
            MutableColumnPartition() for _ in range(self.instance.arity)
        ]
        self._cache: PLICache | None = None
        self._cache_stale = False

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.instance.name

    @property
    def arity(self) -> int:
        return self.instance.arity

    @property
    def num_rows(self) -> int:
        return self.instance.num_rows

    def position_of(self, row_id: int) -> int:
        try:
            return self._positions[row_id]
        except KeyError:
            raise InputError(
                f"relation {self.name!r} has no live row with id {row_id}"
            ) from None

    def snapshot_instance(self) -> RelationInstance:
        """A bare, independent copy of the current data (for pipelines)."""
        return RelationInstance(
            Relation(self.name, self.instance.columns),
            self.instance.columns_data,
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_rows(self, rows: Sequence[Row]) -> tuple[int, list[int]]:
        """Append rows; returns ``(first_position, assigned_row_ids)``."""
        arity = self.arity
        for row in rows:
            if len(row) != arity:
                raise InputError(
                    f"insert row width {len(row)} does not match relation "
                    f"{self.name!r} arity {arity}"
                )
        start = self.num_rows
        if not rows:
            return start, []
        new_columns: list[list] = [[] for _ in range(arity)]
        for row in rows:
            for index, value in enumerate(row):
                new_columns[index].append(value)
        for index, column in enumerate(new_columns):
            self.instance.columns_data[index].extend(column)
        self.encoding.extend(new_columns)
        self.instance.install_encoding(self.null_equals_null, self.encoding)
        for attr, partition in enumerate(self.partitions):
            partition.append_codes(self.encoding.codes[attr], start)
        assigned: list[int] = []
        for _ in rows:
            row_id = self.next_row_id
            self.next_row_id += 1
            self._positions[row_id] = len(self.row_ids)
            self.row_ids.append(row_id)
            assigned.append(row_id)
        self._cache_stale = True
        return start, assigned

    def delete_ids(self, row_ids: Sequence[int]) -> list[int]:
        """Remove rows by stable id; returns their (pre-delete) positions."""
        positions = sorted(self.position_of(row_id) for row_id in row_ids)
        if not positions:
            return positions
        doomed = set(positions)
        for index, column in enumerate(self.instance.columns_data):
            self.instance.columns_data[index] = [
                value for pos, value in enumerate(column) if pos not in doomed
            ]
        self.instance.invalidate_caches()
        self.encoding.remove_rows(positions)
        self.instance.install_encoding(self.null_equals_null, self.encoding)
        self.row_ids = [
            row_id
            for pos, row_id in enumerate(self.row_ids)
            if pos not in doomed
        ]
        self._positions = {
            row_id: pos for pos, row_id in enumerate(self.row_ids)
        }
        for partition in self.partitions:
            partition.mark_dirty()
        self._cache_stale = True
        return positions

    # ------------------------------------------------------------------
    # Partitions / PLI cache
    # ------------------------------------------------------------------
    def single_partitions(self) -> list[StrippedPartition]:
        """Materialize every single-attribute stripped partition."""
        return [
            partition.to_stripped(
                self.encoding.codes[attr], self.encoding.null_codes[attr]
            )
            for attr, partition in enumerate(self.partitions)
        ]

    def pli_cache(self) -> PLICache:
        """The relation's PLI cache, refreshed to the current data."""
        if self._cache is None:
            self._cache = PLICache(
                self.instance,
                self.null_equals_null,
                encoding=self.encoding,
                singles=self.single_partitions(),
            )
            self._cache_stale = False
        elif self._cache_stale:
            self._cache.refresh(self.encoding, self.single_partitions())
            self._cache_stale = False
        return self._cache
