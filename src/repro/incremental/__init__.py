"""Incremental normalization — maintain the schema under changing data.

The paper's §9 leaves dynamic data as an open question; this package
answers it for batched inserts and deletes.  Instead of re-profiling
and re-normalizing the whole instance after every change, the engine

* maintains the columnar dictionary encoding and single-attribute
  PLIs append-only (:mod:`repro.incremental.structures`),
* maintains the minimal FD cover and the minimal-UCC (key) cover
  EAIFD-style on the existing HyFD structures — new record pairs only
  refute and specialize; deletes rebuild from a maintained agree-set
  multiset (:mod:`repro.incremental.cover`),
* re-runs only the cheap tail of the pipeline (closure → keys →
  decomposition) with the maintained covers plugged in as
  :class:`~repro.discovery.precomputed.PrecomputedFDs`
  (:mod:`repro.incremental.engine`), and
* emits an ordered migration plan from the previous to the new schema
  (:mod:`repro.incremental.migration`).

The correctness contract, enforced by ``repro verify --incremental``:
after every batch the maintained FD cover, key set, and emitted DDL are
byte-identical to a from-scratch :func:`repro.normalize` of the updated
instance.
"""

from repro.incremental.changes import ChangeBatch, ChangeLog
from repro.incremental.cover import CoverDelta, IncrementalCover
from repro.incremental.engine import BatchOutcome, IncrementalNormalizer
from repro.incremental.journal import load_journal, resume_engine, save_journal
from repro.incremental.migration import MigrationPlan
from repro.incremental.monitor import ConstraintMonitor, ConstraintViolation
from repro.incremental.structures import LiveRelation, MutableColumnPartition

__all__ = [
    "BatchOutcome",
    "ChangeBatch",
    "ChangeLog",
    "ConstraintMonitor",
    "ConstraintViolation",
    "CoverDelta",
    "IncrementalCover",
    "IncrementalNormalizer",
    "LiveRelation",
    "MigrationPlan",
    "MutableColumnPartition",
    "load_journal",
    "resume_engine",
    "save_journal",
]
