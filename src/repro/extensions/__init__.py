"""Extensions beyond the paper's core system.

The paper sketches several directions it does not evaluate; this
package implements them on top of the core pipeline:

* :mod:`repro.extensions.mvd` — multi-valued dependency discovery
  (dependency bases per LHS), the prerequisite §6 names for normal
  forms beyond BCNF,
* :mod:`repro.extensions.fournf` — 4NF normalization built on MVDs,
  "the normalization algorithm, then, would work in the same manner"
  (§6),
* :mod:`repro.extensions.incremental` — constraint maintenance for
  dynamic data, the open question of §9: route new universal-relation
  rows into the normalized schema and report which discovered
  constraints new data would break,
* :mod:`repro.extensions.scoring_features` — additional key/foreign-key
  quality features (§9 suggests research on exactly this), packaged as
  a drop-in decider so the core §7 scoring stays faithful,
* :mod:`repro.extensions.approximate` — approximate FDs (TANE's g3
  error) and exception-row reporting, the "errors in the data" half of
  §9's open question.
"""

from repro.extensions.approximate import AFD, discover_afds, g3_error, violating_rows
from repro.extensions.fournf import FourNFNormalizer
from repro.extensions.incremental import ConstraintMonitor, ConstraintViolation
from repro.extensions.mvd import MVD, dependency_basis, discover_mvds, mvd_holds
from repro.extensions.scoring_features import ExtendedScoringDecider

__all__ = [
    "AFD",
    "MVD",
    "ConstraintMonitor",
    "ConstraintViolation",
    "ExtendedScoringDecider",
    "FourNFNormalizer",
    "dependency_basis",
    "discover_afds",
    "discover_mvds",
    "g3_error",
    "mvd_holds",
    "violating_rows",
]
