"""Multi-valued dependency (MVD) discovery.

Paper §6: "constructing 4NF requires all multi-valued dependencies
(MVDs) and, hence, an algorithm that discovers MVDs."  This module is
that algorithm, data-driven like the rest of the system.

An MVD ``X ↠ Y`` holds in ``r`` iff, within every group of records
agreeing on ``X``, the combinations of ``Y``-values and ``Z``-values
(``Z = R − X − Y``) form a full cross product — the ``Y`` side varies
independently of the ``Z`` side.  Every FD is an MVD; the interesting
MVDs are the non-FD ones (join dependencies hiding in the data).

For each LHS ``X``, the valid RHSs form a Boolean algebra whose atoms
are the *dependency basis* of ``X`` (Beeri 1980): the unique partition
of ``R − X`` such that ``X ↠ W`` holds iff ``W`` is a union of basis
blocks.  We compute the basis directly from the data by iterative
refinement, which keeps the per-LHS cost polynomial; LHS enumeration
is bounded by ``max_lhs_size`` because the lattice is exponential —
exactly the paper's §4.3 pruning argument, and short LHSs are again
the semantically plausible ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.model.attributes import bits_of, full_mask, iter_bits, mask_of
from repro.model.instance import RelationInstance
from repro.structures.partitions import column_value_ids

__all__ = ["MVD", "dependency_basis", "discover_mvds", "mvd_holds"]


@dataclass(frozen=True, slots=True)
class MVD:
    """A multi-valued dependency ``lhs ↠ rhs`` (masks, disjoint)."""

    lhs: int
    rhs: int

    def to_str(self, columns) -> str:
        lhs = ",".join(columns[i] for i in iter_bits(self.lhs)) or "{}"
        rhs = ",".join(columns[i] for i in iter_bits(self.rhs))
        return f"{lhs} ->> {rhs}"


def _probes(instance: RelationInstance, null_equals_null: bool) -> list[list[int]]:
    return [
        column_value_ids(instance.columns_data[i], null_equals_null)
        for i in range(instance.arity)
    ]


def _group_rows(
    probes: list[list[int]], mask: int, num_rows: int
) -> dict[tuple, list[int]]:
    bits = bits_of(mask)
    groups: dict[tuple, list[int]] = {}
    for row in range(num_rows):
        groups.setdefault(tuple(probes[i][row] for i in bits), []).append(row)
    return groups


def mvd_holds(
    instance: RelationInstance,
    lhs: int,
    rhs: int,
    null_equals_null: bool = True,
) -> bool:
    """Definition-level MVD check: cross product within every LHS group.

    Trivial cases (``rhs ⊆ lhs`` or ``lhs ∪ rhs = R``) hold by
    definition.
    """
    everything = full_mask(instance.arity)
    rhs &= ~lhs
    other = everything & ~(lhs | rhs)
    if not rhs or not other:
        return True
    probes = _probes(instance, null_equals_null)
    rhs_bits = bits_of(rhs)
    other_bits = bits_of(other)
    for rows in _group_rows(probes, lhs, instance.num_rows).values():
        ys = set()
        zs = set()
        pairs = set()
        for row in rows:
            y = tuple(probes[i][row] for i in rhs_bits)
            z = tuple(probes[i][row] for i in other_bits)
            ys.add(y)
            zs.add(z)
            pairs.add((y, z))
        if len(pairs) != len(ys) * len(zs):
            return False
    return True


def dependency_basis(
    instance: RelationInstance,
    lhs: int,
    null_equals_null: bool = True,
) -> list[int]:
    """The dependency basis of ``lhs``: the atoms of its valid MVD RHSs.

    Computed by refinement: start from the single block ``R − X`` and
    repeatedly split a block ``B`` into ``W`` / ``B − W`` whenever a
    proper non-empty ``W ⊂ B`` with ``X ↠ W`` exists.  Valid RHSs are
    closed under difference, so both halves stay unions of atoms, and a
    block splits iff it is not an atom — the refinement terminates at
    exactly the basis.

    The result is sorted and forms a partition of ``R − lhs``.
    """
    everything = full_mask(instance.arity)
    remaining = everything & ~lhs
    if not remaining:
        return []
    blocks = [remaining]
    changed = True
    while changed:
        changed = False
        next_blocks: list[int] = []
        for block in blocks:
            split = _find_split(instance, lhs, block, null_equals_null)
            if split is None:
                next_blocks.append(block)
            else:
                next_blocks.append(split)
                next_blocks.append(block & ~split)
                changed = True
        blocks = next_blocks
    return sorted(blocks)


def _find_split(
    instance: RelationInstance,
    lhs: int,
    block: int,
    null_equals_null: bool,
) -> int | None:
    """Find a proper non-empty sub-block ``W ⊂ block`` with ``lhs ↠ W``.

    Candidate sub-blocks are all proper non-empty subsets of the block,
    tested smallest-first so the returned split is an atom candidate.
    Blocks are small in practice (they only shrink), so the local
    exponential stays tame; a hard cap keeps degenerate cases bounded.
    """
    bits = bits_of(block)
    if len(bits) <= 1:
        return None
    max_subset_size = len(bits) - 1
    for size in range(1, max_subset_size + 1):
        for subset in combinations(bits, size):
            candidate = mask_of(subset)
            if mvd_holds(instance, lhs, candidate, null_equals_null):
                return candidate
    return None


def discover_mvds(
    instance: RelationInstance,
    max_lhs_size: int = 2,
    null_equals_null: bool = True,
    include_fd_equivalent: bool = False,
) -> list[MVD]:
    """Enumerate MVDs ``X ↠ Y`` with ``|X| ≤ max_lhs_size``.

    For each LHS the dependency basis is computed and each non-trivial
    block reported once (unions of blocks are implied and omitted).
    With ``include_fd_equivalent=False`` (default), blocks that are
    single attributes functionally determined by ``X`` are skipped —
    those MVDs are just FDs and the FD pipeline already handles them.
    """
    results: list[MVD] = []
    everything = full_mask(instance.arity)
    attributes = list(range(instance.arity))
    for size in range(0, max_lhs_size + 1):
        for lhs_bits in combinations(attributes, size):
            lhs = mask_of(lhs_bits)
            basis = dependency_basis(instance, lhs, null_equals_null)
            if len(basis) <= 1:
                continue  # only the trivial MVD lhs ->> R - lhs
            for block in basis:
                if lhs | block == everything:
                    continue
                if not include_fd_equivalent and _is_fd_block(
                    instance, lhs, block, null_equals_null
                ):
                    continue
                results.append(MVD(lhs, block))
    return results


def _is_fd_block(
    instance: RelationInstance, lhs: int, block: int, null_equals_null: bool
) -> bool:
    """True iff ``lhs → block`` holds (the MVD degenerates to an FD)."""
    probes = _probes(instance, null_equals_null)
    block_bits = bits_of(block)
    for rows in _group_rows(probes, lhs, instance.num_rows).values():
        first = tuple(probes[i][rows[0]] for i in block_bits)
        for row in rows[1:]:
            if tuple(probes[i][row] for i in block_bits) != first:
                return False
    return True
