"""Approximate functional dependencies and data-error reporting.

Two of the paper's observations motivate this extension:

* §1: "The FD Postcode → City … is commonly believed to be true
  although it is usually violated by exceptions" — on real data the
  semantically *true* constraint often holds only approximately,
* §9: "Another open research question is how normalization processes
  should handle dynamic data and errors in the data."

An *approximate FD* (AFD) ``X → A`` holds with error ``g3(X → A) ≤ ε``
where ``g3`` is TANE's error measure: the minimal fraction of records
whose removal makes the FD exact.  Within each ``X``-group, keeping
only the most frequent ``A`` value is optimal, so

    g3 = (n − Σ_groups max_value_count) / n.

Because ``g3`` never increases when the LHS grows, "error ≤ ε" is an
upward-monotone predicate and the generic boundary search of
:mod:`repro.discovery.lattice` enumerates the minimal approximate LHSs
exactly — the same machinery DFD/DUCC use.

:func:`violating_rows` reports the concrete exception records, which is
the actionable half of the "errors in the data" question: a user can
inspect, fix, or exclude them before normalizing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.discovery.lattice import find_minimal_satisfying
from repro.model.attributes import bits_of, full_mask, iter_bits
from repro.model.instance import RelationInstance
from repro.runtime.governor import checkpoint
from repro.structures.partitions import column_value_ids

__all__ = ["AFD", "discover_afds", "g3_error", "violating_rows"]


@dataclass(frozen=True, slots=True)
class AFD:
    """An approximate FD ``lhs → rhs_attr`` with its g3 error."""

    lhs: int
    rhs_attr: int
    error: float

    def to_str(self, columns) -> str:
        lhs = ",".join(columns[i] for i in iter_bits(self.lhs)) or "{}"
        return f"{lhs} -> {columns[self.rhs_attr]} (g3={self.error:.3f})"


def _probes(instance: RelationInstance, null_equals_null: bool) -> list[list[int]]:
    return [
        column_value_ids(instance.columns_data[i], null_equals_null)
        for i in range(instance.arity)
    ]


def g3_error(
    instance: RelationInstance,
    lhs: int,
    rhs_attr: int,
    null_equals_null: bool = True,
    probes: list[list[int]] | None = None,
) -> float:
    """TANE's g3: minimal fraction of rows to drop for ``lhs → rhs_attr``.

    ``probes`` lets callers that verify many FDs against the same
    instance reuse one column encoding instead of re-encoding per call
    (see :func:`repro.runtime.degrade.discover_with_ladder`).
    """
    rows = instance.num_rows
    if rows == 0:
        return 0.0
    checkpoint("g3-error", units=max(rows // 256, 1))
    if probes is None:
        probes = _probes(instance, null_equals_null)
    lhs_bits = bits_of(lhs)
    groups: dict[tuple, Counter] = {}
    for row in range(rows):
        key = tuple(probes[i][row] for i in lhs_bits)
        groups.setdefault(key, Counter())[probes[rhs_attr][row]] += 1
    kept = sum(counter.most_common(1)[0][1] for counter in groups.values())
    return (rows - kept) / rows


def discover_afds(
    instance: RelationInstance,
    max_error: float,
    max_lhs_size: int | None = None,
    null_equals_null: bool = True,
) -> list[AFD]:
    """All minimal approximate FDs with ``g3 ≤ max_error``.

    With ``max_error = 0`` this degenerates to exact minimal-FD
    discovery (and is tested against the exact discoverers).  LHSs
    wider than ``max_lhs_size`` are omitted, mirroring §4.3 pruning.
    """
    if not 0.0 <= max_error < 1.0:
        raise ValueError("max_error must be within [0, 1)")
    arity = instance.arity
    results: list[AFD] = []
    everything = full_mask(arity)
    for rhs_attr in range(arity):
        universe = everything & ~(1 << rhs_attr)

        def within_error(lhs: int) -> bool:
            return (
                g3_error(instance, lhs, rhs_attr, null_equals_null)
                <= max_error
            )

        for lhs in find_minimal_satisfying(within_error, universe):
            if max_lhs_size is not None and lhs.bit_count() > max_lhs_size:
                continue
            results.append(
                AFD(
                    lhs,
                    rhs_attr,
                    g3_error(instance, lhs, rhs_attr, null_equals_null),
                )
            )
    return results


def violating_rows(
    instance: RelationInstance,
    lhs: int,
    rhs_attr: int,
    null_equals_null: bool = True,
) -> list[int]:
    """The exception records of an approximate FD.

    Returns the (minimal) set of row indices whose removal makes
    ``lhs → rhs_attr`` exact: within every LHS group, all rows that do
    not carry the group's majority RHS value.  Ties break towards the
    value seen first, so the result is deterministic.
    """
    probes = _probes(instance, null_equals_null)
    lhs_bits = bits_of(lhs)
    groups: dict[tuple, list[int]] = {}
    for row in range(instance.num_rows):
        key = tuple(probes[i][row] for i in lhs_bits)
        groups.setdefault(key, []).append(row)
    exceptions: list[int] = []
    for rows in groups.values():
        counts: Counter = Counter(probes[rhs_attr][row] for row in rows)
        majority = max(counts.items(), key=lambda item: (item[1], -_first_row(rows, probes, rhs_attr, item[0])))[0]
        exceptions.extend(
            row for row in rows if probes[rhs_attr][row] != majority
        )
    return sorted(exceptions)


def _first_row(rows, probes, rhs_attr, value) -> int:
    for row in rows:
        if probes[rhs_attr][row] == value:
            return row
    return -1  # pragma: no cover - value always stems from rows
