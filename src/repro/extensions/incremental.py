"""Deprecated shim — the monitor moved to :mod:`repro.incremental.monitor`.

The static :class:`ConstraintMonitor` grew into a full incremental
normalization subsystem (:mod:`repro.incremental`: change batches,
cover maintenance, schema evolution, migration plans).  This module
re-exports the monitor types so existing imports keep working; new
code should import from :mod:`repro.incremental` directly.
"""

from __future__ import annotations

from repro.incremental.monitor import ConstraintMonitor, ConstraintViolation

__all__ = ["ConstraintMonitor", "ConstraintViolation"]
