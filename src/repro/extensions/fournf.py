"""4NF normalization on top of MVD discovery (paper §6 sketch).

A relation is in 4NF iff for every non-trivial MVD ``X ↠ Y`` the LHS
``X`` is a (super)key.  The paper notes that with an MVD discoverer
"the normalization algorithm, then, would work in the same manner" —
this module is that algorithm:

1. run the regular BCNF pipeline first (every BCNF violation is also a
   4NF violation, and the FD machinery handles those much faster),
2. then, per remaining relation, discover MVDs (bounded LHS size),
   identify the non-FD, non-trivial ones whose LHS is no superkey,
3. score them with the applicable §7 features (length/value/position;
   the duplication feature needs an FD's asymmetry and is skipped),
4. decompose ``R`` into ``R1 = X ∪ Y`` and ``R2 = X ∪ (R − X − Y)``
   (both deduplicated — Fagin's theorem guarantees losslessness) and
   repeat until no violating MVD remains.

MVDs cannot be projected like FDs (Lemma 3 covers FDs only), so MVDs
are re-discovered per produced relation; the bounded LHS keeps that
affordable at this library's laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.normalize import Normalizer
from repro.core.result import NormalizationResult
from repro.core.scoring import score_key
from repro.discovery.ucc import DuccUCC
from repro.extensions.mvd import MVD, discover_mvds
from repro.model.attributes import count_bits, full_mask
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey
from repro.structures.settrie import SetTrie

__all__ = ["FourNFNormalizer", "FourNFStep"]


@dataclass(slots=True)
class FourNFStep:
    """One MVD-driven decomposition in the 4NF phase."""

    parent: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    r1: str
    r2: str

    def to_str(self) -> str:
        lhs = ",".join(self.lhs)
        rhs = ",".join(self.rhs)
        return f"{self.parent}: split on MVD {lhs} ->> {rhs} => {self.r1} + {self.r2}"


@dataclass(slots=True)
class FourNFResult:
    """BCNF result plus the MVD decompositions applied on top."""

    bcnf: NormalizationResult
    instances: dict[str, RelationInstance]
    mvd_steps: list[FourNFStep] = field(default_factory=list)

    def to_str(self) -> str:
        from repro.model.schema import Schema

        schema = Schema(instance.relation for instance in self.instances.values())
        lines = [schema.to_str()]
        if self.mvd_steps:
            lines.append("")
            lines.append("MVD decompositions:")
            lines.extend(f"  {step.to_str()}" for step in self.mvd_steps)
        return "\n".join(lines)


class FourNFNormalizer:
    """BCNF first, then MVD-driven decomposition to 4NF."""

    def __init__(
        self,
        max_mvd_lhs_size: int = 2,
        null_equals_null: bool = True,
        **normalizer_kwargs,
    ) -> None:
        self.max_mvd_lhs_size = max_mvd_lhs_size
        self.null_equals_null = null_equals_null
        self._normalizer = Normalizer(
            null_equals_null=null_equals_null, **normalizer_kwargs
        )

    def run(self, data: RelationInstance) -> FourNFResult:
        bcnf = self._normalizer.run(data)
        instances = dict(bcnf.instances)
        steps: list[FourNFStep] = []
        queue = list(instances)
        while queue:
            name = queue.pop()
            instance = instances[name]
            violating = self._violating_mvd(instance)
            if violating is None:
                continue
            r1, r2 = self._decompose(instance, violating, instances, steps)
            del instances[name]
            instances[r1.name] = r1
            instances[r2.name] = r2
            queue.extend([r1.name, r2.name])
        return FourNFResult(bcnf=bcnf, instances=instances, mvd_steps=steps)

    # ------------------------------------------------------------------
    # Violating-MVD identification and selection
    # ------------------------------------------------------------------
    def _violating_mvd(self, instance: RelationInstance) -> MVD | None:
        if instance.arity < 3:
            return None  # a non-trivial MVD needs X, Y, Z all non-empty
        keys = SetTrie()
        for key in DuccUCC(null_equals_null=self.null_equals_null).discover(
            instance
        ):
            keys.insert(key)
        candidates = []
        for mvd in discover_mvds(
            instance,
            max_lhs_size=min(self.max_mvd_lhs_size, instance.arity - 2),
            null_equals_null=self.null_equals_null,
        ):
            if mvd.lhs == 0:
                # Empty LHS (constant columns / full cross products):
                # no key or join columns could result — the same stance
                # Algorithm 4 takes for empty-LHS FDs.
                continue
            if keys.contains_subset_of(mvd.lhs):
                continue  # LHS is a superkey: 4NF-conform
            if instance.has_null_in(mvd.lhs):
                continue  # same SQL-key argument as Algorithm 4
            candidates.append(mvd)
        if not candidates:
            return None
        # Rank like §7 where applicable: short, left, short-valued LHS
        # first; among ties prefer the larger split-off side.
        def rank(mvd: MVD) -> tuple:
            key_score = score_key(instance, mvd.lhs)
            return (-key_score.total, -count_bits(mvd.rhs), mvd.lhs, mvd.rhs)

        return min(candidates, key=rank)

    # ------------------------------------------------------------------
    # Decomposition (Fagin): R1 = X ∪ Y, R2 = X ∪ (R − X − Y)
    # ------------------------------------------------------------------
    def _decompose(
        self,
        instance: RelationInstance,
        mvd: MVD,
        instances: dict[str, RelationInstance],
        steps: list[FourNFStep],
    ) -> tuple[RelationInstance, RelationInstance]:
        everything = full_mask(instance.arity)
        lhs_names = instance.relation.names_of(mvd.lhs)
        r1_mask = mvd.lhs | mvd.rhs
        r2_mask = mvd.lhs | (everything & ~r1_mask)

        used = set(instances)
        r1_name = _fresh(f"{instance.name}_mv1", used)
        r2_name = _fresh(f"{instance.name}_mv2", used)
        r1 = instance.project(r1_mask, name=r1_name, dedup=True)
        r2 = instance.project(r2_mask, name=r2_name, dedup=True)

        # Keys of the parent containing the LHS cannot survive either
        # side (the MVD LHS is no key of the parts either, in general),
        # so parts get fresh keys from UCC discovery when possible.
        for part in (r1, r2):
            uccs = [
                key
                for key in DuccUCC(
                    null_equals_null=self.null_equals_null
                ).discover(part)
                if key and not part.has_null_in(key)
            ]
            if uccs:
                best = max(uccs, key=lambda key: score_key(part, key).total)
                part.relation.primary_key = part.relation.names_of(best)
        # Both parts share the MVD LHS; record the join link.  An empty
        # LHS (the data is a full cross product) leaves no join columns
        # — reconstruction is then the cartesian product.
        if lhs_names:
            r1.relation.foreign_keys.append(
                ForeignKey(lhs_names, r2_name, lhs_names)
            )
        steps.append(
            FourNFStep(
                parent=instance.name,
                lhs=lhs_names,
                rhs=instance.relation.names_of(mvd.rhs),
                r1=r1_name,
                r2=r2_name,
            )
        )
        return r1, r2


def _fresh(base: str, used: set[str]) -> str:
    name = base
    suffix = 2
    while name in used:
        name = f"{base}_{suffix}"
        suffix += 1
    used.add(name)
    return name
