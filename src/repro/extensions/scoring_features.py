"""Additional constraint-selection features (paper §9 future work).

"We also suggest research on other features for the key and foreign
key selection that may yield even better results."  This module adds
three such features and packages them as a drop-in
:class:`~repro.core.selection.Decider`, so the core §7 scoring stays
exactly as published while users can opt into the richer ranking:

* **name score** — schema designers name key columns with ``id``,
  ``key``, ``no``/``nr``/``number`` suffixes; a violating FD whose LHS
  columns carry such suffixes is more plausibly a real foreign key,
* **cardinality-ratio score** — dimension tables are much smaller than
  the fact side: a low distinct(LHS)/rows ratio means the split-off
  relation removes many duplicate tuples,
* **rhs-coverage score** — an FD determining a large, *contiguous*
  block of not-otherwise-determined attributes is more likely a whole
  entity; measured as the fraction of RHS attributes no other
  candidate also determines (exclusive coverage).

The extended rank is the mean of the §7 total and the extra features,
so the published behaviour is recovered by weighting the extras to 0.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.scoring import ViolatingFDScore
from repro.core.selection import Decider
from repro.model.attributes import count_bits, iter_bits
from repro.model.instance import RelationInstance

__all__ = ["ExtendedScore", "ExtendedScoringDecider", "extended_scores"]

# snake_case ("customer_id"), bare ("id"), or camelCase ("CustomerID")
# key-ish suffixes; plain words that merely *end* in "id" (e.g. "said")
# must not match, hence the boundary alternatives.
_KEYISH_SUFFIX = re.compile(
    r"(?:(?:^|_)(?i:id|key|no|nr|number|code)|[a-z](?:Id|ID|Key|KEY))$"
)


@dataclass(frozen=True, slots=True)
class ExtendedScore:
    """A §7 score enriched with the three extension features."""

    base: ViolatingFDScore
    name_score: float
    cardinality_score: float
    coverage_score: float
    extras_weight: float

    @property
    def total(self) -> float:
        extras = (self.name_score + self.cardinality_score + self.coverage_score) / 3
        return (
            self.base.total + self.extras_weight * extras
        ) / (1.0 + self.extras_weight)


def name_score(instance: RelationInstance, lhs: int) -> float:
    """Fraction of LHS columns with key-ish name suffixes."""
    names = [instance.columns[i] for i in iter_bits(lhs)]
    if not names:
        return 0.0
    hits = sum(1 for name in names if _KEYISH_SUFFIX.search(name))
    return hits / len(names)


def cardinality_ratio_score(instance: RelationInstance, lhs: int) -> float:
    """``1 − distinct(lhs)/rows``: low-cardinality LHSs make good dimensions."""
    rows = instance.num_rows
    if rows == 0:
        return 0.0
    return max(0.0, 1.0 - instance.distinct_count(lhs) / rows)


def coverage_score(
    score: ViolatingFDScore, all_scores: list[ViolatingFDScore]
) -> float:
    """Fraction of the RHS no other candidate's RHS also covers."""
    rhs = score.fd.rhs
    if not rhs:
        return 0.0
    others = 0
    for other in all_scores:
        if other.fd is score.fd:
            continue
        others |= other.fd.rhs
    exclusive = rhs & ~others
    return count_bits(exclusive) / count_bits(rhs)


def extended_scores(
    instance: RelationInstance,
    ranking: list[ViolatingFDScore],
    extras_weight: float = 1.0,
) -> list[ExtendedScore]:
    """Enrich and re-rank a §7 ranking with the extension features."""
    enriched = [
        ExtendedScore(
            base=score,
            name_score=name_score(instance, score.fd.lhs),
            cardinality_score=cardinality_ratio_score(instance, score.fd.lhs),
            coverage_score=coverage_score(score, ranking),
            extras_weight=extras_weight,
        )
        for score in ranking
    ]
    enriched.sort(
        key=lambda s: (-s.total, count_bits(s.base.fd.lhs), s.base.fd.lhs)
    )
    return enriched


class ExtendedScoringDecider(Decider):
    """A decider that re-ranks violating FDs with the extension features.

    Wraps any inner decider (default: automatic top-pick), feeding it
    the re-ranked candidate list — the inner decider's index refers to
    the *extended* order, which this class maps back to the original
    ranking for the pipeline.
    """

    def __init__(self, extras_weight: float = 1.0) -> None:
        if extras_weight < 0:
            raise ValueError("extras_weight must be non-negative")
        self.extras_weight = extras_weight

    def choose_violating_fd(self, instance, ranking):
        if not ranking:
            return None
        enriched = extended_scores(instance, ranking, self.extras_weight)
        best = enriched[0].base
        return next(i for i, score in enumerate(ranking) if score is best)

    def choose_primary_key(self, instance, ranking):
        if not ranking:
            return None
        # keys: combine the §7.1 total with the name feature only (the
        # other extras target foreign keys).
        def total(score):
            return (
                score.total
                + self.extras_weight * name_score(instance, score.key)
            ) / (1.0 + self.extras_weight)

        best = max(range(len(ranking)), key=lambda i: total(ranking[i]))
        return best
