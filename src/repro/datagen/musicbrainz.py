"""A deterministic MusicBrainz-like generator (paper §8.1/§8.3, Figure 4).

The paper joins eleven selected core tables of the MusicBrainz music
encyclopedia into one universal relation and limits the row count,
"because the associative tables produce an enormous amount of records".
Unlike TPC-H, the schema is *not* snowflake-shaped: ``artist_credit``
connects to releases *and* tracks, and two m:n link tables
(``artist_credit_name`` and ``release_label``) fan the join out, which
is why the paper's recovered schema contains a fact-table-like
top-level relation.

Our eleven tables::

    area ← place ← artist ← artist_credit_name → artist_credit
    area ← label ← release_label → release → medium ← track
    track → recording ;  track/release → artist_credit

``area`` appears on both the artist path (via ``place``) and the label
path; its two occurrences are column-prefixed (``pa_``/``la_``), like
the duplicated nation/region tables in the TPC-H join.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.denormalize import JoinSpec, denormalize
from repro.evaluation.metrics import GoldRelation
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey, Relation

__all__ = [
    "MUSICBRAINZ_GOLD",
    "MusicBrainzScale",
    "denormalized_musicbrainz",
    "generate_musicbrainz",
]


@dataclass(frozen=True, slots=True)
class MusicBrainzScale:
    """Row counts per table; defaults keep pure-Python discovery fast."""

    areas: int = 8
    places: int = 12
    artists: int = 24
    artist_credits: int = 20
    artist_credit_names: int = 34
    labels: int = 10
    releases: int = 26
    release_labels: int = 34
    mediums: int = 34
    recordings: int = 60
    tracks: int = 110
    max_joined_rows: int = 420


_AREA_NAMES = (
    "Germany", "France", "Japan", "Brazil", "Canada", "Iceland",
    "Nigeria", "Australia", "Sweden", "Mexico",
)
_FORMATS = ("CD", "Vinyl", "Digital", "Cassette")
_STATUSES = ("Official", "Promotion", "Bootleg")


def generate_musicbrainz(
    scale: MusicBrainzScale | None = None, seed: int = 7
) -> dict[str, RelationInstance]:
    """Generate the eleven core tables with keys and foreign keys."""
    scale = scale or MusicBrainzScale()
    rng = random.Random(seed)

    area = RelationInstance.from_rows(
        Relation("area", ("area_id", "area_name"), primary_key=("area_id",)),
        [(i, _AREA_NAMES[i % len(_AREA_NAMES)]) for i in range(scale.areas)],
    )

    place = RelationInstance.from_rows(
        Relation(
            "place",
            ("place_id", "place_name", "place_area"),
            primary_key=("place_id",),
            foreign_keys=[ForeignKey(("place_area",), "area", ("area_id",))],
        ),
        [
            (i, f"Venue {i:03d}", rng.randrange(scale.areas))
            for i in range(scale.places)
        ],
    )

    artist = RelationInstance.from_rows(
        Relation(
            "artist",
            ("artist_id", "artist_name", "artist_sort", "artist_year", "artist_place"),
            primary_key=("artist_id",),
            foreign_keys=[ForeignKey(("artist_place",), "place", ("place_id",))],
        ),
        [
            (
                i,
                f"Artist {i:03d}",
                f"{i:03d}, Artist",
                1950 + rng.randrange(60),
                rng.randrange(scale.places),
            )
            for i in range(scale.artists)
        ],
    )

    artist_credit = RelationInstance.from_rows(
        Relation(
            "artist_credit",
            ("ac_id", "ac_name", "ac_count"),
            primary_key=("ac_id",),
        ),
        [
            (i, f"Credit {i:03d}", 1 + rng.randrange(3))
            for i in range(scale.artist_credits)
        ],
    )

    acn_pairs = set()
    while len(acn_pairs) < scale.artist_credit_names:
        acn_pairs.add(
            (rng.randrange(scale.artist_credits), rng.randrange(scale.artists))
        )
    artist_credit_name = RelationInstance.from_rows(
        Relation(
            "artist_credit_name",
            ("acn_credit", "acn_artist", "acn_position", "acn_name"),
            primary_key=("acn_credit", "acn_artist"),
            foreign_keys=[
                ForeignKey(("acn_credit",), "artist_credit", ("ac_id",)),
                ForeignKey(("acn_artist",), "artist", ("artist_id",)),
            ],
        ),
        [
            (credit, art, rng.randrange(1, 4), f"As credited {credit}/{art}")
            for credit, art in sorted(acn_pairs)
        ],
    )

    label = RelationInstance.from_rows(
        Relation(
            "label",
            ("label_id", "label_name", "label_code", "label_area"),
            primary_key=("label_id",),
            foreign_keys=[ForeignKey(("label_area",), "area", ("area_id",))],
        ),
        [
            (i, f"Label {i:02d}", 1000 + i, rng.randrange(scale.areas))
            for i in range(scale.labels)
        ],
    )

    release = RelationInstance.from_rows(
        Relation(
            "release",
            ("release_id", "release_title", "release_credit", "release_status"),
            primary_key=("release_id",),
            foreign_keys=[
                ForeignKey(("release_credit",), "artist_credit", ("ac_id",))
            ],
        ),
        [
            (
                i,
                f"Album {i:03d}",
                rng.randrange(scale.artist_credits),
                rng.choice(_STATUSES),
            )
            for i in range(scale.releases)
        ],
    )

    rl_pairs = set()
    while len(rl_pairs) < scale.release_labels:
        rl_pairs.add((rng.randrange(scale.releases), rng.randrange(scale.labels)))
    release_label = RelationInstance.from_rows(
        Relation(
            "release_label",
            ("rl_release", "rl_label", "rl_catalog"),
            primary_key=("rl_release", "rl_label"),
            foreign_keys=[
                ForeignKey(("rl_release",), "release", ("release_id",)),
                ForeignKey(("rl_label",), "label", ("label_id",)),
            ],
        ),
        [
            (rel, lab, f"CAT-{lab}-{rel:03d}")
            for rel, lab in sorted(rl_pairs)
        ],
    )

    medium = RelationInstance.from_rows(
        Relation(
            "medium",
            ("medium_id", "medium_release", "medium_position", "medium_format"),
            primary_key=("medium_id",),
            foreign_keys=[
                ForeignKey(("medium_release",), "release", ("release_id",))
            ],
        ),
        [
            (
                i,
                i % scale.releases,  # every release gets ≥1 medium
                1 + i // scale.releases,
                rng.choice(_FORMATS),
            )
            for i in range(scale.mediums)
        ],
    )

    recording = RelationInstance.from_rows(
        Relation(
            "recording",
            ("recording_id", "recording_name", "recording_length"),
            primary_key=("recording_id",),
        ),
        [
            (i, f"Song {i:03d}", 120 + rng.randrange(40) * 5)
            for i in range(scale.recordings)
        ],
    )

    track = RelationInstance.from_rows(
        Relation(
            "track",
            (
                "track_id",
                "track_medium",
                "track_position",
                "track_recording",
                "track_credit",
                "track_name",
            ),
            primary_key=("track_id",),
            foreign_keys=[
                ForeignKey(("track_medium",), "medium", ("medium_id",)),
                ForeignKey(("track_recording",), "recording", ("recording_id",)),
                ForeignKey(("track_credit",), "artist_credit", ("ac_id",)),
            ],
        ),
        [
            (
                i,
                rng.randrange(scale.mediums),
                1 + rng.randrange(12),
                rng.randrange(scale.recordings),
                rng.randrange(scale.artist_credits),
                f"Track {i:04d}",
            )
            for i in range(scale.tracks)
        ],
    )

    return {
        "area": area,
        "place": place,
        "artist": artist,
        "artist_credit": artist_credit,
        "artist_credit_name": artist_credit_name,
        "label": label,
        "release": release,
        "release_label": release_label,
        "medium": medium,
        "recording": recording,
        "track": track,
    }


def _renamed(
    instance: RelationInstance, renames: dict[str, str], name: str
) -> RelationInstance:
    columns = tuple(renames.get(col, col) for col in instance.columns)
    return RelationInstance(Relation(name, columns), instance.columns_data)


def denormalized_musicbrainz(
    scale: MusicBrainzScale | None = None, seed: int = 7
) -> RelationInstance:
    """Join the eleven tables into one sampled universal relation."""
    scale = scale or MusicBrainzScale()
    tables = generate_musicbrainz(scale, seed)
    place_area = _renamed(
        tables["area"],
        {"area_id": "pa_id", "area_name": "pa_name"},
        "area_p",
    )
    label_area = _renamed(
        tables["area"],
        {"area_id": "la_id", "area_name": "la_name"},
        "area_l",
    )
    joins = [
        JoinSpec(tables["medium"], (("track_medium", "medium_id"),)),
        JoinSpec(tables["recording"], (("track_recording", "recording_id"),)),
        JoinSpec(tables["release"], (("medium_release", "release_id"),)),
        JoinSpec(tables["release_label"], (("medium_release", "rl_release"),)),
        JoinSpec(tables["label"], (("rl_label", "label_id"),)),
        JoinSpec(label_area, (("label_area", "la_id"),)),
        JoinSpec(tables["artist_credit"], (("track_credit", "ac_id"),)),
        JoinSpec(tables["artist_credit_name"], (("track_credit", "acn_credit"),)),
        JoinSpec(tables["artist"], (("acn_artist", "artist_id"),)),
        JoinSpec(tables["place"], (("artist_place", "place_id"),)),
        JoinSpec(place_area, (("place_area", "pa_id"),)),
    ]
    return denormalize(
        tables["track"],
        joins,
        name="musicbrainz_denormalized",
        max_rows=scale.max_joined_rows,
        seed=seed,
    )


def _fs(*names: str) -> frozenset[str]:
    return frozenset(names)


#: Gold standard in universal-relation column names.
MUSICBRAINZ_GOLD: list[GoldRelation] = [
    GoldRelation(
        "track",
        _fs(
            "track_id", "track_medium", "track_position",
            "track_recording", "track_credit", "track_name",
        ),
        key=_fs("track_id"),
        references=(
            ("track_medium", "medium"),
            ("track_recording", "recording"),
            ("track_credit", "artist_credit"),
        ),
    ),
    GoldRelation(
        "medium",
        _fs("track_medium", "medium_release", "medium_position", "medium_format"),
        key=_fs("track_medium"),
        references=(("medium_release", "release"),),
    ),
    GoldRelation(
        "recording",
        _fs("track_recording", "recording_name", "recording_length"),
        key=_fs("track_recording"),
    ),
    GoldRelation(
        "release",
        _fs("medium_release", "release_title", "release_credit", "release_status"),
        key=_fs("medium_release"),
        references=(("release_credit", "artist_credit"),),
    ),
    GoldRelation(
        "release_label",
        _fs("medium_release", "rl_label", "rl_catalog"),
        key=_fs("medium_release", "rl_label"),
        references=(("rl_label", "label"),),
    ),
    GoldRelation(
        "label",
        _fs("rl_label", "label_name", "label_code", "label_area"),
        key=_fs("rl_label"),
        references=(("label_area", "area_l"),),
    ),
    GoldRelation("area_l", _fs("label_area", "la_name"), key=_fs("label_area")),
    GoldRelation(
        "artist_credit",
        _fs("track_credit", "ac_name", "ac_count"),
        key=_fs("track_credit"),
    ),
    GoldRelation(
        "artist_credit_name",
        _fs("track_credit", "acn_artist", "acn_position", "acn_name"),
        key=_fs("track_credit", "acn_artist"),
        references=(("acn_artist", "artist"),),
    ),
    GoldRelation(
        "artist",
        _fs(
            "acn_artist", "artist_name", "artist_sort",
            "artist_year", "artist_place",
        ),
        key=_fs("acn_artist"),
        references=(("artist_place", "place"),),
    ),
    GoldRelation(
        "place",
        _fs("artist_place", "place_name", "place_area"),
        key=_fs("artist_place"),
        references=(("place_area", "area_p"),),
    ),
    GoldRelation("area_p", _fs("place_area", "pa_name"), key=_fs("place_area")),
]
