"""Single-table datasets shaped like the paper's efficiency datasets.

Table 3 of the paper profiles four real single-table datasets (Horse,
Plista, Amalgam1, Flight) whose FD sets differ in character:

* **Horse** — small but FD-dense: mixed categorical/numeric veterinary
  attributes with sparse NULLs; a mid-sized number of FD-derivable keys,
* **Plista** — web-log style: several constant and NULL-heavy columns,
  exactly one derivable key,
* **Amalgam1** — bibliographic with very few records, so *huge* numbers
  of accidental keys and FDs,
* **Flight** — wide and highly correlated (route determines carrier
  determines …), producing the largest FD set relative to width.

The originals are not redistributable, so these generators reproduce
the *shape* at reduced width (see DESIGN.md §3): correlated column
groups create genuine FDs, near-unique columns create accidental keys,
NULL-heavy and constant columns exercise the corresponding code paths.
All generators are deterministic in their seed.
"""

from __future__ import annotations

import random
import zlib

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["amalgam_like", "flight_like", "horse_like", "plista_like"]


def _instance(name: str, columns: list[str], rows: list[tuple]) -> RelationInstance:
    return RelationInstance.from_rows(Relation(name, tuple(columns)), rows)


def horse_like(seed: int = 42, num_rows: int = 300) -> RelationInstance:
    """Horse-shaped: 16 mixed columns, sparse NULLs, dense FD structure."""
    rng = random.Random(seed)
    columns = [
        "surgery", "age", "hospital_id", "rectal_temp", "pulse",
        "respiratory_rate", "temp_extremities", "mucous_membranes",
        "pain", "peristalsis", "abdominal_distension", "packed_cell_volume",
        "total_protein", "outcome", "lesion_site", "lesion_type",
    ]
    # A latent pool of case prototypes provides the clinical block;
    # only a few per-row vitals vary independently, so the number of
    # derivable keys stays small (the paper reports 40 for Horse).
    prototypes = []
    for _ in range(max(1, num_rows // 6)):
        lesion_site = rng.randrange(12)
        pain = rng.randrange(6)
        prototypes.append(
            (
                rng.choice(("yes", "no")),
                rng.choice(("adult", "young")),
                rng.randrange(4),
                rng.randrange(6),
                pain,
                pain % 4,  # pain -> peristalsis (genuine FD)
                rng.randrange(4),
                30 + rng.randrange(6) * 2,
                None if rng.random() < 0.2 else 6 + rng.randrange(4),
                rng.choice(("lived", "died", "euthanized")),
                lesion_site,
                lesion_site % 5,  # site -> type (genuine FD)
            )
        )
    rows = []
    for i in range(num_rows):
        proto = rng.choice(prototypes)
        rows.append(
            (
                proto[0],
                proto[1],
                5000 + rng.randrange(num_rows // 2),  # repeats: no id key
                None if rng.random() < 0.25 else 36 + rng.randrange(4),
                None if rng.random() < 0.15 else 40 + rng.randrange(6) * 4,
                None if rng.random() < 0.3 else 10 + rng.randrange(5) * 5,
                *proto[2:],
            )
        )
    return _instance("horse_like", columns, rows)


def plista_like(seed: int = 42, num_rows: int = 600) -> RelationInstance:
    """Plista-shaped: log table with constants, NULL floods, one key."""
    rng = random.Random(seed)
    columns = [
        "event_id", "publisher", "widget", "item", "category",
        "user_agent", "os", "browser", "geo", "zip_code",
        "recommendable", "version", "flag_a", "flag_b",
        "click_ts", "session_depth", "channel", "campaign",
    ]
    # Rows are sampled from a small pool of latent event prototypes:
    # only event_id distinguishes repeated prototypes, so the relation
    # has exactly one minimal key — the paper reports 1 for Plista.
    prototypes = []
    for _ in range(max(1, num_rows // 5)):
        os_id = rng.randrange(5)
        browser = os_id * 2 + rng.randrange(2)  # os correlates with browser
        geo = rng.randrange(12)
        prototypes.append(
            (
                rng.randrange(4),
                rng.randrange(8),
                rng.randrange(30),
                rng.randrange(12),
                f"UA-{os_id}-{browser}",
                os_id,
                browser,
                geo,
                None if rng.random() < 0.6 else 10000 + geo * 13,
                "true",  # constant
                "1.0",  # constant
                None if rng.random() < 0.8 else rng.randrange(2),
                None,  # all-NULL column
                1400000000 + rng.randrange(60) * 3600,
                rng.randrange(1, 8),
                rng.randrange(6),
                None if rng.random() < 0.5 else rng.randrange(8),
            )
        )
    rows = [
        (900000 + i, *rng.choice(prototypes)) for i in range(num_rows)
    ]
    return _instance("plista_like", columns, rows)


def amalgam_like(seed: int = 42, num_rows: int = 45) -> RelationInstance:
    """Amalgam1-shaped: bibliography with few rows → many accidental keys."""
    rng = random.Random(seed)
    columns = [
        "ref_id", "title", "authors", "year", "journal", "volume",
        "number", "month", "pages", "publisher", "address", "booktitle",
        "editor", "series", "howpublished", "institution", "note", "type",
    ]
    rows = []
    for i in range(num_rows):
        year = 1970 + rng.randrange(35)
        journal = rng.randrange(10)
        rows.append(
            (
                i,
                f"Title {i:03d}",
                f"Author{rng.randrange(40)} and Author{rng.randrange(40)}",
                year,
                f"Journal {journal}",
                rng.randrange(1, 40),
                rng.randrange(1, 12),
                rng.randrange(1, 13),
                f"{rng.randrange(1, 400)}--{rng.randrange(400, 800)}",
                f"Publisher {rng.randrange(12)}",
                f"City {rng.randrange(18)}",
                None if rng.random() < 0.3 else f"Proc. {rng.randrange(20)}",
                None if rng.random() < 0.4 else f"Editor {rng.randrange(14)}",
                None if rng.random() < 0.5 else f"Series {rng.randrange(8)}",
                None,
                None if rng.random() < 0.6 else f"Inst {rng.randrange(10)}",
                None if rng.random() < 0.7 else "in press",
                rng.choice(("article", "inproceedings", "techreport", "book")),
            )
        )
    return _instance("amalgam_like", columns, rows)


def flight_like(seed: int = 42, num_rows: int = 700) -> RelationInstance:
    """Flight-shaped: wide, heavily correlated schedule data → most FDs."""
    rng = random.Random(seed)
    columns = [
        "flight_no", "airline_code", "airline_name", "origin", "origin_city",
        "origin_state", "dest", "dest_city", "dest_state", "route",
        "scheduled_dep", "scheduled_arr", "actual_dep", "actual_arr",
        "delay", "tail_number", "aircraft_type", "distance", "day_of_week",
        "cancelled",
    ]
    airports = [
        ("ATL", "Atlanta", "GA"), ("ORD", "Chicago", "IL"),
        ("DFW", "Dallas", "TX"), ("DEN", "Denver", "CO"),
        ("LAX", "Los Angeles", "CA"), ("JFK", "New York", "NY"),
        ("SFO", "San Francisco", "CA"), ("SEA", "Seattle", "WA"),
        ("MIA", "Miami", "FL"), ("BOS", "Boston", "MA"),
    ]
    airlines = [("AA", "American"), ("DL", "Delta"), ("UA", "United"), ("WN", "Southwest")]
    tails = [f"N{100 + i}XX" for i in range(30)]
    rows = []
    for i in range(num_rows):
        airline = rng.choice(airlines)
        origin = rng.choice(airports)
        dest = rng.choice([a for a in airports if a != origin])
        route = f"{origin[0]}-{dest[0]}"  # route -> origin, dest (and cities)
        distance = (zlib.crc32(route.encode()) % 40) * 60 + 200  # route -> distance
        sched_dep = rng.randrange(5, 23) * 100
        sched_arr = (sched_dep + distance // 8) % 2400
        delay = rng.choice((0, 0, 0, 5, 10, 15, 30, 60))
        tail = rng.choice(tails)
        rows.append(
            (
                f"{airline[0]}{1000 + i % 500}",
                airline[0],
                airline[1],  # airline_code -> airline_name
                origin[0], origin[1], origin[2],
                dest[0], dest[1], dest[2],
                route,
                sched_dep,
                sched_arr,
                sched_dep + delay,
                sched_arr + delay,
                delay,
                tail,
                f"B7{3 + (zlib.crc32(tail.encode()) % 5)}7",  # tail -> type
                distance,
                rng.randrange(1, 8),
                "no" if delay < 60 else "maybe",
            )
        )
    return _instance("flight_like", columns, rows)
