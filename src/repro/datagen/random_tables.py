"""Random relation instances for property-based testing."""

from __future__ import annotations

import random

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["random_instance"]


def random_instance(
    seed: int,
    num_columns: int,
    num_rows: int,
    domain_size: int = 3,
    null_rate: float = 0.0,
    name: str = "random",
) -> RelationInstance:
    """A deterministic random table.

    Small domains force value collisions, which is what makes random
    tables interesting for FD discovery: every collision pattern is an
    agree set.  ``null_rate`` injects NULLs to exercise the NULL
    semantics paths.
    """
    if num_columns < 1:
        raise ValueError("need at least one column")
    if not 0.0 <= null_rate <= 1.0:
        raise ValueError("null_rate must be within [0, 1]")
    rng = random.Random(seed)
    columns_data = [
        [
            None if rng.random() < null_rate else rng.randrange(domain_size)
            for _ in range(num_rows)
        ]
        for _ in range(num_columns)
    ]
    relation = Relation(name, tuple(f"c{i}" for i in range(num_columns)))
    return RelationInstance(relation, columns_data)
