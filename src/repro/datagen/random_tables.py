"""Random relation instances for property-based testing."""

from __future__ import annotations

import bisect
import itertools
import random
from collections.abc import Sequence

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["random_instance", "zipf_cumulative_weights"]


def zipf_cumulative_weights(domain_size: int, skew: float) -> list[float]:
    """Cumulative rank-frequency weights ``w_r ∝ 1/(r+1)^skew``.

    ``skew=0`` degenerates to the uniform distribution; larger values
    concentrate mass on the low ranks (value id 0 is the most frequent).
    The returned list is normalized so its last entry is 1.0, ready for
    ``bisect`` sampling against a uniform draw.
    """
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain_size)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    return [value / total for value in cumulative]


def _per_column(value, num_columns: int, what: str) -> list:
    """Broadcast a scalar parameter to one entry per column."""
    if isinstance(value, (int, float)):
        return [value] * num_columns
    values = list(value)
    if len(values) != num_columns:
        raise ValueError(
            f"{what} has {len(values)} entries for {num_columns} columns"
        )
    return values


def random_instance(
    seed: int,
    num_columns: int,
    num_rows: int,
    domain_size: int | Sequence[int] = 3,
    null_rate: float = 0.0,
    name: str = "random",
    skew: float | Sequence[float] = 0.0,
) -> RelationInstance:
    """A deterministic random table.

    Small domains force value collisions, which is what makes random
    tables interesting for FD discovery: every collision pattern is an
    agree set.  ``null_rate`` injects NULLs to exercise the NULL
    semantics paths.

    ``domain_size`` and ``skew`` accept either a scalar (applied to all
    columns, the historical behaviour) or one entry per column.  A
    non-zero ``skew`` draws values Zipf-distributed with that exponent —
    value ``0`` most frequent — which is what real-world categorical
    columns look like and what stresses the skew-sensitive paths of the
    partition engine (one giant cluster plus a long singleton tail).
    """
    if num_columns < 1:
        raise ValueError("need at least one column")
    if not 0.0 <= null_rate <= 1.0:
        raise ValueError("null_rate must be within [0, 1]")
    domains = _per_column(domain_size, num_columns, "domain_size")
    skews = _per_column(skew, num_columns, "skew")
    rng = random.Random(seed)
    columns_data: list[list] = []
    for col in range(num_columns):
        if skews[col]:
            cumulative = zipf_cumulative_weights(domains[col], skews[col])
            draw = lambda: bisect.bisect_left(cumulative, rng.random())  # noqa: E731
        else:
            draw = lambda: rng.randrange(domains[col])  # noqa: E731
        columns_data.append(
            [
                None if rng.random() < null_rate else draw()
                for _ in range(num_rows)
            ]
        )
    relation = Relation(name, tuple(f"c{i}" for i in range(num_columns)))
    return RelationInstance(relation, columns_data)
