"""Synthetic dataset generators for the paper's evaluation workloads.

The paper evaluates on TPC-H (scale factor 1), a MusicBrainz subset,
and four real profiling datasets (Horse, Plista, Amalgam1, Flight).
None of those are shippable here (size / availability), so this package
generates deterministic stand-ins that preserve what the experiments
actually measure — the FD structure of the denormalized joins and the
character of the single-table FD sets (see DESIGN.md §3):

* :mod:`repro.datagen.tpch` — the 8-table TPC-H snowflake,
* :mod:`repro.datagen.musicbrainz` — an 11-table, non-snowflake music
  encyclopedia with m:n link tables,
* :mod:`repro.datagen.profiles` — Horse/Plista/Amalgam1/Flight-shaped
  single tables,
* :mod:`repro.datagen.denormalize` — join machinery that produces the
  universal relations Normalize is run on,
* :mod:`repro.datagen.random_tables` — small random instances for
  property-based tests.
"""

from repro.datagen.denormalize import denormalize, equi_join
from repro.datagen.musicbrainz import MUSICBRAINZ_GOLD, generate_musicbrainz
from repro.datagen.profiles import (
    amalgam_like,
    flight_like,
    horse_like,
    plista_like,
)
from repro.datagen.random_tables import random_instance
from repro.datagen.tpch import TPCH_GOLD, generate_tpch

__all__ = [
    "MUSICBRAINZ_GOLD",
    "TPCH_GOLD",
    "amalgam_like",
    "denormalize",
    "equi_join",
    "flight_like",
    "generate_musicbrainz",
    "generate_tpch",
    "horse_like",
    "plista_like",
    "random_instance",
]
