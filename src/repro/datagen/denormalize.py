"""Joining relation instances into universal relations.

The paper denormalizes its gold-standard datasets by joining all their
relations into a single universal relation and then asks Normalize to
recover the original schema.  :func:`equi_join` implements one hash
join with natural-join column semantics — the right side's join columns
are dropped, the left side's foreign-key column survives as the shared
attribute.  :func:`denormalize` chains joins along a spec.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["JoinSpec", "denormalize", "equi_join"]


@dataclass(frozen=True, slots=True)
class JoinSpec:
    """One join step: current result ⋈ ``right`` on column pairs.

    ``on`` maps columns of the running result to columns of ``right``;
    the right-hand join columns are dropped from the output (natural
    join semantics: the foreign key and the referenced key collapse
    into one attribute).
    """

    right: RelationInstance
    on: tuple[tuple[str, str], ...]


def equi_join(
    left: RelationInstance,
    right: RelationInstance,
    on: Sequence[tuple[str, str]],
    name: str | None = None,
) -> RelationInstance:
    """Hash-join ``left`` with ``right`` on ``(left_col, right_col)`` pairs.

    Inner join; right join columns are dropped.  Rows multiply when the
    right side has several matches (that is what m:n link tables do to
    the MusicBrainz join).
    """
    if not on:
        raise ValueError("join requires at least one column pair")
    left_cols = [pair[0] for pair in on]
    right_cols = [pair[1] for pair in on]
    dropped = set(right_cols)
    kept_right = [col for col in right.columns if col not in dropped]
    collisions = set(kept_right) & set(left.columns)
    if collisions:
        raise ValueError(
            f"column name collision in join: {sorted(collisions)}; "
            "rename columns before joining"
        )

    index: dict[tuple, list[int]] = {}
    right_key_columns = [right.column(col) for col in right_cols]
    for row_index, key in enumerate(zip(*right_key_columns)):
        index.setdefault(key, []).append(row_index)

    kept_right_data = [right.column(col) for col in kept_right]
    left_key_columns = [left.column(col) for col in left_cols]

    out_columns = tuple(left.columns) + tuple(kept_right)
    rows = []
    left_rows = list(left.iter_rows())
    for row_index, key in enumerate(zip(*left_key_columns)):
        for match in index.get(key, ()):
            rows.append(
                left_rows[row_index]
                + tuple(column[match] for column in kept_right_data)
            )
    relation = Relation(name or f"{left.name}_x_{right.name}", out_columns)
    return RelationInstance.from_rows(relation, rows)


def denormalize(
    root: RelationInstance,
    joins: Sequence[JoinSpec],
    name: str = "denormalized",
    max_rows: int | None = None,
    seed: int = 7,
) -> RelationInstance:
    """Join ``root`` with every spec in order into one universal relation.

    ``max_rows`` caps the result by deterministic sampling (the paper
    limits the MusicBrainz join the same way because the associative
    tables blow up the row count).
    """
    import random

    current = root
    for join in joins:
        current = equi_join(current, join.right, join.on)
    if max_rows is not None and current.num_rows > max_rows:
        rng = random.Random(seed)
        chosen = sorted(rng.sample(range(current.num_rows), max_rows))
        rows = [current.row(i) for i in chosen]
        current = RelationInstance.from_rows(
            Relation(name, current.columns), rows
        )
    else:
        current = current.rename(name)
    return current
