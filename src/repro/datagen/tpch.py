"""A deterministic TPC-H-like snowflake generator (paper §8.1).

The paper denormalizes TPC-H scale factor 1 (6 GB) into one universal
relation and lets Normalize recover the schema (Figure 3).  Recovery
depends on the *FD structure* of the join, not the row count, so this
generator reproduces the 8-table snowflake at laptop scale:

``region ← nation ← {supplier, customer} ; customer ← orders ←
lineitem → partsupp → {part, supplier}``

Like the paper's join, the customer-side and supplier-side paths to
nation/region both appear in the universal relation; their copies are
column-prefixed (``cn_/cr_`` and ``sn_/sr_``) because a universal
relation cannot hold two attributes of the same name.

Faithfulness details:

* ``o_shippriority`` is constant — it is constant in real TPC-H, which
  is exactly why the paper's run misplaces it into REGION.  It is
  declared a wildcard attribute in the gold standard.
* non-key attribute domains are kept moderate so the number of
  *accidental* minimal FDs stays within pure-Python reach; the genuine
  snowflake FDs are what schema recovery feeds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.denormalize import JoinSpec, denormalize
from repro.evaluation.metrics import GoldRelation
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey, Relation

__all__ = ["TPCH_GOLD", "TpchScale", "denormalized_tpch", "generate_tpch"]


@dataclass(frozen=True, slots=True)
class TpchScale:
    """Row counts per table; defaults keep pure-Python discovery fast."""

    regions: int = 5
    nations: int = 10
    suppliers: int = 20
    parts: int = 40
    partsupps: int = 80
    customers: int = 25
    orders: int = 60
    lineitems: int = 220


_SEGMENTS = ("BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE")
_STATUSES = ("O", "F", "P")
_BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 4))
_TYPES = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_SHIPMODES = ("AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_NATION_NAMES = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)


def generate_tpch(
    scale: TpchScale | None = None, seed: int = 42
) -> dict[str, RelationInstance]:
    """Generate the 8 base tables, keys and foreign keys included."""
    scale = scale or TpchScale()
    rng = random.Random(seed)

    region = RelationInstance.from_rows(
        Relation("region", ("r_regionkey", "r_name"), primary_key=("r_regionkey",)),
        [(i, _REGION_NAMES[i % len(_REGION_NAMES)]) for i in range(scale.regions)],
    )

    nation = RelationInstance.from_rows(
        Relation(
            "nation",
            ("n_nationkey", "n_name", "n_regionkey"),
            primary_key=("n_nationkey",),
            foreign_keys=[ForeignKey(("n_regionkey",), "region", ("r_regionkey",))],
        ),
        [
            (i, _NATION_NAMES[i % len(_NATION_NAMES)], rng.randrange(scale.regions))
            for i in range(scale.nations)
        ],
    )

    supplier = RelationInstance.from_rows(
        Relation(
            "supplier",
            ("s_suppkey", "s_name", "s_nationkey", "s_acctbal"),
            primary_key=("s_suppkey",),
            foreign_keys=[ForeignKey(("s_nationkey",), "nation", ("n_nationkey",))],
        ),
        [
            (
                i,
                f"Supplier#{i:05d}",
                rng.randrange(scale.nations),
                f"{rng.randrange(1, 100) * 100}.00",
            )
            for i in range(scale.suppliers)
        ],
    )

    part = RelationInstance.from_rows(
        Relation(
            "part",
            ("p_partkey", "p_name", "p_brand", "p_type", "p_retailprice"),
            primary_key=("p_partkey",),
        ),
        [
            (
                i,
                f"part {i:05d}",
                rng.choice(_BRANDS),
                rng.choice(_TYPES),
                f"{900 + rng.randrange(40) * 5}.00",
            )
            for i in range(scale.parts)
        ],
    )

    partsupp_keys = rng.sample(
        [(p, s) for p in range(scale.parts) for s in range(scale.suppliers)],
        min(scale.partsupps, scale.parts * scale.suppliers),
    )
    partsupp_keys.sort()
    partsupp = RelationInstance.from_rows(
        Relation(
            "partsupp",
            ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
            primary_key=("ps_partkey", "ps_suppkey"),
            foreign_keys=[
                ForeignKey(("ps_partkey",), "part", ("p_partkey",)),
                ForeignKey(("ps_suppkey",), "supplier", ("s_suppkey",)),
            ],
        ),
        [
            (p, s, rng.randrange(1, 100) * 10, f"{rng.randrange(10, 100)}.50")
            for p, s in partsupp_keys
        ],
    )

    customer = RelationInstance.from_rows(
        Relation(
            "customer",
            ("c_custkey", "c_name", "c_nationkey", "c_mktsegment", "c_acctbal"),
            primary_key=("c_custkey",),
            foreign_keys=[ForeignKey(("c_nationkey",), "nation", ("n_nationkey",))],
        ),
        [
            (
                i,
                f"Customer#{i:06d}",
                rng.randrange(scale.nations),
                rng.choice(_SEGMENTS),
                f"{rng.randrange(1, 80) * 125}.00",
            )
            for i in range(scale.customers)
        ],
    )

    orders = RelationInstance.from_rows(
        Relation(
            "orders",
            (
                "o_orderkey",
                "o_custkey",
                "o_orderstatus",
                "o_totalprice",
                "o_orderdate",
                "o_clerk",
                "o_shippriority",
            ),
            primary_key=("o_orderkey",),
            foreign_keys=[ForeignKey(("o_custkey",), "customer", ("c_custkey",))],
        ),
        [
            (
                i,
                rng.randrange(scale.customers),
                rng.choice(_STATUSES),
                f"{rng.randrange(100, 900) * 37}.00",
                f"1996-{rng.randrange(1, 13):02d}-{rng.randrange(1, 28):02d}",
                f"Clerk#{rng.randrange(10):03d}",
                0,  # constant in real TPC-H — the Figure 3 flaw feeds on this
            )
            for i in range(scale.orders)
        ],
    )

    lineitem_rows = []
    for order in range(scale.orders):
        for line in range(1, rng.randrange(1, 1 + max(1, 2 * scale.lineitems // scale.orders))):
            ps_part, ps_supp = partsupp_keys[rng.randrange(len(partsupp_keys))]
            lineitem_rows.append(
                (
                    order,
                    ps_part,
                    ps_supp,
                    line,
                    rng.randrange(1, 50),
                    f"{rng.randrange(100, 999) * 11}.00",
                    f"1996-{rng.randrange(1, 13):02d}-{rng.randrange(1, 28):02d}",
                    rng.choice(_SHIPMODES),
                )
            )
    lineitem = RelationInstance.from_rows(
        Relation(
            "lineitem",
            (
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_linenumber",
                "l_quantity",
                "l_extendedprice",
                "l_shipdate",
                "l_shipmode",
            ),
            primary_key=("l_orderkey", "l_linenumber"),
            foreign_keys=[
                ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
                ForeignKey(
                    ("l_partkey", "l_suppkey"),
                    "partsupp",
                    ("ps_partkey", "ps_suppkey"),
                ),
            ],
        ),
        lineitem_rows,
    )

    return {
        "region": region,
        "nation": nation,
        "supplier": supplier,
        "part": part,
        "partsupp": partsupp,
        "customer": customer,
        "orders": orders,
        "lineitem": lineitem,
    }


def _prefixed_copy(
    instance: RelationInstance, prefix: str, name: str
) -> RelationInstance:
    """Copy a table with every column renamed ``<prefix><original-suffix>``."""
    columns = tuple(
        prefix + column.split("_", 1)[1] for column in instance.columns
    )
    return RelationInstance(Relation(name, columns), instance.columns_data)


def denormalized_tpch(
    scale: TpchScale | None = None, seed: int = 42
) -> RelationInstance:
    """The universal relation: all 8 tables joined (nation/region twice)."""
    tables = generate_tpch(scale, seed)
    nation_c = _prefixed_copy(tables["nation"], "cn_", "nation_c")
    region_c = _prefixed_copy(tables["region"], "cr_", "region_c")
    nation_s = _prefixed_copy(tables["nation"], "sn_", "nation_s")
    region_s = _prefixed_copy(tables["region"], "sr_", "region_s")
    joins = [
        JoinSpec(tables["orders"], (("l_orderkey", "o_orderkey"),)),
        JoinSpec(tables["customer"], (("o_custkey", "c_custkey"),)),
        JoinSpec(nation_c, (("c_nationkey", "cn_nationkey"),)),
        JoinSpec(region_c, (("cn_regionkey", "cr_regionkey"),)),
        JoinSpec(
            tables["partsupp"],
            (("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")),
        ),
        JoinSpec(tables["part"], (("l_partkey", "p_partkey"),)),
        JoinSpec(tables["supplier"], (("l_suppkey", "s_suppkey"),)),
        JoinSpec(nation_s, (("s_nationkey", "sn_nationkey"),)),
        JoinSpec(region_s, (("sn_regionkey", "sr_regionkey"),)),
    ]
    return denormalize(tables["lineitem"], joins, name="tpch_denormalized")


def _fs(*names: str) -> frozenset[str]:
    return frozenset(names)


#: Gold standard in universal-relation column names (the denormalizing
#: join collapsed each FK/PK pair into the FK column).
TPCH_GOLD: list[GoldRelation] = [
    GoldRelation(
        "lineitem",
        _fs(
            "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
            "l_quantity", "l_extendedprice", "l_shipdate", "l_shipmode",
        ),
        key=_fs("l_orderkey", "l_linenumber"),
        references=(
            ("l_orderkey", "orders"),
            ("l_partkey", "partsupp"),
        ),
    ),
    GoldRelation(
        "orders",
        _fs(
            "l_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
            "o_orderdate", "o_clerk", "o_shippriority",
        ),
        key=_fs("l_orderkey"),
        references=(("o_custkey", "customer"),),
        wildcard=_fs("o_shippriority"),
    ),
    GoldRelation(
        "customer",
        _fs("o_custkey", "c_name", "c_nationkey", "c_mktsegment", "c_acctbal"),
        key=_fs("o_custkey"),
        references=(("c_nationkey", "nation_c"),),
    ),
    GoldRelation(
        "nation_c",
        _fs("c_nationkey", "cn_name", "cn_regionkey"),
        key=_fs("c_nationkey"),
        references=(("cn_regionkey", "region_c"),),
    ),
    GoldRelation(
        "region_c", _fs("cn_regionkey", "cr_name"), key=_fs("cn_regionkey")
    ),
    GoldRelation(
        "partsupp",
        _fs("l_partkey", "l_suppkey", "ps_availqty", "ps_supplycost"),
        key=_fs("l_partkey", "l_suppkey"),
        references=(("l_partkey", "part"), ("l_suppkey", "supplier")),
    ),
    GoldRelation(
        "part",
        _fs("l_partkey", "p_name", "p_brand", "p_type", "p_retailprice"),
        key=_fs("l_partkey"),
    ),
    GoldRelation(
        "supplier",
        _fs("l_suppkey", "s_name", "s_nationkey", "s_acctbal"),
        key=_fs("l_suppkey"),
        references=(("s_nationkey", "nation_s"),),
    ),
    GoldRelation(
        "nation_s",
        _fs("s_nationkey", "sn_name", "sn_regionkey"),
        key=_fs("s_nationkey"),
        references=(("sn_regionkey", "region_s"),),
    ),
    GoldRelation(
        "region_s", _fs("sn_regionkey", "sr_name"), key=_fs("sn_regionkey")
    ),
]
