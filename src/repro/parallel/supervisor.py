"""Worker supervision: heartbeats, death/hang detection, respawn.

The pool's original failure model was "workers live forever": a worker
killed by the OOM killer, a segfaulting native call, or a hung child
left ``WorkerPool.map_tasks`` blocked on a result that would never
arrive.  This module owns the *process* side of the self-healing
design (``docs/PARALLEL.md`` has the failure-modes matrix):

* **One queue per worker.**  Tasks are handed to a specific
  :class:`WorkerSlot`, one in flight at a time, so when a worker dies
  the parent knows *exactly* which shard died with it — a shared task
  queue cannot attribute in-flight work.
* **Heartbeats.**  Workers stamp ``time.monotonic()`` into a shared
  double array at task start/end and at every governor probe (every
  ``check_interval`` ticks), so a busy-but-healthy worker on a long
  shard keeps beating.  A busy slot whose last beat (or assignment) is
  older than :data:`HANG_TIMEOUT` is declared hung and SIGKILLed —
  turning a hang into the crash case the rest of the machinery already
  handles.
* **Death detection.**  ``Process.is_alive()``/``exitcode`` checks run
  in the pool's bounded wait loop (every empty poll), so a death is
  noticed within one :data:`POLL_INTERVAL` even though the result
  queue stays silent.
* **Per-worker result pipes, self-framed.**  Results come back over
  a private pipe per worker as ``length || pickle`` frames that the
  parent reads *non-blocking* (``select`` + buffered parse).  No shared
  lock sits on the result path, so a worker SIGKILLed at any instant —
  even mid-write — can never strand a lock or leave the parent blocked
  on a truncated message (a partial frame is simply discarded with the
  dead worker; its shard is retried).  A shared
  ``multiprocessing.Queue`` cannot give this guarantee: its feeder
  thread takes a cross-process write lock, and a worker killed before
  the feeder releases it deadlocks every other worker's results.
* **Respawn with backoff.**  A dead slot gets a fresh queue and a
  fresh process; per-slot backoff grows with the slot's death count.
  :data:`RESPAWN_LIMIT` bounds total respawns per pool — past it (or
  on spawn failure) the pool disables itself and the run degrades to
  in-process execution, recorded in ``PoolStats``.

Retry accounting and poison-shard quarantine live in the pool's batch
loop (``pool.py``); this module knows processes, not payloads.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import struct
import time

from repro.runtime.errors import InputError

__all__ = [
    "HANG_TIMEOUT",
    "POLL_INTERVAL",
    "RESPAWN_BACKOFF",
    "RESPAWN_LIMIT",
    "TASK_DEATH_LIMIT",
    "WorkerSlot",
    "WorkerSupervisor",
    "write_frame",
]


def write_frame(writer, payload: bytes) -> None:
    """Worker-side: one ``length || payload`` frame onto a result pipe.

    Raw ``os.write`` in a loop — no locks, no feeder thread — so the
    only process a mid-write SIGKILL can affect is the writer itself
    (the parent discards the truncated frame with the dead slot).
    """
    fd = writer.fileno()
    view = memoryview(struct.pack("!I", len(payload)) + payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _hang_timeout_default() -> float:
    raw = os.environ.get("REPRO_HANG_TIMEOUT", "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise InputError(
                f"REPRO_HANG_TIMEOUT must be a number of seconds, got {raw!r}"
            ) from None
        if value <= 0:
            raise InputError("REPRO_HANG_TIMEOUT must be > 0")
        return value
    return 30.0


#: Seconds a busy worker may go without a heartbeat before it is
#: declared hung and SIGKILLed.  Generous by default — legitimate
#: shards beat every ``check_interval`` ticks, so only a genuinely
#: stuck worker (native-code loop, deadlock, injected ``worker_hang``)
#: ever gets this old.  Module attribute so tests and the chaos
#: campaign can lower it; ``REPRO_HANG_TIMEOUT`` overrides at import.
HANG_TIMEOUT = _hang_timeout_default()

#: A payload whose execution has killed this many workers is poisoned:
#: the pool stops feeding it to children and quarantines it onto the
#: in-process serial path.
TASK_DEATH_LIMIT = 2

#: Total respawns one pool will attempt before disabling itself.
RESPAWN_LIMIT = 16

#: Base respawn delay; multiplied by the slot's death count (capped).
RESPAWN_BACKOFF = 0.05

#: Bounded-get timeout of the pool's wait loop; also the cadence of
#: death/hang checks while results are quiet.
POLL_INTERVAL = 0.02


class WorkerSlot:
    """One worker position: a process, its private task queue, its
    result pipe, and the parent-side bookkeeping of what it is running
    right now."""

    __slots__ = (
        "id",
        "proc",
        "queue",
        "reader",
        "rbuf",
        "busy",
        "epoch",
        "index",
        "assigned_at",
        "deaths",
    )

    def __init__(self, slot_id: int) -> None:
        self.id = slot_id
        self.proc = None
        self.queue = None
        self.reader = None  # parent end of this worker's result pipe
        self.rbuf = bytearray()  # partial-frame buffer for the pipe
        self.busy = False
        self.epoch = 0  # epoch of the currently assigned task
        self.index = None  # payload index of the currently assigned task
        self.assigned_at = 0.0
        self.deaths = 0  # how many processes died in this slot

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class WorkerSupervisor:
    """Owns the worker processes of one pool.

    The pool hands over everything a worker needs at spawn time (the
    shared results queue, cancel event, epoch counter, heartbeat array,
    and the worker-fault flag) so a respawned process is
    indistinguishable from an original one: it re-attaches shared
    memory lazily through the normal task path and picks up work from
    its fresh queue.
    """

    def __init__(
        self,
        ctx,
        workers: int,
        target,
        cancel_flag,
        epoch_value,
        fault_flag,
        stats,
    ) -> None:
        self._ctx = ctx
        self._target = target
        self._cancel = cancel_flag
        self._epoch_value = epoch_value
        self._fault_flag = fault_flag
        self._stats = stats
        self.heartbeats = ctx.Array("d", workers, lock=False)
        self.slots = [WorkerSlot(slot_id) for slot_id in range(workers)]

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def start(self) -> None:
        for slot in self.slots:
            self._spawn(slot)

    def _spawn(self, slot: WorkerSlot) -> None:
        old_queue = slot.queue
        old_reader = slot.reader
        slot.queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        slot.reader = reader
        slot.rbuf = bytearray()
        slot.proc = self._ctx.Process(
            target=self._target,
            args=(
                slot.id,
                slot.queue,
                writer,
                self._cancel,
                self._epoch_value,
                self.heartbeats,
                self._fault_flag,
            ),
            daemon=True,
        )
        slot.proc.start()
        self.heartbeats[slot.id] = time.monotonic()
        # The child owns the write end now; other (earlier-forked)
        # workers may still hold inherited copies, which is why death
        # detection rests on exitcodes, not EOF.
        writer.close()
        if old_queue is not None:
            # A replaced queue may hold an undelivered task; never let
            # its feeder thread block interpreter exit over it.
            try:
                old_queue.cancel_join_thread()
                old_queue.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        if old_reader is not None:
            try:
                old_reader.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def respawn(self, slot: WorkerSlot) -> bool:
        """Replace a dead slot's process; False = give up (disable pool)."""
        slot.deaths += 1
        self._stats.respawns += 1
        if self._stats.respawns > RESPAWN_LIMIT:
            return False
        time.sleep(min(RESPAWN_BACKOFF * slot.deaths, 0.25))
        try:
            self._spawn(slot)
        except OSError:  # pragma: no cover - fork/pipe exhaustion
            return False
        return True

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------
    def slot_by_id(self, worker_id: int) -> WorkerSlot | None:
        if 0 <= worker_id < len(self.slots):
            return self.slots[worker_id]
        return None

    def idle_slot(self) -> WorkerSlot | None:
        for slot in self.slots:
            if not slot.busy and slot.alive:
                return slot
        return None

    def assign(self, slot: WorkerSlot, item, epoch: int, index: int) -> None:
        slot.busy = True
        slot.epoch = epoch
        slot.index = index
        slot.assigned_at = time.monotonic()
        slot.queue.put(item)

    def complete(self, slot: WorkerSlot) -> None:
        slot.busy = False
        slot.index = None

    def busy_count(self, epoch: int) -> int:
        return sum(1 for slot in self.slots if slot.busy and slot.epoch == epoch)

    # ------------------------------------------------------------------
    # Result pipes
    # ------------------------------------------------------------------
    def poll_results(self, timeout: float) -> list:
        """Messages from every worker whose result pipe has data.

        Non-blocking by construction: ``select`` names the readable
        pipes, one ``os.read`` per pipe takes whatever bytes are there,
        and only *complete* frames are decoded — a truncated frame from
        a worker killed mid-write just sits in the slot buffer until
        the death sweep discards it with the slot.
        """
        readers = {
            slot.reader.fileno(): slot for slot in self.slots if slot.reader
        }
        if not readers:
            time.sleep(timeout)
            return []
        try:
            ready, _, _ = select.select(list(readers), [], [], timeout)
        except OSError:  # pragma: no cover - raced a respawn's close
            return []
        messages: list = []
        for fd in ready:
            frames, _ = self._read_frames(readers[fd])
            messages.extend(frames)
        return messages

    def drain(self, slot: WorkerSlot) -> list:
        """Everything currently readable from one slot's pipe.

        Used by the death handler before respawning: a worker that
        posted its result and *then* died completes its shard here
        instead of being counted as lost.
        """
        messages: list = []
        if slot.reader is None:
            return messages
        while True:
            try:
                ready, _, _ = select.select([slot.reader.fileno()], [], [], 0)
            except OSError:  # pragma: no cover - closed under us
                break
            if not ready:
                break
            frames, grew = self._read_frames(slot)
            messages.extend(frames)
            if not grew:
                break  # EOF: nothing more will ever arrive
        return messages

    def _read_frames(self, slot: WorkerSlot) -> tuple[list, bool]:
        """One ``os.read`` into the slot buffer, then every whole frame.

        Returns ``(messages, got_bytes)``; ``got_bytes`` is False at
        EOF so drain loops can stop.
        """
        try:
            chunk = os.read(slot.reader.fileno(), 1 << 20)
        except OSError:  # pragma: no cover - pipe torn down under us
            chunk = b""
        if chunk:
            slot.rbuf.extend(chunk)
        messages: list = []
        buf = slot.rbuf
        while len(buf) >= 4:
            (length,) = struct.unpack_from("!I", buf, 0)
            if len(buf) < 4 + length:
                break
            payload = bytes(buf[4 : 4 + length])
            del buf[: 4 + length]
            try:
                messages.append(pickle.loads(payload))
            except Exception:  # pragma: no cover - corrupt frame
                continue
        return messages, bool(chunk)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def is_hung(self, slot: WorkerSlot, now: float) -> bool:
        """A busy slot whose heartbeat and assignment are both stale."""
        if not slot.busy:
            return False
        last_sign_of_life = max(self.heartbeats[slot.id], slot.assigned_at)
        return (now - last_sign_of_life) > HANG_TIMEOUT

    def kill(self, slot: WorkerSlot) -> None:
        """SIGKILL a (hung) worker; the caller then treats it as dead."""
        proc = slot.proc
        if proc is None or proc.pid is None:
            return
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - raced
            pass
        proc.join(5.0)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def shutdown(self, terminate: bool = False) -> None:
        """Stop every worker: sentinels + join, or terminate outright."""
        for slot in self.slots:
            if slot.proc is None:
                continue
            if not terminate and slot.proc.is_alive():
                try:
                    slot.queue.put(None)
                except Exception:  # pragma: no cover - broken pipe
                    pass
        for slot in self.slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=0.5 if terminate else 2.0)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():  # pragma: no cover - stuck in kernel
                self.kill(slot)
            if slot.queue is not None:
                try:
                    slot.queue.cancel_join_thread()
                    slot.queue.close()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
            if slot.reader is not None:
                try:
                    slot.reader.close()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
            slot.proc = None
            slot.queue = None
            slot.reader = None
            slot.rbuf = bytearray()
            slot.busy = False
            slot.index = None
