"""Worker-side task handlers and the per-worker attachment cache.

Each handler receives one picklable payload dict and returns a
picklable result; the pool guarantees results come back to the parent
in payload order, so every handler here only has to be a *pure
function of its payload plus the shared-memory segment it names* —
that is the whole deterministic-merge contract.

Row data never travels through payloads: handlers that touch records
carry a :class:`~repro.parallel.shm.ShmHandle` and attach the exported
relation zero-copy.  Attachments (and the worker-side ``PLICache``
built over them) are memoized per segment for the lifetime of the
worker, so a multi-level discovery run attaches each relation once.

Handlers run under the worker's own governor (installed by the pool's
worker loop), so the ``checkpoint``/``add_candidates`` calls inside the
library code they delegate to enforce the propagated budget and poll
the batch-cancel event at the usual cooperative granularity.
"""

from __future__ import annotations

import time
from array import array

__all__ = [
    "TASK_HANDLERS",
    "reset_worker_caches",
    "worker_attach_seconds",
]

# Segment name → (EncodedRelation view, SharedMemory, PLICache | None).
_ATTACHMENTS: dict[str, tuple] = {}
_ATTACH_SECONDS = 0.0


def worker_attach_seconds() -> float:
    """Cumulative time this worker spent attaching segments."""
    return _ATTACH_SECONDS


def reset_worker_caches() -> None:
    """Close every shared-memory attachment and drop cached state.

    Called on worker start (forked children inherit the parent's module
    globals — a fork must never reuse the parent's attachments) and on
    worker shutdown (so mappings are released deterministically).  The
    memoryviews carved out of each segment must be released before the
    mapping can close, or ``mmap`` refuses with a ``BufferError``.
    """
    global _ATTACH_SECONDS
    for encoding, shm, _ in _ATTACHMENTS.values():
        for codes in encoding.codes:
            try:
                codes.release()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        try:
            shm.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
    _ATTACHMENTS.clear()
    _ATTACH_SECONDS = 0.0


def _attached(handle):
    """Return (encoding, cache) for a segment, attaching on first use."""
    global _ATTACH_SECONDS
    entry = _ATTACHMENTS.get(handle.segment)
    if entry is None:
        from repro.parallel.shm import attach_encoding

        started = time.perf_counter()
        encoding, shm = attach_encoding(handle)
        _ATTACH_SECONDS += time.perf_counter() - started
        entry = (encoding, shm, None)
        _ATTACHMENTS[handle.segment] = entry
    return entry[0]


def _attached_cache(handle):
    """Worker-side ``PLICache`` over an attached relation (memoized)."""
    encoding = _attached(handle)
    entry = _ATTACHMENTS[handle.segment]
    if entry[2] is None:
        from repro.structures.partitions import PLICache

        cache = PLICache(
            instance=None,
            null_equals_null=handle.null_equals_null,
            encoding=encoding,
        )
        entry = (entry[0], entry[1], cache)
        _ATTACHMENTS[handle.segment] = entry
    return entry[2]


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------
def _closure_shard(payload: dict) -> list[int]:
    """Extend one contiguous shard of a closure computation's FDs.

    The tries are rebuilt from the *original* FD pairs — exactly the
    read-only structure the serial algorithms consult — so extending
    any shard in any process yields the serial result for those FDs.
    """
    from repro.core.closure import (
        _build_lhs_tries,
        _extend_improved,
        _extend_optimized,
    )

    pairs = [[lhs, rhs] for lhs, rhs in payload["pairs"]]
    num_attributes = payload["num_attributes"]
    tries = _build_lhs_tries(pairs, num_attributes)
    all_attrs = (1 << num_attributes) - 1
    extend = (
        _extend_improved
        if payload["algorithm"] == "improved"
        else _extend_optimized
    )
    out = []
    for index in range(payload["start"], payload["stop"]):
        fd = pairs[index]
        extend(fd, tries, all_attrs)
        out.append(fd[1])
    return out


def _agree_pairs(payload: dict) -> list[int]:
    """Agree-set masks for a shard of record pairs (sampler hot path).

    Under the numpy backend the whole shard goes through one batched
    kernel call (checkpointing once with the shard's unit count);
    otherwise the pairs are compared one by one.  Both paths return the
    masks in pair order, so the parent's dedup replay is identical.
    """
    from repro import kernels
    from repro.runtime.governor import checkpoint

    encoding = _attached(payload["handle"])
    pairs = payload["pairs"]
    if kernels.backend_name() == "numpy" and len(pairs) > 1:
        checkpoint("hyfd-sample", units=len(pairs))
        lefts = [pair[0] for pair in pairs]
        rights = [pair[1] for pair in pairs]
        return encoding.agree_sets_batch(lefts, rights)
    agree_set = encoding.agree_set
    out = []
    for left, right in pairs:
        checkpoint("hyfd-sample")
        out.append(agree_set(left, right))
    return out


def _hyfd_validate(payload: dict) -> list[list[tuple[int, int]]]:
    """Validate a shard of (lhs, rhs attributes) candidates.

    Per candidate: the refuted RHS attributes in ascending order, each
    with the full agree set of its violating record pair — everything
    the parent needs to replay ``remove`` + ``specialize`` in serial
    candidate order.
    """
    from repro.runtime.governor import checkpoint

    cache = _attached_cache(payload["handle"])
    encoding = cache.encoding
    out = []
    for lhs, rhs_attrs in payload["items"]:
        checkpoint("hyfd-validate")
        probes = [cache.probe(attr) for attr in rhs_attrs]
        violations = cache.get(lhs).find_violations(rhs_attrs, probes)
        refuted = []
        for rhs_attr in rhs_attrs:
            pair = violations.get(rhs_attr)
            if pair is not None:
                refuted.append((rhs_attr, encoding.agree_set(*pair)))
        out.append(refuted)
    return out


def _tane_generate(payload: dict) -> list[tuple[bytes, bytes, int]]:
    """Intersect a shard of TANE next-level candidates.

    ``firsts`` carries the parent's authoritative prefix partitions as
    CSR bytes; the single-attribute side comes from the shared-memory
    codes.  ``intersect_ids`` is deterministic in (partition, codes),
    so the returned CSR bytes are identical to the serial product.
    """
    from repro.runtime.governor import add_candidates
    from repro.structures.partitions import StrippedPartition

    encoding = _attached(payload["handle"])
    num_rows = encoding.num_rows
    firsts = {
        mask: StrippedPartition._from_csr(
            _int_array(rows), _int_array(offsets), num_rows
        )
        for mask, (rows, offsets) in payload["firsts"].items()
    }
    out = []
    for first, attr in payload["items"]:
        add_candidates(1, "tane-generate")
        partition = firsts[first].intersect_ids(encoding.codes[attr])
        out.append(
            (
                partition.row_data.tobytes(),
                partition.offsets.tobytes(),
                partition.error,
            )
        )
    return out


def _keys_violations(payload: dict) -> tuple[list[int], list[tuple[int, int]]]:
    """Key derivation + violating-FD detection for one queued relation.

    Both are pure functions of the extended FD set and the relation
    metadata masks, so parent- and worker-side evaluation coincide
    exactly (the decomposition queue's prefetch relies on this).
    """
    from repro.core.key_derivation import derive_keys
    from repro.core.violations import find_violating_fds
    from repro.model.fd import FDSet

    fds = FDSet(payload["num_attributes"])
    for lhs, rhs in payload["items"]:
        fds.add_masks(lhs, rhs)
    keys = derive_keys(fds, payload["relation_mask"])
    violating = find_violating_fds(
        fds,
        keys,
        null_mask=payload["null_mask"],
        primary_key=payload["primary_key"],
        foreign_keys=tuple(payload["foreign_keys"]),
        target=payload["target"],
    )
    return keys, [(fd.lhs, fd.rhs) for fd in violating]


def _verify_chunk(payload: dict) -> tuple[list[int], int, list, int]:
    """Run the verification battery for one contiguous seed chunk."""
    from repro.verification.runner import verify_seeds

    report = verify_seeds(
        payload["seeds"],
        num_rows=payload["num_rows"],
        max_columns=payload["max_columns"],
        shrink=payload["shrink"],
        fd_algorithms=payload["fd_algorithms"],
        ucc_algorithms=payload["ucc_algorithms"],
        workers=1,
    )
    for failure in report.failures:
        # Encoding memos are bulky and derivable — never pickle them.
        failure.instance.invalidate_caches()
        if failure.shrunk is not None:
            failure.shrunk.invalidate_caches()
    return (
        report.seeds,
        report.checks_run,
        report.failures,
        report.dependency_losses,
    )


def _int_array(raw: bytes) -> array:
    out = array("i")
    out.frombytes(raw)
    return out


def _chaos_probe(payload: dict) -> dict:
    """Controlled misbehavior for supervisor tests and the chaos campaign.

    ``action`` selects the failure; ``marker`` (a path) makes it
    *transient*: the first execution creates the marker and then fails,
    the retry finds the marker and succeeds — without a marker the
    payload is poison (fails every time, forcing quarantine).  The
    process-fatal actions only fire inside a real pool worker so the
    quarantined in-process execution can complete.
    """
    import os as _os

    from repro.runtime.governor import checkpoint

    action = payload.get("action", "echo")
    marker = payload.get("marker")
    checkpoint("chaos-probe")
    survived = {"value": payload.get("value"), "pid": _os.getpid()}
    if action == "echo":
        return survived
    if action == "raise_input":
        from repro.runtime.errors import InputError

        raise InputError(payload.get("message", "chaos probe input error"))
    if action == "raise_value":
        raise ValueError(payload.get("message", "chaos probe value error"))
    if marker is not None:
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            return survived  # the retry after the first crash
    from repro.parallel import pool as pool_module

    if not pool_module._IN_WORKER:
        return survived  # quarantined in-process: succeed serially
    if action == "kill":
        import signal as _signal

        _os.kill(_os.getpid(), _signal.SIGKILL)
    if action == "exit":
        _os._exit(payload.get("status", 137))
    if action == "hang":
        import time as _time

        while True:
            _time.sleep(0.05)
    raise ValueError(f"unknown chaos action {action!r}")


def _pool_probe(payload: dict) -> dict:
    """Report the executing process's pool-related state (tests only)."""
    import os as _os

    from repro.parallel import pool as pool_module
    from repro.runtime.governor import checkpoint

    for _ in range(payload.get("ticks", 1)):
        checkpoint("pool-probe")
    return {
        "pid": _os.getpid(),
        "in_worker": pool_module._IN_WORKER,
        "resolved_workers": pool_module.resolve_workers(),
        "value": payload.get("value"),
    }


TASK_HANDLERS = {
    "closure_shard": _closure_shard,
    "agree_pairs": _agree_pairs,
    "hyfd_validate": _hyfd_validate,
    "tane_generate": _tane_generate,
    "keys_violations": _keys_violations,
    "verify_chunk": _verify_chunk,
    "chaos_probe": _chaos_probe,
    "pool_probe": _pool_probe,
}
