"""Process-parallel execution layer with shared-memory columnar relations.

The paper runs closure calculation and FD validation in parallel inside
Metanome; this package is the reproduction's equivalent, built for
CPython where threads cannot speed up CPU-bound work (the former
``ThreadPoolExecutor`` closure path was a GIL-bound no-op, see
DESIGN.md §3):

* :mod:`repro.parallel.shm` — zero-copy export of a relation's
  dictionary-encoded columns into one ``multiprocessing.shared_memory``
  segment; workers attach views, no row data is ever pickled,
* :mod:`repro.parallel.pool` — a persistent process pool with budget
  propagation, cooperative cancellation, and order-preserving batch
  dispatch,
* :mod:`repro.parallel.supervisor` — worker supervision: heartbeats,
  death/hang detection, respawn with backoff; together with the pool's
  retry/quarantine logic this makes the layer self-healing (a crashed,
  OOM-killed, or hung worker costs a retry, not the run),
* :mod:`repro.parallel.tasks` — the worker-side handlers for the hot
  paths (closure shards, HyFD validation and sampling, TANE level
  generation, decomposition fan-out, verification campaigns).

The determinism contract (see ``docs/PARALLEL.md``): results are merged
in payload order and every handler is a pure function of its payload
plus the named shared segment, so parallel runs produce byte-identical
FD covers, key sets, and DDL to serial runs at any worker count.

:class:`RelationRun` below is the small façade the hot paths actually
use: it owns the lazy shared-memory export of one relation, applies the
serial-fallback cost model, and snapshots pool counters so each
algorithm run can report the delta it caused.
"""

from __future__ import annotations

from repro.parallel.pool import (
    MAX_WORKERS,
    PoolStats,
    WorkerCrashError,
    WorkerError,
    WorkerPool,
    get_pool,
    pool_stats,
    resolve_workers,
    should_parallelize,
    shutdown_pool,
)
from repro.parallel.shm import (
    SharedRelation,
    ShmHandle,
    attach_encoding,
    export_encoding,
    reap_orphan_segments,
    release_owned_segments,
)
from repro.parallel.supervisor import WorkerSupervisor

__all__ = [
    "MAX_WORKERS",
    "PoolStats",
    "RelationRun",
    "SharedRelation",
    "ShmHandle",
    "WorkerCrashError",
    "WorkerError",
    "WorkerPool",
    "WorkerSupervisor",
    "attach_encoding",
    "export_encoding",
    "get_pool",
    "pool_stats",
    "reap_orphan_segments",
    "release_owned_segments",
    "resolve_workers",
    "should_parallelize",
    "shutdown_pool",
    "split_ranges",
]


def split_ranges(count: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into at most ``parts`` contiguous ranges.

    Contiguous (not strided) shards keep every merge a simple
    concatenation in payload order — the backbone of the deterministic
    shard/merge protocol.
    """
    if count <= 0:
        return []
    parts = max(1, min(parts, count))
    step, extra = divmod(count, parts)
    ranges = []
    start = 0
    for index in range(parts):
        stop = start + step + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class RelationRun:
    """One algorithm run's hook into the pool, for one relation.

    Owns the (lazy) shared-memory export of the relation's encoding —
    created on the first shard dispatch that needs it, unlinked in
    :meth:`close` — plus the cost-model gate and the pool-stats
    snapshot that lets the caller report per-run counters.
    """

    __slots__ = ("workers", "pool", "_encoding", "_shared", "_mark", "stats")

    def __init__(self, workers: int, encoding=None) -> None:
        self.workers = workers
        self.pool = get_pool(workers)
        self._encoding = encoding
        self._shared: SharedRelation | None = None
        self._mark = self.pool.stats.copy()
        self.stats: PoolStats | None = None

    @property
    def handle(self) -> ShmHandle:
        """The exported relation's handle (exports on first use)."""
        if self._shared is None:
            if self._encoding is None:
                raise ValueError("RelationRun was created without an encoding")
            self._shared = export_encoding(self._encoding)
            self.pool.stats.export_seconds += self._shared.export_seconds
        return self._shared.handle

    def should(self, work_units: int) -> bool:
        """Cost-model gate; counts the serial fallback when it says no."""
        if should_parallelize(work_units, self.workers):
            return True
        self.pool.stats.serial_fallbacks += 1
        return False

    def map(self, kind: str, payloads: list, stage: str, items: int = 0) -> list:
        self.pool.stats.shard_items += items
        return self.pool.map_tasks(kind, payloads, stage=stage)

    def ranges(self, count: int) -> list[tuple[int, int]]:
        return split_ranges(count, self.workers)

    def close(self) -> None:
        """Unlink the export (workers keep serving their mappings) and
        freeze this run's pool-counter delta into :attr:`stats`."""
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        self.stats = self.pool.stats.delta_since(self._mark)

    def __enter__(self) -> "RelationRun":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
