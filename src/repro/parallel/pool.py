"""Persistent process pool with budget propagation and deterministic merge.

One :class:`WorkerPool` serves the whole process: hot paths submit
batches of task payloads (:meth:`WorkerPool.map_tasks`) and always get
results back **in payload order**, which is what makes every parallel
code path's merge step deterministic regardless of worker scheduling.

Design points, each load-bearing:

* **Persistent workers** — processes are forked once (spawn on
  platforms without fork) and reused across batches, so per-relation
  state (shared-memory attachments, worker-side ``PLICache``) amortizes
  over a whole discovery run instead of being rebuilt per task.
* **Budget propagation** — each batch snapshots the ambient
  :class:`~repro.runtime.governor.Governor` (remaining deadline, memory
  ceiling) and workers enforce it in their own governor at their own
  cooperative checkpoints.  A worker breach cancels the rest of the
  batch (a shared event every worker governor polls) and surfaces in
  the parent as an ordinary :class:`BudgetExceeded`, so every existing
  salvage/degradation path works unchanged.  Candidate-work counts are
  folded back through :func:`~repro.runtime.governor.add_candidates`,
  keeping the global ``max_candidates`` cap authoritative (enforced at
  batch merge rather than mid-shard — the documented difference to
  serial runs).
* **Parent stays cooperative** — while waiting for results the parent
  keeps ticking its own checkpoints, so deadlines, and in particular
  injected faults (``FaultPlan`` kills), still fire *mid-shard*; an
  epoch counter lets the pool discard the orphaned batch afterwards and
  stay usable for the resumed run.
* **Self-healing under worker failure** — every task is assigned to a
  specific worker through its private queue (so a death names the lost
  shard), the wait loop's bounded gets interleave supervision passes
  (``Process.exitcode`` + heartbeat checks, see
  :mod:`repro.parallel.supervisor`), dead workers are respawned and
  their shard retried, payloads that kill :data:`supervisor_mod.TASK_DEATH_LIMIT`
  workers are quarantined onto the in-process serial path, and
  repeated respawn failure disables the pool for the rest of the run
  (serial fallback, recorded in :class:`PoolStats`).  All of this is
  invisible to results: handlers are pure functions of their payloads,
  so a retried or quarantined shard merges byte-identically.
* **Fork hygiene** — workers reset inherited process state on start
  (ambient governor, the partition probe buffer, any shared-memory
  attachments) via :func:`_reset_worker_state`; nested pools are
  refused (``resolve_workers`` reports 1 inside a worker).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass

from repro.parallel import supervisor as supervisor_mod
from repro.parallel.supervisor import WorkerSupervisor
from repro.runtime.errors import (
    BudgetExceeded,
    InputError,
    ReproError,
    WorkerCrashError,
)
from repro.runtime.governor import (
    Budget,
    Governor,
    activate,
    add_candidates,
    checkpoint,
    current_governor,
)

__all__ = [
    "PoolStats",
    "WorkerCrashError",
    "WorkerError",
    "WorkerPool",
    "get_pool",
    "resolve_workers",
    "should_parallelize",
    "shutdown_pool",
]

#: Minimum estimated work units (roughly rows × candidates) below which
#: a hot path stays serial — small inputs must not pay pool overhead.
#: Read at call time so tests can monkeypatch it to force either path.
SERIAL_THRESHOLD = 50_000

#: Hard cap honoured by :func:`resolve_workers` (sanity bound).
MAX_WORKERS = 64

_IN_WORKER = False  # set in forked/spawned children; forbids nesting


class WorkerError(RuntimeError):
    """A task raised an unexpected exception inside a worker.

    ``remote_traceback`` carries the worker-side formatted traceback;
    it is also chained as ``__cause__`` (via :class:`_RemoteTraceback`)
    so the parent's traceback display shows the real failing frame
    instead of the queue plumbing.
    """

    def __init__(self, message: str, remote_traceback: str | None = None) -> None:
        self.remote_traceback = remote_traceback
        super().__init__(message)


class _RemoteTraceback(Exception):
    """Carrier for a worker's traceback text, used as ``__cause__``."""

    def __init__(self, text: str) -> None:
        self.text = text
        super().__init__(text)

    def __str__(self) -> str:
        return f"\n\"\"\"\n{self.text}\"\"\""


class _Cancelled(Exception):
    """Internal: the batch was cancelled while this task ran."""


class _RawFlag:
    """A lock-free cross-process boolean (single writer: the parent).

    Deliberately *not* a ``multiprocessing.Event``: every Event/Value
    accessor takes a cross-process lock, and a worker SIGKILLed inside
    that window would strand the lock for the whole process family.
    A raw shared int has no such window — workers only ever read it.
    """

    __slots__ = ("_value",)

    def __init__(self, ctx) -> None:
        self._value = ctx.Value("i", 0, lock=False)

    def set(self) -> None:
        self._value.value = 1

    def clear(self) -> None:
        self._value.value = 0

    def is_set(self) -> bool:
        return bool(self._value.value)


def resolve_workers(explicit: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument > ``REPRO_WORKERS`` env var > 1
    (serial).  Inside a pool worker this always returns 1 — parallel
    sections encountered by worker-side code run serially instead of
    forking grandchildren.
    """
    if _IN_WORKER:
        return 1
    value = explicit
    if value is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise InputError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
    if value is None:
        return 1
    if value < 1:
        raise InputError("worker count must be >= 1")
    return min(value, MAX_WORKERS)


def should_parallelize(work_units: int, workers: int) -> bool:
    """Cost model: is ``work_units`` worth dispatching to ``workers``?

    ``work_units`` approximates rows × candidates of the section; the
    threshold keeps tiny inputs (most unit tests, small relations) on
    the serial path where they are faster anyway.
    """
    return workers > 1 and not _IN_WORKER and work_units >= SERIAL_THRESHOLD


@dataclass(slots=True)
class PoolStats:
    """Counters of one pool (cumulative; snapshot with :meth:`copy`)."""

    workers: int = 0
    batches: int = 0
    tasks_dispatched: int = 0
    serial_fallbacks: int = 0
    cancelled_tasks: int = 0
    #: rows shipped through task payloads is zero by design; these count
    #: the shared-memory side instead
    attach_seconds: float = 0.0
    export_seconds: float = 0.0
    largest_shard: int = 0
    shard_items: int = 0
    #: supervision counters (docs/PARALLEL.md failure-modes matrix)
    respawns: int = 0
    retries: int = 0
    quarantined: int = 0
    heartbeat_misses: int = 0
    in_process_tasks: int = 0
    worker_faults_fired: int = 0
    pool_disabled: int = 0  # 0/1: the pool gave up and went serial

    def copy(self) -> "PoolStats":
        return PoolStats(
            workers=self.workers,
            batches=self.batches,
            tasks_dispatched=self.tasks_dispatched,
            serial_fallbacks=self.serial_fallbacks,
            cancelled_tasks=self.cancelled_tasks,
            attach_seconds=self.attach_seconds,
            export_seconds=self.export_seconds,
            largest_shard=self.largest_shard,
            shard_items=self.shard_items,
            respawns=self.respawns,
            retries=self.retries,
            quarantined=self.quarantined,
            heartbeat_misses=self.heartbeat_misses,
            in_process_tasks=self.in_process_tasks,
            worker_faults_fired=self.worker_faults_fired,
            pool_disabled=self.pool_disabled,
        )

    def delta_since(self, mark: "PoolStats") -> "PoolStats":
        return PoolStats(
            workers=self.workers,
            batches=self.batches - mark.batches,
            tasks_dispatched=self.tasks_dispatched - mark.tasks_dispatched,
            serial_fallbacks=self.serial_fallbacks - mark.serial_fallbacks,
            cancelled_tasks=self.cancelled_tasks - mark.cancelled_tasks,
            attach_seconds=self.attach_seconds - mark.attach_seconds,
            export_seconds=self.export_seconds - mark.export_seconds,
            largest_shard=self.largest_shard,
            shard_items=self.shard_items - mark.shard_items,
            respawns=self.respawns - mark.respawns,
            retries=self.retries - mark.retries,
            quarantined=self.quarantined - mark.quarantined,
            heartbeat_misses=self.heartbeat_misses - mark.heartbeat_misses,
            in_process_tasks=self.in_process_tasks - mark.in_process_tasks,
            worker_faults_fired=self.worker_faults_fired,
            pool_disabled=self.pool_disabled,
        )

    def as_dict(self) -> dict[str, int]:
        """Integer counters for ``DataProfile.counters`` (times in µs)."""
        return {
            "pool_workers": self.workers,
            "pool_batches": self.batches,
            "pool_tasks": self.tasks_dispatched,
            "pool_serial_fallbacks": self.serial_fallbacks,
            "pool_cancelled_tasks": self.cancelled_tasks,
            "pool_attach_us": int(self.attach_seconds * 1e6),
            "pool_export_us": int(self.export_seconds * 1e6),
            "pool_largest_shard": self.largest_shard,
            "pool_shard_items": self.shard_items,
            "pool_respawns": self.respawns,
            "pool_retries": self.retries,
            "pool_quarantined": self.quarantined,
            "pool_heartbeat_misses": self.heartbeat_misses,
            "pool_in_process_tasks": self.in_process_tasks,
            "pool_worker_faults": self.worker_faults_fired,
            "pool_disabled": self.pool_disabled,
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerGovernor(Governor):
    """A worker's governor: the propagated budget, the cancel event, and
    the heartbeat slot this worker stamps at every probe."""

    __slots__ = ("cancel_event", "heartbeats", "worker_slot")

    def __init__(
        self, budget: Budget, cancel_event, heartbeats=None, worker_slot: int = 0
    ) -> None:
        super().__init__(budget)
        self.cancel_event = cancel_event
        self.heartbeats = heartbeats
        self.worker_slot = worker_slot

    def _probe(self, stage: str) -> None:
        if self.heartbeats is not None:
            self.heartbeats[self.worker_slot] = time.monotonic()
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise _Cancelled(stage)
        super()._probe(stage)


def _reset_worker_state() -> None:
    """Reset process state a forked child inherited from the parent.

    Forked workers share the parent's module globals by copy; anything
    that is (a) mutable and (b) semantically owned by the *run* rather
    than the *process* must be cleared so no parent state leaks into
    worker computations:

    * the ambient governor (a worker must never tick the parent's
      budget object — it gets its own per task),
    * the partition probe buffer (could hold in-flight entries if the
      fork ever raced an intersect; cleared defensively),
    * worker-side relation caches from a previous pool generation
      (only relevant after fork-from-worker, which is refused anyway).

    The per-instance encoding memo (``RelationInstance._encodings``)
    and parent ``PLICache`` objects need no reset: workers never see
    parent instances — row data only ever arrives via shared memory.
    """
    global _IN_WORKER, _POOL
    _IN_WORKER = True
    _POOL = None  # never reuse the parent's pool object (inherited queues)
    from repro.runtime import governor as governor_module
    from repro.structures import partitions as partitions_module

    governor_module._ACTIVE = None
    partitions_module.reset_process_state()
    from repro.parallel import tasks as tasks_module

    tasks_module.reset_worker_caches()


def _budget_from_snapshot(
    snapshot: dict | None, cancel_event, heartbeats=None, worker_slot: int = 0
) -> _WorkerGovernor:
    if snapshot is None:
        budget = Budget()
    else:
        remaining = snapshot.get("deadline_remaining")
        budget = Budget(
            deadline_seconds=max(remaining, 1e-6) if remaining is not None else None,
            max_memory_bytes=snapshot.get("max_memory_bytes"),
            check_interval=snapshot.get("check_interval", 256),
        )
    return _WorkerGovernor(budget, cancel_event, heartbeats, worker_slot)


def _describe_remote_error(exc: BaseException) -> dict:
    """Picklable description of a worker exception.

    The formatted traceback always travels (chained into the parent's
    raise so error reports show the real failing frame); taxonomy
    errors additionally travel pickled so the parent can re-raise the
    *original* type and the CLI exit codes stay truthful.
    """
    info = {
        "type": type(exc).__name__,
        "traceback": traceback.format_exc(),
        "pickled": None,
    }
    if isinstance(exc, ReproError):
        try:
            info["pickled"] = pickle.dumps(exc)
        except Exception:  # pragma: no cover - unpicklable payload attrs
            pass
    return info


def _worker_fault_plan(fault: dict, fault_flag):
    """Rebuild the parent's worker-level fault plan inside a worker."""
    from repro.runtime.faults import FaultPlan

    plan = FaultPlan(
        mode=fault["mode"], at_tick=fault["at_tick"], stage=fault.get("stage")
    )
    plan.shared_flag = fault_flag
    return plan


def _post_result(writer, message: tuple) -> None:
    """Frame and send one result tuple; never lose the shard to pickle.

    An unpicklable task value is downgraded to an ``"error"`` message
    (with the pickle failure's traceback) instead of crashing the
    worker — the parent then raises a proper :class:`WorkerError`
    rather than retrying a payload that can never report back.
    """
    try:
        payload = pickle.dumps(message)
    except Exception as exc:
        payload = pickle.dumps(
            (message[0], message[1], message[2], "error", _describe_remote_error(exc))
        )
    supervisor_mod.write_frame(writer, payload)


def _worker_main(
    worker_id,
    tasks_queue,
    result_writer,
    cancel_flag,
    epoch_value,
    heartbeats,
    fault_flag,
) -> None:
    """Worker loop: pull ``(epoch, index, kind, payload, budget, kernel,
    fdtree_engine, fault)`` from this worker's private queue.

    ``kernel`` is the parent's *resolved* kernel backend name; pinning
    it per task keeps spawned (non-fork) workers from re-resolving
    ``auto`` differently from the parent, so shard results stay
    byte-identical to serial runs under either backend.
    ``fdtree_engine`` is pinned the same way — any FD-tree a task
    handler builds must use the parent's engine, not the worker
    environment's default.  ``fault`` is the optional worker-level
    fault descriptor (mode/at_tick/stage); it is armed with the shared
    once-only flag so exactly one worker per plan actually misbehaves.

    Results go back as ``(worker_id, epoch, index, status, value)``
    frames over this worker's private result pipe; the heartbeat slot
    is stamped at task start and end (the governor stamps it mid-task
    at every probe).
    """
    _reset_worker_state()
    from repro import kernels
    from repro.parallel.tasks import TASK_HANDLERS, worker_attach_seconds
    from repro.structures import fdtree

    while True:
        item = tasks_queue.get()
        if item is None:
            break
        epoch, index, kind, payload, budget_snapshot, kernel, engine, fault = item
        heartbeats[worker_id] = time.monotonic()
        if epoch < epoch_value.value or cancel_flag.is_set():
            _post_result(result_writer, (worker_id, epoch, index, "cancelled", None))
            continue
        kernels.ensure_backend(kernel)
        fdtree.ensure_engine(engine)
        governor = _budget_from_snapshot(
            budget_snapshot, cancel_flag, heartbeats, worker_id
        )
        if fault is not None:
            governor.fault_plan = _worker_fault_plan(fault, fault_flag)
        attach_before = worker_attach_seconds()
        try:
            with activate(governor):
                value = TASK_HANDLERS[kind](payload)
            _post_result(
                result_writer,
                (
                    worker_id,
                    epoch,
                    index,
                    "ok",
                    (
                        value,
                        governor.ticks,
                        governor.candidates,
                        worker_attach_seconds() - attach_before,
                    ),
                ),
            )
        except BudgetExceeded as exc:
            _post_result(
                result_writer,
                (
                    worker_id,
                    epoch,
                    index,
                    "budget",
                    {
                        "reason": exc.reason,
                        "stage": exc.stage,
                        "limit": exc.limit,
                        "observed": exc.observed,
                    },
                ),
            )
        except _Cancelled:
            _post_result(result_writer, (worker_id, epoch, index, "cancelled", None))
        except Exception as exc:
            _post_result(
                result_writer,
                (worker_id, epoch, index, "error", _describe_remote_error(exc)),
            )
        heartbeats[worker_id] = time.monotonic()
    from repro.parallel.tasks import reset_worker_caches

    reset_worker_caches()  # close shared-memory attachments


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _BatchState:
    """Parent-side bookkeeping of one in-flight batch."""

    __slots__ = (
        "kind",
        "payloads",
        "results",
        "done",
        "deaths",
        "queued",
        "pending",
        "breach",
        "error",
        "ticks",
        "candidates",
    )

    def __init__(self, kind: str, payloads: list) -> None:
        self.kind = kind
        self.payloads = payloads
        self.results: list = [None] * len(payloads)
        self.done = [False] * len(payloads)
        self.deaths = [0] * len(payloads)  # workers killed per payload
        self.queued = deque(range(len(payloads)))
        self.pending = len(payloads)
        self.breach: dict | None = None
        self.error: dict | None = None
        self.ticks = 0
        self.candidates = 0

    def finish(self, index: int) -> None:
        self.done[index] = True
        self.pending -= 1


class WorkerPool:
    """A fixed-size persistent pool dispatching named task batches."""

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        strict: bool | None = None,
    ) -> None:
        if workers < 1:
            raise InputError("worker count must be >= 1")
        if _IN_WORKER:
            raise InputError("nested worker pools are not allowed")
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        if strict is None:
            strict = os.environ.get("REPRO_POOL_STRICT", "").strip() in (
                "1",
                "true",
                "yes",
            )
        self.workers = workers
        self.strict = strict
        self.stats = PoolStats(workers=workers)
        self._ctx = multiprocessing.get_context(start_method)
        self._supervisor: WorkerSupervisor | None = None
        self._cancel = None
        self._epoch_value = None
        self._fault_flag = None
        self._epoch = 0
        self._closed = False
        self._disabled = False

    @property
    def _procs(self) -> list:
        """The live worker processes (kept for tests/diagnostics)."""
        if self._supervisor is None:
            return []
        return [slot.proc for slot in self._supervisor.slots if slot.proc is not None]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    @property
    def disabled(self) -> bool:
        """True once the pool gave up on workers for the rest of the run."""
        return self._disabled

    def ensure_started(self) -> None:
        if self._closed:
            raise InputError("worker pool is closed")
        if self._disabled:
            return  # in-process mode: no workers to start
        if self._supervisor is not None:
            self._reap_dead()
            return
        from repro.parallel.shm import reap_orphan_segments
        from repro.structures.storage import reap_orphan_spill_dirs

        reap_orphan_segments()
        reap_orphan_spill_dirs()
        self._cancel = _RawFlag(self._ctx)
        # Raw (lock-free) on purpose: the parent is the only writer and
        # a synchronized Value's lock could be stranded by worker death.
        self._epoch_value = self._ctx.Value("L", 0, lock=False)
        self._fault_flag = self._ctx.Value("i", 0)
        self._supervisor = WorkerSupervisor(
            self._ctx,
            self.workers,
            _worker_main,
            self._cancel,
            self._epoch_value,
            self._fault_flag,
            self.stats,
        )
        self._supervisor.start()

    def _reap_dead(self) -> None:
        """Replace workers that died between batches (e.g. OOM-killed)."""
        for slot in self._supervisor.slots:
            if not slot.alive:
                self._supervisor.drain(slot)  # discard: no batch in flight
                self._supervisor.complete(slot)
                if not self._supervisor.respawn(slot):
                    self._disable("respawn failed while reaping dead workers")
                    return

    def close(self) -> None:
        """Terminate workers and drop queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.shutdown()
            self._supervisor = None
        from repro.parallel.tasks import reset_worker_caches

        # Quarantined/in-process shards may have attached segments in
        # the parent; release those mappings with the pool.
        if not _IN_WORKER:
            reset_worker_caches()

    def _disable(self, reason: str) -> None:
        """Give up on workers for the rest of the run (serial fallback)."""
        if self._disabled:
            return
        self._disabled = True
        self.stats.pool_disabled = 1
        if self._supervisor is not None:
            self._supervisor.shutdown(terminate=True)
            self._supervisor = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def map_tasks(self, kind: str, payloads: list, stage: str = "parallel") -> list:
        """Run one batch; return per-payload results in payload order.

        Raises :class:`BudgetExceeded` when any worker breached its
        propagated budget (after cancelling the rest of the batch),
        :class:`WorkerError` on an unexpected worker exception (the
        remote traceback chained as the cause), and
        :class:`WorkerCrashError` only in strict mode — by default a
        dead or hung worker is respawned and its shard retried or
        quarantined, so the batch still completes with the serial
        result.  The parent keeps ticking its own checkpoints while
        waiting, so parent-side budget breaches and injected faults
        fire mid-shard; the batch is then orphaned via the epoch
        counter and the pool remains usable.
        """
        if not payloads:
            return []
        self.ensure_started()
        if self._disabled:
            self.stats.batches += 1
            return [
                self._execute_in_process(kind, payload, stage)
                for payload in payloads
            ]
        self._epoch += 1
        epoch = self._epoch
        self._epoch_value.value = epoch
        self._cancel.clear()

        from repro import kernels
        from repro.structures import fdtree

        governor = current_governor()
        snapshot = _governor_snapshot(governor)
        plan = governor.fault_plan if governor is not None else None
        fault = self._worker_fault_descriptor(plan)
        kernel = kernels.backend_name()
        engine = fdtree.engine_name()

        self.stats.batches += 1
        self.stats.tasks_dispatched += len(payloads)
        self.stats.largest_shard = max(self.stats.largest_shard, len(payloads))

        state = _BatchState(kind, payloads)

        def make_item(index: int):
            return (
                epoch,
                index,
                kind,
                payloads[index],
                snapshot,
                kernel,
                engine,
                fault,
            )

        try:
            while state.pending:
                if self._disabled:
                    # Respawn gave up mid-batch: finish what the workers
                    # never returned on the in-process serial path.
                    self._finish_in_process(state, stage)
                    break
                self._schedule(state, make_item)
                items = self._supervisor.poll_results(
                    supervisor_mod.POLL_INTERVAL
                )
                if not items:
                    checkpoint(stage)
                    self._supervise(state, epoch, stage)
                    continue
                for item in items:
                    self._consume(state, epoch, item)
        except BaseException:
            # Parent-side breach/fault while waiting: orphan the batch.
            if self._cancel is not None:
                self._cancel.set()
            raise
        finally:
            if self._cancel is not None:
                self._cancel.clear()
            self._note_worker_fault(plan, fault)

        governor = current_governor()
        if governor is not None and state.ticks:
            governor.ticks += state.ticks
        if state.error is not None:
            self._raise_worker_error(kind, state.error)
        if state.breach is not None:
            raise BudgetExceeded(
                state.breach["reason"],
                stage=state.breach["stage"] or stage,
                limit=state.breach["limit"],
                observed=state.breach["observed"],
            )
        if state.candidates:
            add_candidates(state.candidates, stage)
        return state.results

    # -- batch plumbing ------------------------------------------------
    def _schedule(self, state: _BatchState, make_item) -> None:
        """Hand queued payloads to idle workers, one in flight each."""
        while state.queued:
            slot = self._supervisor.idle_slot()
            if slot is None:
                return
            index = state.queued.popleft()
            if state.done[index]:
                continue  # a duplicate result beat the retry to it
            self._supervisor.assign(slot, make_item(index), self._epoch, index)

    def _consume(self, state: _BatchState, epoch: int, item) -> None:
        """Fold one result message into the batch state."""
        worker_id, got_epoch, index, status, value = item
        sup = self._supervisor
        if sup is not None:
            slot = sup.slot_by_id(worker_id)
            if (
                slot is not None
                and slot.busy
                and slot.epoch == got_epoch
                and slot.index == index
            ):
                sup.complete(slot)
        if got_epoch != epoch:
            return  # orphaned result of an interrupted batch
        if state.done[index]:
            return  # duplicate after a conservative retry
        if status == "ok":
            task_value, task_ticks, task_candidates, attach = value
            state.results[index] = task_value
            state.ticks += task_ticks
            state.candidates += task_candidates
            self.stats.attach_seconds += attach
        elif status == "budget":
            state.breach = state.breach or value
            self._cancel.set()
        elif status == "cancelled":
            self.stats.cancelled_tasks += 1
        else:  # "error"
            state.error = state.error or value
            self._cancel.set()
        state.finish(index)

    def _supervise(self, state: _BatchState, epoch: int, stage: str) -> None:
        """Death/hang sweep, run whenever the result queue is quiet."""
        sup = self._supervisor
        if sup is None:
            return
        now = time.monotonic()
        for slot in list(sup.slots):
            if self._disabled:
                return
            alive = slot.alive
            if alive and sup.is_hung(slot, now):
                self.stats.heartbeat_misses += 1
                sup.kill(slot)
                alive = False
            if not alive:
                self._handle_death(state, slot, epoch, stage)
        if state.pending and not state.queued and sup.busy_count(epoch) == 0:
            # Defensive: nothing queued, nothing in flight, work remains
            # (e.g. an assignment raced a death) — requeue the leftovers.
            for index, is_done in enumerate(state.done):
                if not is_done:
                    state.queued.append(index)

    def _handle_death(
        self, state: _BatchState, slot, epoch: int, stage: str
    ) -> None:
        """Recover from one dead worker: respawn + retry or quarantine."""
        sup = self._supervisor
        # A worker that posted its result and *then* died completes its
        # shard here — only genuinely unreported work is retried.
        for item in sup.drain(slot):
            self._consume(state, epoch, item)
        exitcode = slot.proc.exitcode if slot.proc is not None else None
        lost_index = None
        if slot.busy and slot.epoch == epoch and slot.index is not None:
            if not state.done[slot.index]:
                lost_index = slot.index
        sup.complete(slot)
        if lost_index is not None:
            state.deaths[lost_index] += 1
        if self.strict:
            raise WorkerCrashError(
                f"worker {slot.id} died (exitcode {exitcode}) while running "
                f"task {state.kind!r} shard {lost_index}; strict mode "
                "(REPRO_POOL_STRICT) forbids recovery",
                task_kind=state.kind,
                payload_index=lost_index,
                exitcode=exitcode,
                deaths=state.deaths[lost_index] if lost_index is not None else 0,
            )
        if not sup.respawn(slot):
            self._disable(
                f"worker respawn failed or exceeded the limit of "
                f"{supervisor_mod.RESPAWN_LIMIT}"
            )
        if lost_index is None:
            return
        if self._cancel.is_set():
            # The batch is already being torn down (breach/error): the
            # lost shard would only come back "cancelled" anyway.
            self.stats.cancelled_tasks += 1
            state.finish(lost_index)
            return
        if state.deaths[lost_index] >= supervisor_mod.TASK_DEATH_LIMIT:
            self._quarantine(state, lost_index, stage)
        else:
            self.stats.retries += 1
            state.queued.appendleft(lost_index)

    def _quarantine(self, state: _BatchState, index: int, stage: str) -> None:
        """A payload that keeps killing workers runs in-process instead.

        Handlers are pure functions of payload + shared segment, so the
        in-process execution produces the byte-identical result — the
        shard just loses its parallelism, not its correctness.
        """
        self.stats.quarantined += 1
        state.results[index] = self._execute_in_process(
            state.kind, state.payloads[index], stage
        )
        state.finish(index)

    def _finish_in_process(self, state: _BatchState, stage: str) -> None:
        """Run every not-yet-done payload serially (pool disabled)."""
        for index in range(len(state.payloads)):
            if state.done[index]:
                continue
            state.results[index] = self._execute_in_process(
                state.kind, state.payloads[index], stage
            )
            state.finish(index)

    def _execute_in_process(self, kind: str, payload, stage: str):
        """Run one task handler in the parent, under the ambient governor.

        The parent's own governor ticks/candidate counts advance
        directly (no fold-back needed) and budget breaches propagate as
        usual; any other exception is wrapped like a worker error.
        """
        from repro.parallel.tasks import TASK_HANDLERS

        self.stats.in_process_tasks += 1
        try:
            return TASK_HANDLERS[kind](payload)
        except ReproError:
            raise
        except Exception as exc:
            raise WorkerError(
                f"worker task {kind!r} failed during in-process fallback"
            ) from exc

    def _raise_worker_error(self, kind: str, info: dict) -> None:
        """Re-raise a worker exception with its remote traceback chained."""
        cause = _RemoteTraceback(info.get("traceback", ""))
        pickled = info.get("pickled")
        if pickled is not None:
            try:
                original = pickle.loads(pickled)
            except Exception:  # pragma: no cover - stale pickle
                original = None
            if isinstance(original, ReproError):
                raise original from cause
        raise WorkerError(
            f"worker task {kind!r} failed with {info.get('type', 'Exception')}",
            remote_traceback=info.get("traceback"),
        ) from cause

    # -- worker-level fault injection ----------------------------------
    def _worker_fault_descriptor(self, plan) -> dict | None:
        """The fault descriptor to ship with this batch's tasks, if any."""
        if plan is None or plan.fired:
            return None
        from repro.runtime.faults import WORKER_FAULT_MODES

        if plan.mode not in WORKER_FAULT_MODES:
            return None
        if self._fault_flag is None or self._fault_flag.value:
            return None
        return {"mode": plan.mode, "at_tick": plan.at_tick, "stage": plan.stage}

    def _note_worker_fault(self, plan, fault: dict | None) -> None:
        """Fold the shared fired-flag back into the parent's plan."""
        if fault is None or self._fault_flag is None:
            return
        if self._fault_flag.value and plan is not None and not plan.fired:
            plan.fired = True
            if not plan.fired_at_stage:
                plan.fired_at_stage = "worker"
            self.stats.worker_faults_fired += 1


def _governor_snapshot(governor: Governor | None) -> dict | None:
    if governor is None:
        return None
    return {
        "deadline_remaining": governor.remaining_seconds(),
        "max_memory_bytes": governor.budget.max_memory_bytes,
        "check_interval": governor.budget.check_interval,
    }


# ----------------------------------------------------------------------
# The process-wide pool singleton
# ----------------------------------------------------------------------
_POOL: WorkerPool | None = None


def get_pool(workers: int) -> WorkerPool:
    """Return the shared pool, (re)creating it at the requested size."""
    global _POOL
    if _POOL is not None and (_POOL.workers != workers or _POOL._closed):
        if not _POOL._closed:
            _POOL.close()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(workers)
        atexit.register(shutdown_pool)
    return _POOL


def shutdown_pool() -> None:
    """Close the shared pool (idempotent; registered atexit).

    Also releases any shared-memory segments this process still owns
    and reaps segments *and spill directories* orphaned by dead
    processes, so a full teardown leaves ``/dev/shm`` and the spill
    base directory clean.  This process's own spill directory is *not*
    released here — live spilled encodings may outlast the pool; the
    storage module's ``atexit`` hook and the CLI signal boundary cover
    it.
    """
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None
    from repro.parallel.shm import reap_orphan_segments, release_owned_segments
    from repro.structures.storage import reap_orphan_spill_dirs

    release_owned_segments()
    reap_orphan_segments()
    reap_orphan_spill_dirs()


def note_serial_fallback() -> None:
    """Record that a hot path chose serial execution (cost model/size)."""
    if _POOL is not None:
        _POOL.stats.serial_fallbacks += 1


def note_export(seconds: float) -> None:
    """Account one shared-memory export's copy time."""
    if _POOL is not None:
        _POOL.stats.export_seconds += seconds


def note_shard_items(count: int) -> None:
    """Account the number of work items spread over one batch."""
    if _POOL is not None:
        _POOL.stats.shard_items += count


def pool_stats() -> PoolStats | None:
    """The shared pool's cumulative stats (None before first use)."""
    return None if _POOL is None else _POOL.stats
