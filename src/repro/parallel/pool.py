"""Persistent process pool with budget propagation and deterministic merge.

One :class:`WorkerPool` serves the whole process: hot paths submit
batches of task payloads (:meth:`WorkerPool.map_tasks`) and always get
results back **in payload order**, which is what makes every parallel
code path's merge step deterministic regardless of worker scheduling.

Design points, each load-bearing:

* **Persistent workers** — processes are forked once (spawn on
  platforms without fork) and reused across batches, so per-relation
  state (shared-memory attachments, worker-side ``PLICache``) amortizes
  over a whole discovery run instead of being rebuilt per task.
* **Budget propagation** — each batch snapshots the ambient
  :class:`~repro.runtime.governor.Governor` (remaining deadline, memory
  ceiling) and workers enforce it in their own governor at their own
  cooperative checkpoints.  A worker breach cancels the rest of the
  batch (a shared event every worker governor polls) and surfaces in
  the parent as an ordinary :class:`BudgetExceeded`, so every existing
  salvage/degradation path works unchanged.  Candidate-work counts are
  folded back through :func:`~repro.runtime.governor.add_candidates`,
  keeping the global ``max_candidates`` cap authoritative (enforced at
  batch merge rather than mid-shard — the documented difference to
  serial runs).
* **Parent stays cooperative** — while waiting for results the parent
  keeps ticking its own checkpoints, so deadlines, and in particular
  injected faults (``FaultPlan`` kills), still fire *mid-shard*; an
  epoch counter lets the pool discard the orphaned batch afterwards and
  stay usable for the resumed run.
* **Fork hygiene** — workers reset inherited process state on start
  (ambient governor, the partition probe buffer, any shared-memory
  attachments) via :func:`_reset_worker_state`; nested pools are
  refused (``resolve_workers`` reports 1 inside a worker).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import traceback
from dataclasses import dataclass

from repro.runtime.errors import BudgetExceeded, InputError
from repro.runtime.governor import (
    Budget,
    Governor,
    activate,
    add_candidates,
    checkpoint,
    current_governor,
)

__all__ = [
    "PoolStats",
    "WorkerError",
    "WorkerPool",
    "get_pool",
    "resolve_workers",
    "should_parallelize",
    "shutdown_pool",
]

#: Minimum estimated work units (roughly rows × candidates) below which
#: a hot path stays serial — small inputs must not pay pool overhead.
#: Read at call time so tests can monkeypatch it to force either path.
SERIAL_THRESHOLD = 50_000

#: Hard cap honoured by :func:`resolve_workers` (sanity bound).
MAX_WORKERS = 64

_IN_WORKER = False  # set in forked/spawned children; forbids nesting


class WorkerError(RuntimeError):
    """A task raised an unexpected exception inside a worker."""


class _Cancelled(Exception):
    """Internal: the batch was cancelled while this task ran."""


def resolve_workers(explicit: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument > ``REPRO_WORKERS`` env var > 1
    (serial).  Inside a pool worker this always returns 1 — parallel
    sections encountered by worker-side code run serially instead of
    forking grandchildren.
    """
    if _IN_WORKER:
        return 1
    value = explicit
    if value is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise InputError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
    if value is None:
        return 1
    if value < 1:
        raise InputError("worker count must be >= 1")
    return min(value, MAX_WORKERS)


def should_parallelize(work_units: int, workers: int) -> bool:
    """Cost model: is ``work_units`` worth dispatching to ``workers``?

    ``work_units`` approximates rows × candidates of the section; the
    threshold keeps tiny inputs (most unit tests, small relations) on
    the serial path where they are faster anyway.
    """
    return workers > 1 and not _IN_WORKER and work_units >= SERIAL_THRESHOLD


@dataclass(slots=True)
class PoolStats:
    """Counters of one pool (cumulative; snapshot with :meth:`copy`)."""

    workers: int = 0
    batches: int = 0
    tasks_dispatched: int = 0
    serial_fallbacks: int = 0
    cancelled_tasks: int = 0
    #: rows shipped through task payloads is zero by design; these count
    #: the shared-memory side instead
    attach_seconds: float = 0.0
    export_seconds: float = 0.0
    largest_shard: int = 0
    shard_items: int = 0

    def copy(self) -> "PoolStats":
        return PoolStats(
            workers=self.workers,
            batches=self.batches,
            tasks_dispatched=self.tasks_dispatched,
            serial_fallbacks=self.serial_fallbacks,
            cancelled_tasks=self.cancelled_tasks,
            attach_seconds=self.attach_seconds,
            export_seconds=self.export_seconds,
            largest_shard=self.largest_shard,
            shard_items=self.shard_items,
        )

    def delta_since(self, mark: "PoolStats") -> "PoolStats":
        return PoolStats(
            workers=self.workers,
            batches=self.batches - mark.batches,
            tasks_dispatched=self.tasks_dispatched - mark.tasks_dispatched,
            serial_fallbacks=self.serial_fallbacks - mark.serial_fallbacks,
            cancelled_tasks=self.cancelled_tasks - mark.cancelled_tasks,
            attach_seconds=self.attach_seconds - mark.attach_seconds,
            export_seconds=self.export_seconds - mark.export_seconds,
            largest_shard=self.largest_shard,
            shard_items=self.shard_items - mark.shard_items,
        )

    def as_dict(self) -> dict[str, int]:
        """Integer counters for ``DataProfile.counters`` (times in µs)."""
        return {
            "pool_workers": self.workers,
            "pool_batches": self.batches,
            "pool_tasks": self.tasks_dispatched,
            "pool_serial_fallbacks": self.serial_fallbacks,
            "pool_cancelled_tasks": self.cancelled_tasks,
            "pool_attach_us": int(self.attach_seconds * 1e6),
            "pool_export_us": int(self.export_seconds * 1e6),
            "pool_largest_shard": self.largest_shard,
            "pool_shard_items": self.shard_items,
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerGovernor(Governor):
    """A worker's governor: the propagated budget plus the cancel event."""

    __slots__ = ("cancel_event",)

    def __init__(self, budget: Budget, cancel_event) -> None:
        super().__init__(budget)
        self.cancel_event = cancel_event

    def _probe(self, stage: str) -> None:
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise _Cancelled(stage)
        super()._probe(stage)


def _reset_worker_state() -> None:
    """Reset process state a forked child inherited from the parent.

    Forked workers share the parent's module globals by copy; anything
    that is (a) mutable and (b) semantically owned by the *run* rather
    than the *process* must be cleared so no parent state leaks into
    worker computations:

    * the ambient governor (a worker must never tick the parent's
      budget object — it gets its own per task),
    * the partition probe buffer (could hold in-flight entries if the
      fork ever raced an intersect; cleared defensively),
    * worker-side relation caches from a previous pool generation
      (only relevant after fork-from-worker, which is refused anyway).

    The per-instance encoding memo (``RelationInstance._encodings``)
    and parent ``PLICache`` objects need no reset: workers never see
    parent instances — row data only ever arrives via shared memory.
    """
    global _IN_WORKER, _POOL
    _IN_WORKER = True
    _POOL = None  # never reuse the parent's pool object (inherited queues)
    from repro.runtime import governor as governor_module
    from repro.structures import partitions as partitions_module

    governor_module._ACTIVE = None
    partitions_module.reset_process_state()
    from repro.parallel import tasks as tasks_module

    tasks_module.reset_worker_caches()


def _budget_from_snapshot(snapshot: dict | None, cancel_event) -> _WorkerGovernor:
    if snapshot is None:
        budget = Budget()
    else:
        remaining = snapshot.get("deadline_remaining")
        budget = Budget(
            deadline_seconds=max(remaining, 1e-6) if remaining is not None else None,
            max_memory_bytes=snapshot.get("max_memory_bytes"),
            check_interval=snapshot.get("check_interval", 256),
        )
    return _WorkerGovernor(budget, cancel_event)


def _worker_main(tasks_queue, results_queue, cancel_event, epoch_value) -> None:
    """Worker loop: pull ``(epoch, index, kind, payload, budget, kernel,
    fdtree_engine)``.

    ``kernel`` is the parent's *resolved* kernel backend name; pinning
    it per task keeps spawned (non-fork) workers from re-resolving
    ``auto`` differently from the parent, so shard results stay
    byte-identical to serial runs under either backend.
    ``fdtree_engine`` is pinned the same way — any FD-tree a task
    handler builds must use the parent's engine, not the worker
    environment's default.
    """
    _reset_worker_state()
    from repro import kernels
    from repro.parallel.tasks import TASK_HANDLERS, worker_attach_seconds
    from repro.structures import fdtree

    while True:
        item = tasks_queue.get()
        if item is None:
            break
        epoch, index, kind, payload, budget_snapshot, kernel, engine = item
        if epoch < epoch_value.value or cancel_event.is_set():
            results_queue.put((epoch, index, "cancelled", None))
            continue
        kernels.ensure_backend(kernel)
        fdtree.ensure_engine(engine)
        governor = _budget_from_snapshot(budget_snapshot, cancel_event)
        attach_before = worker_attach_seconds()
        try:
            with activate(governor):
                value = TASK_HANDLERS[kind](payload)
            results_queue.put(
                (
                    epoch,
                    index,
                    "ok",
                    (
                        value,
                        governor.ticks,
                        governor.candidates,
                        worker_attach_seconds() - attach_before,
                    ),
                )
            )
        except BudgetExceeded as exc:
            results_queue.put(
                (
                    epoch,
                    index,
                    "budget",
                    {
                        "reason": exc.reason,
                        "stage": exc.stage,
                        "limit": exc.limit,
                        "observed": exc.observed,
                    },
                )
            )
        except _Cancelled:
            results_queue.put((epoch, index, "cancelled", None))
        except Exception:
            results_queue.put((epoch, index, "error", traceback.format_exc()))
    from repro.parallel.tasks import reset_worker_caches

    reset_worker_caches()  # close shared-memory attachments


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class WorkerPool:
    """A fixed-size persistent pool dispatching named task batches."""

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise InputError("worker count must be >= 1")
        if _IN_WORKER:
            raise InputError("nested worker pools are not allowed")
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.workers = workers
        self.stats = PoolStats(workers=workers)
        self._ctx = multiprocessing.get_context(start_method)
        self._tasks = None
        self._results = None
        self._cancel = None
        self._epoch_value = None
        self._procs: list = []
        self._epoch = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def ensure_started(self) -> None:
        if self._closed:
            raise InputError("worker pool is closed")
        if self._procs:
            self._reap_dead()
        if self._procs:
            return
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._cancel = self._ctx.Event()
        self._epoch_value = self._ctx.Value("L", 0)
        for _ in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, self._cancel, self._epoch_value),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def _reap_dead(self) -> None:
        """Replace workers that died (e.g. OOM-killed) transparently."""
        alive = [proc for proc in self._procs if proc.is_alive()]
        dead = len(self._procs) - len(alive)
        self._procs = alive
        for _ in range(dead):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, self._cancel, self._epoch_value),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def close(self) -> None:
        """Terminate workers and drop queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._procs:
            try:
                for _ in self._procs:
                    self._tasks.put(None)
                for proc in self._procs:
                    proc.join(timeout=2.0)
            except Exception:  # pragma: no cover - teardown best effort
                pass
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
            self._procs = []

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def map_tasks(self, kind: str, payloads: list, stage: str = "parallel") -> list:
        """Run one batch; return per-payload results in payload order.

        Raises :class:`BudgetExceeded` when any worker breached its
        propagated budget (after cancelling the rest of the batch) and
        :class:`WorkerError` on an unexpected worker exception.  The
        parent keeps ticking its own checkpoints while waiting, so
        parent-side budget breaches and injected faults fire mid-shard;
        the batch is then orphaned via the epoch counter and the pool
        remains usable.
        """
        if not payloads:
            return []
        self.ensure_started()
        self._epoch += 1
        epoch = self._epoch
        with self._epoch_value.get_lock():
            self._epoch_value.value = epoch
        self._cancel.clear()
        self._drain_stale()

        from repro import kernels
        from repro.structures import fdtree

        snapshot = _governor_snapshot(current_governor())
        kernel = kernels.backend_name()
        engine = fdtree.engine_name()
        for index, payload in enumerate(payloads):
            self._tasks.put(
                (epoch, index, kind, payload, snapshot, kernel, engine)
            )
        self.stats.batches += 1
        self.stats.tasks_dispatched += len(payloads)
        self.stats.largest_shard = max(self.stats.largest_shard, len(payloads))

        results: list = [None] * len(payloads)
        pending = len(payloads)
        breach: dict | None = None
        error: str | None = None
        ticks = 0
        candidates = 0
        try:
            while pending:
                try:
                    item = self._results.get(timeout=0.02)
                except Exception:  # queue.Empty
                    checkpoint(stage)
                    continue
                got_epoch, index, status, value = item
                if got_epoch != epoch:
                    continue  # orphaned result of an interrupted batch
                pending -= 1
                if status == "ok":
                    task_value, task_ticks, task_candidates, attach = value
                    results[index] = task_value
                    ticks += task_ticks
                    candidates += task_candidates
                    self.stats.attach_seconds += attach
                elif status == "budget":
                    breach = breach or value
                    self._cancel.set()
                elif status == "cancelled":
                    self.stats.cancelled_tasks += 1
                else:  # "error"
                    error = error or value
                    self._cancel.set()
        except BaseException:
            # Parent-side breach/fault while waiting: orphan the batch.
            self._cancel.set()
            raise
        finally:
            self._cancel.clear()

        governor = current_governor()
        if governor is not None and ticks:
            governor.ticks += ticks
        if error is not None:
            raise WorkerError(f"worker task {kind!r} failed:\n{error}")
        if breach is not None:
            raise BudgetExceeded(
                breach["reason"],
                stage=breach["stage"] or stage,
                limit=breach["limit"],
                observed=breach["observed"],
            )
        if candidates:
            add_candidates(candidates, stage)
        return results

    def _drain_stale(self) -> None:
        """Drop results left over from an interrupted batch."""
        while True:
            try:
                self._results.get_nowait()
            except Exception:
                return


def _governor_snapshot(governor: Governor | None) -> dict | None:
    if governor is None:
        return None
    return {
        "deadline_remaining": governor.remaining_seconds(),
        "max_memory_bytes": governor.budget.max_memory_bytes,
        "check_interval": governor.budget.check_interval,
    }


# ----------------------------------------------------------------------
# The process-wide pool singleton
# ----------------------------------------------------------------------
_POOL: WorkerPool | None = None


def get_pool(workers: int) -> WorkerPool:
    """Return the shared pool, (re)creating it at the requested size."""
    global _POOL
    if _POOL is not None and (_POOL.workers != workers or _POOL._closed):
        if not _POOL._closed:
            _POOL.close()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(workers)
        atexit.register(shutdown_pool)
    return _POOL


def shutdown_pool() -> None:
    """Close the shared pool (idempotent; registered atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


def note_serial_fallback() -> None:
    """Record that a hot path chose serial execution (cost model/size)."""
    if _POOL is not None:
        _POOL.stats.serial_fallbacks += 1


def note_export(seconds: float) -> None:
    """Account one shared-memory export's copy time."""
    if _POOL is not None:
        _POOL.stats.export_seconds += seconds


def note_shard_items(count: int) -> None:
    """Account the number of work items spread over one batch."""
    if _POOL is not None:
        _POOL.stats.shard_items += count


def pool_stats() -> PoolStats | None:
    """The shared pool's cumulative stats (None before first use)."""
    return None if _POOL is None else _POOL.stats
