"""Shared-memory export of dictionary-encoded relations.

The process-parallel backend must hand workers the *row data* of a
relation without pickling it per task: the columnar value-id vectors of
an :class:`~repro.structures.encoding.EncodedRelation` are the only
record-level state any hot path (PLI construction, multi-RHS
validation, agree-set computation) ever touches, so exporting exactly
those vectors into one ``multiprocessing.shared_memory`` segment makes
every worker-side consumer zero-copy:

* the parent copies each column's ``array('i')`` into the segment
  **once** per relation (:func:`export_encoding`),
* a task payload carries only the tiny picklable :class:`ShmHandle`
  (segment name + shape metadata),
* workers :func:`attach_encoding` and get back an ``EncodedRelation``
  whose ``codes`` are ``memoryview`` casts straight into the mapped
  segment — no per-worker copy, no per-task pickling of row data.

Lifecycle contract (documented in ``docs/PARALLEL.md``): the *parent*
owns every segment.  It unlinks via :meth:`SharedRelation.close` (the
integration sites do this in ``finally`` blocks); workers only ever
``close()`` their attachment, after releasing every memoryview carved
out of it.  On CPython < 3.13 *attaching* also registers the segment
with the ``resource_tracker`` — which pool workers share with the
parent, so its bookkeeping is one name-set for the whole process
family.  We deliberately leave that attach-registration in place (a
set re-add is a no-op) and never unregister from workers: the only
unregister is the one ``unlink()`` itself performs, keeping the
tracker balanced with no spurious KeyErrors and a guaranteed unlink
if the parent dies without cleanup.

Segment names encode the owning pid (``repro-shm-<pid>-<hex>``), which
makes orphans *attributable*: :func:`reap_orphan_segments` scans the
shm directory for our prefix, keeps anything whose owner is still
alive, and unlinks the rest.  The pool runs the reaper at startup and
teardown, so segments stranded by a SIGKILLed process (the one case
the resource tracker cannot cover — tracker and owner die together)
are cleaned up by the next run instead of accumulating in
``/dev/shm``.  :func:`release_owned_segments` is the complementary
same-process cleanup used by the CLI's signal boundary.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.structures import storage
from repro.structures.encoding import EncodedRelation

__all__ = [
    "ShmHandle",
    "SharedRelation",
    "attach_encoding",
    "export_encoding",
    "owned_segments",
    "reap_orphan_segments",
    "release_owned_segments",
]

_ITEMSIZE = array("i").itemsize

#: Every segment this library creates is named ``<prefix>-<pid>-<hex>``.
SEGMENT_PREFIX = "repro-shm"

#: Names of segments created (and not yet unlinked) by *this* process.
_OWNED: set[str] = set()


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a segment under the pid-attributed naming scheme."""
    while True:
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{os.urandom(4).hex()}"
        try:
            shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        except FileExistsError:  # pragma: no cover - 32-bit collision
            continue
        _OWNED.add(shm.name)
        return shm


def owned_segments() -> frozenset[str]:
    """Names of live segments created by this process (diagnostics)."""
    return frozenset(_OWNED)


def release_owned_segments() -> int:
    """Unlink every segment this process still owns; return the count.

    Safe to call while :class:`SharedRelation` objects are live: unlink
    only removes the name, existing mappings stay valid, and the later
    ``SharedRelation.close`` tolerates the double unlink.  Used by the
    CLI's SIGINT/SIGTERM boundary and pool teardown so an interrupted
    run leaves nothing behind in ``/dev/shm``.
    """
    released = 0
    for name in list(_OWNED):
        try:
            segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()
            released += 1
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform-specific teardown
            pass
        _OWNED.discard(name)
    return released


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover - conservative: assume alive
        return True
    return True


def reap_orphan_segments(shm_dir: str = "/dev/shm") -> int:
    """Unlink segments whose owning process is dead; return the count.

    Only names matching our ``repro-shm-<pid>-...`` scheme are
    considered, and only when ``<pid>`` no longer exists — segments of
    live processes (including our own) are never touched.  On platforms
    without a scannable shm directory this is a silent no-op.
    """
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return 0
    own_pid = os.getpid()
    reaped = 0
    marker = SEGMENT_PREFIX + "-"
    for name in names:
        if not name.startswith(marker):
            continue
        parts = name.split("-")
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        pid = int(parts[2])
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            continue
        try:
            segment.close()
            segment.unlink()
            reaped += 1
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass
    return reaped


@dataclass(frozen=True, slots=True)
class ShmHandle:
    """Picklable descriptor of one exported relation.

    Everything a worker needs to rebuild an ``EncodedRelation`` view:
    the segment name plus the shape/NULL metadata that is *not* stored
    in the segment itself (it is tiny and travels with each task).
    """

    segment: str
    arity: int
    num_rows: int
    cardinalities: tuple[int, ...]
    null_codes: tuple[int | None, ...]
    null_equals_null: bool

    @property
    def num_cells(self) -> int:
        return self.arity * self.num_rows


class SharedRelation:
    """Parent-side owner of one exported relation segment."""

    __slots__ = ("handle", "_shm", "export_seconds")

    def __init__(
        self, handle: ShmHandle, shm: shared_memory.SharedMemory, seconds: float
    ) -> None:
        self.handle = handle
        self._shm = shm
        self.export_seconds = seconds

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        Workers that still hold an attachment keep their mapping alive;
        unlinking only removes the name so no new attachment can race a
        dead owner.
        """
        if self._shm is None:
            return
        _OWNED.discard(self._shm.name)
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
        self._shm = None

    def __enter__(self) -> "SharedRelation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def export_encoding(encoding: EncodedRelation):
    """Export an encoding's code vectors for worker attachment.

    Memory-resident encodings are copied into a fresh shared segment:
    column ``a`` occupies the half-open int32 range
    ``[a * num_rows, (a + 1) * num_rows)``, and that one memcpy per
    column is the only copy the parallel backend ever makes of row
    data.  *Spilled* encodings need no copy at all — their columns are
    already files every worker can map, so the export is just a
    :class:`~repro.structures.storage.FileHandle` wrapped in a
    zero-cost :class:`~repro.structures.storage.SpilledRelation`.
    """
    import time

    store = getattr(encoding, "store", None)
    if store is not None:
        return storage.SpilledRelation(store.handle(encoding))
    started = time.perf_counter()
    num_rows = encoding.num_rows
    arity = encoding.arity
    size = max(arity * num_rows * _ITEMSIZE, 1)
    shm = _create_segment(size)
    view = memoryview(shm.buf).cast("b").cast("i") if num_rows else None
    for attr, codes in enumerate(encoding.codes):
        if num_rows:
            view[attr * num_rows : (attr + 1) * num_rows] = memoryview(codes)
    if view is not None:
        view.release()
    handle = ShmHandle(
        segment=shm.name,
        arity=arity,
        num_rows=num_rows,
        cardinalities=tuple(encoding.cardinalities),
        null_codes=tuple(encoding.null_codes),
        null_equals_null=encoding.null_equals_null,
    )
    return SharedRelation(handle, shm, time.perf_counter() - started)


def attach_encoding(handle):
    """Worker-side: map the exported columns as an ``EncodedRelation``.

    Dispatches on the handle kind: a
    :class:`~repro.structures.storage.FileHandle` maps the spill
    tier's column files, a :class:`ShmHandle` maps the shared segment.
    Either way the returned encoding's ``codes`` are zero-copy
    ``memoryview`` casts into the mapping; every consumer
    (``PLICache``, ``StrippedPartition.from_value_ids`` /
    ``intersect_ids``, ``agree_set``) only indexes and iterates them,
    which memoryviews support.  The caller must keep the returned
    attachment object alive as long as the encoding is in use and
    ``close()`` it when done (the pool's per-worker attachment cache
    handles both).
    """
    if isinstance(handle, storage.FileHandle):
        return storage.attach_file_handle(handle)
    shm = shared_memory.SharedMemory(name=handle.segment)
    num_rows = handle.num_rows
    codes: list = []
    if num_rows:
        view = memoryview(shm.buf).cast("b").cast("i")
        for attr in range(handle.arity):
            codes.append(view[attr * num_rows : (attr + 1) * num_rows])
    else:
        codes = [memoryview(array("i")) for _ in range(handle.arity)]
    encoding = EncodedRelation(
        codes=codes,
        cardinalities=list(handle.cardinalities),
        null_codes=list(handle.null_codes),
        num_rows=num_rows,
        null_equals_null=handle.null_equals_null,
        value_ids=None,
    )
    return encoding, shm
