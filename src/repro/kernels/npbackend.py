"""Numpy kernel backend: vectorized partition refinement and scans.

Same kernel surface as :mod:`repro.kernels.pybackend`, implemented on
numpy: grouping is a stable argsort over a combined ``(cluster, value)``
int64 key with boundary detection on the sorted vector, violation scans
compare every row against its cluster's first row in one broadcast, and
agree sets are packed into uint64 bitset words (64 attributes per word).

Determinism contract (docs/KERNELS.md): every kernel reproduces the
pure-Python output *byte for byte* —

* clusters are emitted in first-occurrence order of the parent
  traversal (the stable sort keeps row order inside each group and
  ``order[starts]`` recovers each group's first position, which sorts
  groups exactly like dict insertion order),
* ``from_value_ids`` emits the shared-NULL cluster last,
* violation scans return the *same* violating pair as the interpreted
  scan: the first mismatching row in CSR order, paired with its
  cluster's first row.

Inputs arrive as ``array('i')`` buffers or shared-memory memoryview
slices; ``_as_np`` wraps them zero-copy via ``np.frombuffer``.  Views
are created per call and never cached, so worker teardown can release
the shm segment without ``BufferError``.  Outputs are converted back to
``array('i')`` so the CSR byte protocol (e.g. TANE's shipped
``tobytes()`` prefixes) is identical across backends.

Hybrid dispatch: below :data:`SMALL_INPUT_THRESHOLD` driving elements
every kernel delegates to the interpreted loop — per-call numpy
overhead (buffer wrapping, argsort setup) exceeds the loop cost on tiny
partitions, which would otherwise make the numpy backend *slower* than
python on narrow discovery workloads that issue tens of thousands of
small calls.  Identity is unaffected (the delegate *is* the oracle).
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

import numpy as np

from repro.kernels import pybackend as _py

#: below this many driving elements a kernel call delegates to the
#: interpreted loop (see module docstring); tests set it to 0 to force
#: the vectorized paths on small fixtures
SMALL_INPUT_THRESHOLD = 512

__all__ = [
    "agree_one_to_many",
    "agree_pairs",
    "find_violating_pair",
    "find_violations",
    "from_value_ids",
    "intersect",
    "intersect_ids",
    "lattice_any_violation",
    "lattice_find_generalization",
    "lattice_violations",
    "name",
    "pack_masks",
    "refines_column",
]

name = "numpy"


def _as_np(buf) -> np.ndarray:
    """Zero-copy int32 view over a buffer (copying only for plain lists)."""
    if isinstance(buf, np.ndarray):
        return buf
    try:
        return np.frombuffer(buf, dtype=np.int32)
    except (TypeError, ValueError):
        return np.asarray(buf, dtype=np.int32)


def _to_arr(values: np.ndarray) -> array:
    out = array("i")
    if len(values):
        out.frombytes(np.ascontiguousarray(values, dtype=np.int32).tobytes())
    return out


def _empty_csr() -> tuple[array, array]:
    return array("i"), array("i", [0])


def _group_sorted(keys: np.ndarray):
    """Stable-sort ``keys`` and locate the group boundaries.

    Returns ``(order, starts, sizes)``: the stable permutation, each
    group's start inside the sorted vector, and each group's size.
    Stability is what preserves the original traversal order inside
    every group — the cross-backend identity hinges on it.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    n = len(keys)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(starts, n))
    return order, starts, sizes


def _emit_csr(
    rows_sorted: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    group_order: np.ndarray,
) -> tuple[array, array]:
    """Concatenate the selected groups (in ``group_order``) into CSR."""
    if len(group_order) == 0:
        return _empty_csr()
    starts_o = starts[group_order]
    sizes_o = sizes[group_order]
    out_offsets = np.empty(len(sizes_o) + 1, dtype=np.int64)
    out_offsets[0] = 0
    np.cumsum(sizes_o, out=out_offsets[1:])
    total = int(out_offsets[-1])
    # Gather each group's slice: for output slot j of group g the source
    # index is starts_o[g] + (j - out_offsets[g]).
    gather = np.repeat(starts_o - out_offsets[:-1], sizes_o)
    gather += np.arange(total, dtype=np.int64)
    return _to_arr(rows_sorted[gather]), _to_arr(out_offsets)


# ----------------------------------------------------------------------
# Partition construction and refinement
# ----------------------------------------------------------------------
def from_value_ids(
    codes: Sequence[int], null_code: int | None
) -> tuple[array, array]:
    """Group rows by value id into stripped CSR (NULL cluster last)."""
    if len(codes) < SMALL_INPUT_THRESHOLD:
        return _py.from_value_ids(codes, null_code)
    code_vec = _as_np(codes)
    if len(code_vec) == 0:
        return _empty_csr()
    order, starts, sizes = _group_sorted(code_vec)
    keep = np.flatnonzero(sizes > 1)
    if len(keep) == 0:
        return _empty_csr()
    first_pos = order[starts[keep]]
    if null_code is not None:
        is_null = code_vec[order[starts[keep]]] == null_code
        group_order = keep[np.lexsort((first_pos, is_null))]
    else:
        group_order = keep[np.argsort(first_pos, kind="stable")]
    return _emit_csr(order, starts, sizes, group_order)


def _refine(
    rows: np.ndarray, cluster_ids: np.ndarray, values: np.ndarray
) -> tuple[array, array]:
    """Sub-group ``rows`` (already clustered) by ``values``, strip, emit.

    ``rows[i]`` belongs to cluster ``cluster_ids[i]`` and carries value
    ``values[i]``; both vectors follow CSR traversal order, which the
    stable sort preserves inside each ``(cluster, value)`` group.
    """
    span = int(values.max()) + 1
    keys = cluster_ids.astype(np.int64) * span + values.astype(np.int64)
    order, starts, sizes = _group_sorted(keys)
    keep = np.flatnonzero(sizes > 1)
    if len(keep) == 0:
        return _empty_csr()
    # Groups are emitted in order of their first CSR position — exactly
    # the per-cluster dict insertion order of the interpreted loop.
    group_order = keep[np.argsort(order[starts[keep]], kind="stable")]
    return _emit_csr(rows[order], starts, sizes, group_order)


def _cluster_id_vector(offsets: np.ndarray) -> np.ndarray:
    sizes = np.diff(offsets)
    return np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)


def intersect(
    row_data: array,
    offsets: array,
    num_rows: int,
    other_rows: array,
    other_offsets: array,
) -> tuple[array, array]:
    """Stripped product of two CSR partitions (scatter + sort/groupby)."""
    if len(row_data) < SMALL_INPUT_THRESHOLD:
        return _py.intersect(row_data, offsets, num_rows, other_rows, other_offsets)
    rows = _as_np(row_data)
    o_rows = _as_np(other_rows)
    if len(rows) == 0 or len(o_rows) == 0:
        return _empty_csr()
    probe = np.full(num_rows, -1, dtype=np.int64)
    probe[o_rows] = _cluster_id_vector(_as_np(other_offsets))
    values = probe[rows]
    valid = values >= 0
    rows_v = rows[valid]
    if len(rows_v) == 0:
        return _empty_csr()
    cluster_ids = _cluster_id_vector(_as_np(offsets))[valid]
    return _refine(rows_v, cluster_ids, values[valid])


def intersect_ids(
    row_data: array, offsets: array, num_rows: int, codes: Sequence[int]
) -> tuple[array, array]:
    """Product with a single attribute given as its value-id vector."""
    if len(row_data) < SMALL_INPUT_THRESHOLD:
        return _py.intersect_ids(row_data, offsets, num_rows, codes)
    rows = _as_np(row_data)
    if len(rows) == 0:
        return _empty_csr()
    values = _as_np(codes)[rows]
    return _refine(rows, _cluster_id_vector(_as_np(offsets)), values)


# ----------------------------------------------------------------------
# Violation scans
# ----------------------------------------------------------------------
def _mismatch_mask(
    rows: np.ndarray, offsets: np.ndarray, sizes: np.ndarray, probe
) -> np.ndarray:
    """Per CSR slot: does the row disagree with its cluster's first row?"""
    values = _as_np(probe)[rows]
    return values != np.repeat(values[offsets[:-1]], sizes)


def refines_column(row_data: array, offsets: array, probe: Sequence[int]) -> bool:
    if len(row_data) < SMALL_INPUT_THRESHOLD:
        return _py.refines_column(row_data, offsets, probe)
    rows = _as_np(row_data)
    if len(rows) == 0:
        return True
    offs = _as_np(offsets)
    return not bool(np.any(_mismatch_mask(rows, offs, np.diff(offs), probe)))


def _first_violation(
    rows: np.ndarray, offs: np.ndarray, mismatch: np.ndarray
) -> tuple[int, int] | None:
    """The interpreted scan's pair: first mismatch in CSR order, paired
    with its cluster's first row."""
    position = int(np.argmax(mismatch))
    if not mismatch[position]:
        return None
    cluster = int(np.searchsorted(offs, position, side="right")) - 1
    return (int(rows[offs[cluster]]), int(rows[position]))


def find_violating_pair(
    row_data: array, offsets: array, probe: Sequence[int]
) -> tuple[int, int] | None:
    if len(row_data) < SMALL_INPUT_THRESHOLD:
        return _py.find_violating_pair(row_data, offsets, probe)
    rows = _as_np(row_data)
    if len(rows) == 0:
        return None
    offs = _as_np(offsets)
    return _first_violation(
        rows, offs, _mismatch_mask(rows, offs, np.diff(offs), probe)
    )


def find_violations(
    row_data: array,
    offsets: array,
    rhs_attrs: Sequence[int],
    probes: Sequence[Sequence[int]],
) -> dict[int, tuple[int, int]]:
    """Refute many RHS candidates, one broadcast scan per attribute.

    Returns the identical attr → pair mapping as the interpreted sweep:
    per attribute, the first mismatching row in CSR order against its
    cluster's first row (the sweep visits clusters in the same order and
    stops at each cluster's first mismatch, so "first in CSR order" is
    the same pair).
    """
    if len(row_data) < SMALL_INPUT_THRESHOLD:
        return _py.find_violations(row_data, offsets, rhs_attrs, probes)
    violations: dict[int, tuple[int, int]] = {}
    rows = _as_np(row_data)
    if len(rows) == 0 or not rhs_attrs:
        return violations
    offs = _as_np(offsets)
    sizes = np.diff(offs)
    for attr, probe in zip(rhs_attrs, probes):
        pair = _first_violation(
            rows, offs, _mismatch_mask(rows, offs, sizes, probe)
        )
        if pair is not None:
            violations[attr] = pair
    return violations


# ----------------------------------------------------------------------
# Agree sets (uint64-packed bitsets, 64 attributes per word)
# ----------------------------------------------------------------------
def _packed_words(
    codes: Sequence[Sequence[int]],
    lefts: np.ndarray,
    rights: np.ndarray,
) -> list[np.ndarray]:
    """One uint64 vector per 64-attribute word; bit ``b`` of word ``w``
    is set iff the pair agrees on attribute ``64*w + b``."""
    count = len(lefts)
    words = []
    for base in range(0, len(codes), 64):
        acc = np.zeros(count, dtype=np.uint64)
        for bit in range(min(64, len(codes) - base)):
            column = _as_np(codes[base + bit])
            left_vals = column[lefts]
            agree = (left_vals == column[rights]).astype(np.uint64)
            acc |= agree << np.uint64(bit)
        words.append(acc)
    return words


def _masks_from_words(words: list[np.ndarray]) -> list[int]:
    if len(words) == 1:
        return words[0].tolist()
    masks = words[0].tolist()
    for word_index in range(1, len(words)):
        shift = 64 * word_index
        for i, high in enumerate(words[word_index].tolist()):
            masks[i] |= high << shift
    return masks


def agree_pairs(
    codes: Sequence[Sequence[int]],
    lefts: Sequence[int],
    rights: Sequence[int],
) -> list[int]:
    """Attribute-agreement bitmask per ``(lefts[i], rights[i])`` pair."""
    if len(lefts) < SMALL_INPUT_THRESHOLD:
        return _py.agree_pairs(codes, lefts, rights)
    left_idx = np.asarray(lefts, dtype=np.intp)
    right_idx = np.asarray(rights, dtype=np.intp)
    return _masks_from_words(_packed_words(codes, left_idx, right_idx))


def agree_one_to_many(
    codes: Sequence[Sequence[int]], left: int, rights: Sequence[int]
) -> list[int]:
    """Agreement bitmask of row ``left`` against each row in ``rights``."""
    if len(rights) < SMALL_INPUT_THRESHOLD:
        return _py.agree_one_to_many(codes, left, rights)
    right_idx = np.asarray(rights, dtype=np.intp)
    count = len(right_idx)
    words = []
    for base in range(0, len(codes), 64):
        acc = np.zeros(count, dtype=np.uint64)
        for bit in range(min(64, len(codes) - base)):
            column = _as_np(codes[base + bit])
            agree = (column[right_idx] == column[left]).astype(np.uint64)
            acc |= agree << np.uint64(bit)
        words.append(acc)
    return _masks_from_words(words)


# ----------------------------------------------------------------------
# FD-tree lattice sweeps (repro.structures.fdtree)
# ----------------------------------------------------------------------
# The level-indexed FDTree maintains, per popcount level, uint64 mirror
# arrays of shape ``(entries, words)`` in the agree-set bitset layout
# (bit ``b`` of word ``w`` covers attribute ``64*w + b``).  These
# kernels sweep one such level per call; there is no small-input
# delegate here because the tree itself sweeps small levels with the
# interpreted loops (``fdtree.SMALL_LEVEL_THRESHOLD``) — the query
# masks would have to be packed per call either way.

_ONE = np.uint64(1)
_WORD_MASK = (1 << 64) - 1


def pack_masks(masks: Sequence[int], words: int) -> np.ndarray:
    """Pack Python-int attribute masks into ``(len(masks), words)`` uint64."""
    count = len(masks)
    out = np.zeros((count, words), dtype=np.uint64)
    for word in range(words):
        shift = 64 * word
        out[:, word] = np.fromiter(
            ((mask >> shift) & _WORD_MASK for mask in masks),
            dtype=np.uint64,
            count=count,
        )
    return out


def lattice_find_generalization(
    lhs_words: np.ndarray,
    rhs_words: np.ndarray,
    inv_query: np.ndarray,
    rhs_attr: int,
) -> bool:
    """True iff some entry has ``lhs ⊆ query`` and bit ``rhs_attr`` set.

    ``inv_query`` is the bitwise complement of the packed query mask;
    bits at or above ``num_attributes`` are set in it, but stored LHS
    rows never have them, so the subset test ``lhs & ~query == 0``
    survives the complement's high garbage.
    """
    subset = ~(lhs_words & inv_query).any(axis=1)
    hit = (rhs_words[:, rhs_attr >> 6] >> np.uint64(rhs_attr & 63)) & _ONE
    return bool((subset & (hit != 0)).any())


def lattice_violations(
    lhs_words: np.ndarray,
    rhs_words: np.ndarray,
    inv_agree: np.ndarray,
    disagree_words: np.ndarray,
) -> list[int]:
    """Positions with ``lhs ⊆ agree`` and ``rhs & disagree`` non-empty.

    Ascending position order — identical to the interpreted sweep, so
    the tree's violation output is backend-independent.
    """
    subset = ~(lhs_words & inv_agree).any(axis=1)
    violated = (rhs_words & disagree_words).any(axis=1)
    return np.flatnonzero(subset & violated).tolist()


def lattice_any_violation(
    lhs_words: np.ndarray,
    rhs_words: np.ndarray,
    inv_agree: np.ndarray,
    disagree_words: np.ndarray,
) -> bool:
    """Screening form of :func:`lattice_violations`."""
    subset = ~(lhs_words & inv_agree).any(axis=1)
    violated = (rhs_words & disagree_words).any(axis=1)
    return bool((subset & violated).any())


def lattice_specialization_screen(
    lhs_words: np.ndarray,
    rhs_words: np.ndarray,
    allowed_words: np.ndarray,
    rhs_attr: int,
) -> list[int]:
    """Positions with ``lhs ⊆ allowed`` and bit ``rhs_attr`` set.

    The batched minimal-specialization prefilter: ``allowed`` is the
    base LHS unioned with every candidate extension bit, so any stored
    generalization of any candidate passes; the caller applies the
    exact empty-or-single-extension test to the surviving rows.
    Ascending position order.
    """
    outside = (lhs_words & ~allowed_words).any(axis=1)
    hit = (rhs_words[:, rhs_attr >> 6] >> np.uint64(rhs_attr & 63)) & _ONE
    return np.flatnonzero(~outside & (hit != 0)).tolist()
