"""Kernel backend layer for the encoded-column hot paths.

The partition engine (:mod:`repro.structures.partitions`) and the
agree-set helper (:mod:`repro.structures.encoding`) dispatch their inner
loops through this package so the same interfaces can run on either of
two interchangeable backends:

* ``python`` — the original interpreted loops, moved verbatim into
  :mod:`repro.kernels.pybackend`.  Always available; serves as the
  differential oracle for the vectorized path
  (``tests/test_kernels_differential.py``).
* ``numpy`` — sort/groupby-based partition refinement, bulk multi-RHS
  violation scans, and uint64-packed bitset agree-set extraction in
  :mod:`repro.kernels.npbackend`.  Requires the optional ``[perf]``
  extra (``pip install -e .[test,perf]``).

Backend selection is lazy and process-wide: the first kernel call
resolves ``set_backend()`` (programmatic, e.g. the ``--kernel`` CLI
flag) or the ``REPRO_KERNEL`` environment variable (``python`` /
``numpy`` / ``auto``).  ``auto`` — the default — picks numpy when it is
importable and silently falls back to pure Python otherwise, so a plain
``pip install`` without numpy keeps the full test suite green.

Both backends honour the same determinism contract (docs/KERNELS.md):
identical CSR bytes for every partition, the identical violating row
pair for every refuted FD, and identical agree masks — so parallel
numpy runs stay byte-identical to serial pure-Python runs.

Every dispatch records per-kernel call/row counters; ``profile()``
snapshots them into ``DataProfile.counters`` together with the active
backend name.
"""

from __future__ import annotations

import os
from types import ModuleType

from repro.runtime.errors import InputError

__all__ = [
    "BACKEND_CHOICES",
    "active",
    "backend_name",
    "bump",
    "counters_delta",
    "counters_snapshot",
    "ensure_backend",
    "numpy_available",
    "numpy_module",
    "record",
    "reset_counters",
    "reset_process_state",
    "set_backend",
]

BACKEND_CHOICES = ("python", "numpy", "auto")

# Programmatic override (set_backend); None means "consult REPRO_KERNEL".
_requested: str | None = None
# Resolved backend module + name; None until the first kernel dispatch.
_active: ModuleType | None = None
_active_name: str | None = None

_counters: dict[str, int] = {}


def numpy_available() -> bool:
    """True iff numpy is importable in this process."""
    try:
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - import failure path
        return False
    return True


def numpy_module():
    """The numpy module, or ``None`` when it is not importable.

    Callers that build batched index arrays (the HyFD sampler) use this
    instead of importing numpy directly, so they degrade gracefully on
    a pure-Python install.
    """
    try:
        import numpy
    except Exception:  # pragma: no cover - import failure path
        return None
    return numpy


def _requested_name() -> str:
    if _requested is not None:
        return _requested
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if not raw:
        return "auto"
    if raw not in BACKEND_CHOICES:
        raise InputError(
            f"REPRO_KERNEL={raw!r} is not a valid kernel backend; "
            f"choose one of {', '.join(BACKEND_CHOICES)}"
        )
    return raw


def _resolve() -> None:
    global _active, _active_name
    name = _requested_name()
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    if name == "numpy":
        if not numpy_available():
            raise InputError(
                "kernel backend 'numpy' requested but numpy is not "
                "importable; install the [perf] extra "
                "(pip install -e .[perf]) or use --kernel python"
            )
        from repro.kernels import npbackend as module
    else:
        from repro.kernels import pybackend as module
    _active = module
    _active_name = name


def active() -> ModuleType:
    """The resolved backend module (resolving lazily on first use)."""
    if _active is None:
        _resolve()
    return _active


def backend_name() -> str:
    """The resolved backend name: ``"python"`` or ``"numpy"``."""
    if _active is None:
        _resolve()
    return _active_name


def set_backend(name: str | None) -> None:
    """Select the kernel backend programmatically.

    ``name`` is one of ``python`` / ``numpy`` / ``auto``, or ``None`` to
    drop the override and fall back to ``REPRO_KERNEL``.  Resolution is
    re-done lazily, so selecting ``numpy`` on an install without numpy
    only fails once a kernel is actually needed (or eagerly via
    :func:`backend_name`).
    """
    global _requested, _active, _active_name
    if name is not None:
        name = name.strip().lower()
        if name not in BACKEND_CHOICES:
            raise InputError(
                f"unknown kernel backend {name!r}; "
                f"choose one of {', '.join(BACKEND_CHOICES)}"
            )
    _requested = name
    _active = None
    _active_name = None


def ensure_backend(name: str) -> None:
    """Pin this process to an already-resolved backend name.

    Pool workers call this per task batch with the parent's resolved
    backend so spawned (non-fork) workers never re-resolve ``auto``
    differently from the parent.  A no-op when already matching.
    """
    if name != backend_name():
        set_backend(name)


# ----------------------------------------------------------------------
# Per-kernel call/row counters (surfaced via DataProfile.counters)
# ----------------------------------------------------------------------
def record(kernel: str, rows: int) -> None:
    """Count one kernel dispatch processing ``rows`` row slots."""
    calls_key = f"kernel_{kernel}_calls"
    rows_key = f"kernel_{kernel}_rows"
    _counters[calls_key] = _counters.get(calls_key, 0) + 1
    _counters[rows_key] = _counters.get(rows_key, 0) + rows


def bump(calls_key: str, rows_key: str, rows: int) -> None:
    """Precomputed-key variant of :func:`record`.

    The FD-tree lattice sweeps run millions of times per discovery;
    building the two f-string keys per call would cost more than the
    counter update itself, so those callers precompute the key pair
    once at module scope and bump through this.
    """
    _counters[calls_key] = _counters.get(calls_key, 0) + 1
    _counters[rows_key] = _counters.get(rows_key, 0) + rows


def counters_snapshot() -> dict[str, int]:
    return dict(_counters)


def counters_delta(mark: dict[str, int]) -> dict[str, int]:
    """Counter increments since ``mark`` (zero deltas omitted)."""
    delta = {}
    for key, value in _counters.items():
        increment = value - mark.get(key, 0)
        if increment:
            delta[key] = increment
    return delta


def reset_counters() -> None:
    _counters.clear()


def reset_process_state() -> None:
    """Fork hygiene: drop counters and backend scratch buffers.

    Called by pool workers on start (alongside
    ``partitions.reset_process_state``) so a child never inherits the
    parent's counter totals or a probe buffer with live entries.
    """
    reset_counters()
    from repro.kernels import pybackend

    pybackend.reset_scratch()
