"""Pure-Python kernel backend — the reference loops and fallback.

These are the original interpreted hot loops of the partition engine,
moved here verbatim from :mod:`repro.structures.partitions` and
:mod:`repro.structures.encoding` so both backends sit behind one
dispatch seam.  This backend is always available (no dependencies) and
doubles as the differential oracle the numpy backend is tested against.

All kernels operate on raw buffers — ``array('i')`` CSR pairs
(``row_data``, ``offsets``), value-id code vectors, and row-index
sequences — never on :class:`StrippedPartition` objects, so the module
imports nothing from the structures layer and cannot create cycles.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

__all__ = [
    "agree_one_to_many",
    "agree_pairs",
    "find_violating_pair",
    "find_violations",
    "from_value_ids",
    "intersect",
    "intersect_ids",
    "lattice_any_violation",
    "lattice_find_generalization",
    "lattice_violations",
    "name",
    "refines_column",
    "reset_scratch",
]

name = "python"


# One shared probe buffer for all intersections (single-threaded library).
# Entries are -1 except while an intersect() call is in flight; each call
# restores the entries it wrote — element-wise when few were touched, via
# a C-speed slice copy from the constant -1 pool when most were — so
# consecutive products of any partitions reuse the buffer without
# allocating O(num_rows) scratch per call.
_PROBE_BUFFER = array("i")
_NEG_ONES = array("i")


def _probe_buffer(num_rows: int) -> array:
    if len(_PROBE_BUFFER) < num_rows:
        grow = [-1] * (num_rows - len(_PROBE_BUFFER))
        _PROBE_BUFFER.extend(grow)
        _NEG_ONES.extend(grow)
    return _PROBE_BUFFER


def reset_scratch() -> None:
    """Reinitialize the shared probe buffer (fork hygiene).

    A child forked while a parent ``intersect`` was in flight would
    otherwise inherit a buffer with live (non ``-1``) entries and
    silently corrupt its first product.  Dropping the capacity also
    releases memory the worker never needs.
    """
    del _PROBE_BUFFER[:]
    del _NEG_ONES[:]


# ----------------------------------------------------------------------
# Partition construction and refinement
# ----------------------------------------------------------------------
def from_value_ids(
    codes: Sequence[int], null_code: int | None
) -> tuple[array, array]:
    """Group rows by value id into stripped CSR (NULL cluster last)."""
    groups: dict[int, list[int]] = {}
    for row, code in enumerate(codes):
        group = groups.get(code)
        if group is None:
            groups[code] = [row]
        else:
            group.append(row)
    null_group = groups.pop(null_code, None) if null_code is not None else None
    row_data = array("i")
    offsets = array("i", [0])
    for cluster in groups.values():
        if len(cluster) > 1:
            row_data.extend(cluster)
            offsets.append(len(row_data))
    if null_group is not None and len(null_group) > 1:
        row_data.extend(null_group)
        offsets.append(len(row_data))
    return row_data, offsets


def intersect(
    row_data: array,
    offsets: array,
    num_rows: int,
    other_rows: array,
    other_offsets: array,
) -> tuple[array, array]:
    """Stripped product of two CSR partitions via the probe buffer."""
    probe = _probe_buffer(num_rows)
    try:
        for cluster_id in range(len(other_offsets) - 1):
            for row in other_rows[
                other_offsets[cluster_id] : other_offsets[cluster_id + 1]
            ]:
                probe[row] = cluster_id
        new_rows = array("i")
        new_offsets = array("i", [0])
        sub: dict[int, list[int]] = {}
        for cluster_id in range(len(offsets) - 1):
            sub.clear()
            for row in row_data[offsets[cluster_id] : offsets[cluster_id + 1]]:
                other_id = probe[row]
                if other_id >= 0:
                    group = sub.get(other_id)
                    if group is None:
                        sub[other_id] = [row]
                    else:
                        group.append(row)
            for rows in sub.values():
                if len(rows) > 1:
                    new_rows.extend(rows)
                    new_offsets.append(len(new_rows))
    finally:
        if 2 * len(other_rows) >= num_rows:
            probe[:num_rows] = _NEG_ONES[:num_rows]
        else:
            for row in other_rows:
                probe[row] = -1
    return new_rows, new_offsets


def intersect_ids(
    row_data: array, offsets: array, num_rows: int, codes: Sequence[int]
) -> tuple[array, array]:
    """Product with a single attribute given as its value-id vector."""
    new_rows = array("i")
    new_offsets = array("i", [0])
    sub: dict[int, list[int]] = {}
    for cluster_id in range(len(offsets) - 1):
        sub.clear()
        for row in row_data[offsets[cluster_id] : offsets[cluster_id + 1]]:
            value_id = codes[row]
            group = sub.get(value_id)
            if group is None:
                sub[value_id] = [row]
            else:
                group.append(row)
        for rows in sub.values():
            if len(rows) > 1:
                new_rows.extend(rows)
                new_offsets.append(len(new_rows))
    return new_rows, new_offsets


# ----------------------------------------------------------------------
# Violation scans
# ----------------------------------------------------------------------
def refines_column(row_data: array, offsets: array, probe: Sequence[int]) -> bool:
    """True iff every cluster agrees on ``probe`` values (FD check)."""
    for cluster_id in range(len(offsets) - 1):
        start = offsets[cluster_id]
        first = probe[row_data[start]]
        for row in row_data[start + 1 : offsets[cluster_id + 1]]:
            if probe[row] != first:
                return False
    return True


def find_violating_pair(
    row_data: array, offsets: array, probe: Sequence[int]
) -> tuple[int, int] | None:
    """One row pair agreeing on the partition but differing on the probe."""
    for cluster_id in range(len(offsets) - 1):
        start = offsets[cluster_id]
        first_row = row_data[start]
        first = probe[first_row]
        for row in row_data[start + 1 : offsets[cluster_id + 1]]:
            if probe[row] != first:
                return (first_row, row)
    return None


def find_violations(
    row_data: array,
    offsets: array,
    rhs_attrs: Sequence[int],
    probes: Sequence[Sequence[int]],
) -> dict[int, tuple[int, int]]:
    """Refute many RHS candidates in one sweep over the clusters."""
    violations: dict[int, tuple[int, int]] = {}
    remaining = list(zip(rhs_attrs, probes))
    if not remaining:
        return violations
    for cluster_id in range(len(offsets) - 1):
        start = offsets[cluster_id]
        first_row = row_data[start]
        rest = row_data[start + 1 : offsets[cluster_id + 1]]
        survivors = []
        for attr, probe in remaining:
            first = probe[first_row]
            for row in rest:
                if probe[row] != first:
                    violations[attr] = (first_row, row)
                    break
            else:
                survivors.append((attr, probe))
        remaining = survivors
        if not remaining:
            break
    return violations


# ----------------------------------------------------------------------
# Agree sets
# ----------------------------------------------------------------------
def agree_pairs(
    codes: Sequence[Sequence[int]],
    lefts: Sequence[int],
    rights: Sequence[int],
) -> list[int]:
    """Attribute-agreement bitmask per ``(lefts[i], rights[i])`` pair."""
    masks = []
    for left, right in zip(lefts, rights):
        agree = 0
        bit = 1
        for column in codes:
            if column[left] == column[right]:
                agree |= bit
            bit <<= 1
        masks.append(agree)
    return masks


def agree_one_to_many(
    codes: Sequence[Sequence[int]], left: int, rights: Sequence[int]
) -> list[int]:
    """Agreement bitmask of row ``left`` against each row in ``rights``."""
    masks = []
    for right in rights:
        agree = 0
        bit = 1
        for column in codes:
            if column[left] == column[right]:
                agree |= bit
            bit <<= 1
        masks.append(agree)
    return masks


# ----------------------------------------------------------------------
# FD-tree lattice sweeps (repro.structures.fdtree)
# ----------------------------------------------------------------------
# Unlike the partition kernels above, the lattice kernel surface is
# representation-specific: the level-indexed FDTree owns the per-level
# entry arrays and hands them over directly.  Here they are plain
# Python-int lists; the numpy backend sweeps the tree's uint64-packed
# mirrors instead.  These loops are the normative oracle for the
# vectorized sweeps (tests/test_fdtree_differential.py).


def lattice_find_generalization(
    lhs_rows: Sequence[int],
    rhs_rows: Sequence[int],
    lhs: int,
    rhs_bit: int,
) -> bool:
    """True iff some entry has ``lhs_rows[i] ⊆ lhs`` and ``rhs & rhs_bit``."""
    outside = ~lhs
    for stored, rhs in zip(lhs_rows, rhs_rows):
        if rhs & rhs_bit and stored & outside == 0:
            return True
    return False


def lattice_violations(
    lhs_rows: Sequence[int],
    rhs_rows: Sequence[int],
    agree_set: int,
    disagree: int,
) -> list[int]:
    """Positions with ``lhs_rows[i] ⊆ agree_set`` and ``rhs & disagree``."""
    outside = ~agree_set
    out = []
    for pos, stored in enumerate(lhs_rows):
        if rhs_rows[pos] & disagree and stored & outside == 0:
            out.append(pos)
    return out


def lattice_specialization_screen(
    lhs_rows: Sequence[int],
    rhs_rows: Sequence[int],
    allowed: int,
    rhs_bit: int,
) -> list[int]:
    """Positions with ``lhs_rows[i] ⊆ allowed`` and ``rhs & rhs_bit``.

    Oracle for the batched minimal-specialization prefilter; see the
    numpy twin for the screening contract.
    """
    outside = ~allowed
    return [
        pos
        for pos, stored in enumerate(lhs_rows)
        if rhs_rows[pos] & rhs_bit and stored & outside == 0
    ]


def lattice_any_violation(
    lhs_rows: Sequence[int],
    rhs_rows: Sequence[int],
    agree_set: int,
    disagree: int,
) -> bool:
    """Early-exit form of :func:`lattice_violations`."""
    outside = ~agree_set
    for stored, rhs in zip(lhs_rows, rhs_rows):
        if rhs & disagree and stored & outside == 0:
            return True
    return False
