"""repro — data-driven schema normalization.

A from-scratch Python reproduction of

    Thorsten Papenbrock, Felix Naumann:
    "Data-driven Schema Normalization", EDBT 2017.

The package implements the complete Normalize system: FD discovery
(HyFD, TANE, DFD, and a brute-force oracle), the three closure
algorithms, key derivation, BCNF/3NF violation detection, constraint
scoring and (semi-)automatic selection, schema decomposition, and
DUCC-based primary-key discovery — plus the synthetic workloads and the
benchmark harness that regenerate the paper's evaluation.

Quickstart::

    from repro import normalize, address_example

    result = normalize(address_example())
    print(result.to_str())
"""

from repro.core.closure import (
    calculate_closure,
    improved_closure,
    naive_closure,
    optimized_closure,
)
from repro.core.nf_check import check_normal_form
from repro.core.normalize import Normalizer, normalize
from repro.core.result import NormalizationResult
from repro.core.scoring import rank_keys, rank_violating_fds
from repro.core.selection import (
    AutoDecider,
    CallbackDecider,
    Decider,
    ScriptedDecider,
)
from repro.discovery import (
    DFD,
    BruteForceFD,
    DuccUCC,
    HyFD,
    NaiveUCC,
    Tane,
    discover_fds,
    discover_uccs,
)
from repro.incremental import ChangeBatch, ChangeLog, IncrementalNormalizer
from repro.io.csv_io import read_csv, write_csv
from repro.io.datasets import address_example, planets_example
from repro.io.ddl import schema_to_ddl
from repro.io.graphviz import schema_to_dot
from repro.io.serialization import load_fdset, result_to_json, save_fdset
from repro.model import FD, FDSet, ForeignKey, Relation, RelationInstance, Schema
from repro.profiling import profile, profile_many

__version__ = "1.0.0"

__all__ = [
    "DFD",
    "FD",
    "AutoDecider",
    "BruteForceFD",
    "CallbackDecider",
    "ChangeBatch",
    "ChangeLog",
    "Decider",
    "DuccUCC",
    "FDSet",
    "ForeignKey",
    "HyFD",
    "IncrementalNormalizer",
    "NaiveUCC",
    "NormalizationResult",
    "Normalizer",
    "Relation",
    "RelationInstance",
    "Schema",
    "ScriptedDecider",
    "Tane",
    "address_example",
    "calculate_closure",
    "check_normal_form",
    "discover_fds",
    "discover_uccs",
    "improved_closure",
    "naive_closure",
    "normalize",
    "optimized_closure",
    "load_fdset",
    "planets_example",
    "profile",
    "profile_many",
    "rank_keys",
    "rank_violating_fds",
    "read_csv",
    "result_to_json",
    "save_fdset",
    "schema_to_ddl",
    "schema_to_dot",
    "write_csv",
]
