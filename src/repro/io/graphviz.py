"""Graphviz DOT export for schemas (paper §9 future work).

"Future work shall concentrate on emphasizing the user-in-the-loop,
for instance, by employing graphical previews of normalized relations
and their connections."  This module renders a schema as a DOT graph:
one record-shaped node per relation (key columns marked) and one edge
per foreign key — paste the output into any Graphviz renderer to get a
Figure-3/4-style picture.
"""

from __future__ import annotations

from repro.model.schema import Schema

__all__ = ["schema_to_dot"]


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("{", "\\{")
        .replace("}", "\\}")
        .replace("|", "\\|")
        .replace("<", "\\<")
        .replace(">", "\\>")
    )


def schema_to_dot(schema: Schema, graph_name: str = "schema") -> str:
    """Render the schema as a Graphviz DOT digraph.

    Relations become record nodes (``name | col1 | col2 …``) with
    primary-key columns suffixed by ``(PK)``; each foreign key becomes
    a labelled edge from the referencing to the referenced relation.
    """
    lines = [
        f"digraph {graph_name} {{",
        "    rankdir=LR;",
        '    node [shape=record, fontsize=10, fontname="Helvetica"];',
        '    edge [fontsize=9, fontname="Helvetica"];',
    ]
    for relation in schema:
        pk = set(relation.primary_key or ())
        cells = [f"<{_port(col)}> {_escape(col)}{' (PK)' if col in pk else ''}"
                 for col in relation.columns]
        label = f"{_escape(relation.name)} | " + " | ".join(cells)
        lines.append(f'    "{relation.name}" [label="{{{label}}}"];')
    for relation in schema:
        for fk in relation.foreign_keys:
            if fk.ref_relation not in schema:
                continue
            label = ",".join(fk.columns)
            lines.append(
                f'    "{relation.name}":{_port(fk.columns[0])} -> '
                f'"{fk.ref_relation}":{_port(fk.ref_columns[0])} '
                f'[label="{_escape(label)}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def _port(column: str) -> str:
    """A DOT-safe port identifier for a column name."""
    return "p_" + "".join(ch if ch.isalnum() else "_" for ch in column)
