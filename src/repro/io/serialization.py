"""JSON serialization for FD sets, schemas, and normalization results.

Profiling a large dataset once and reusing the FD set across many
normalization experiments is the natural workflow (the paper's own
evaluation does exactly that, via Metanome result files).  This module
provides the stable on-disk format:

* FD sets are stored by *attribute names*, so a saved FD set remains
  valid for any instance with the same columns (order included),
* schemas round-trip with primary keys and foreign keys,
* a normalization result exports its decomposition log, statistics,
  and timings for downstream analysis.

Loaded FD sets plug straight back into the pipeline via
:class:`~repro.discovery.precomputed.PrecomputedFDs`.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro.core.result import NormalizationResult
from repro.model.attributes import mask_of_names, names_of
from repro.model.fd import FDSet
from repro.model.schema import ForeignKey, Relation, Schema

__all__ = [
    "changelog_from_json",
    "changelog_to_json",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "fdset_from_json",
    "fdset_to_json",
    "load_changelog",
    "load_fdset",
    "result_to_json",
    "save_changelog",
    "save_fdset",
    "schema_from_json",
    "schema_to_json",
]


# ----------------------------------------------------------------------
# FD sets
# ----------------------------------------------------------------------
def fdset_to_json(fds: FDSet, columns: Sequence[str]) -> dict:
    """Serialize an FD set against its column list."""
    if len(columns) != fds.num_attributes:
        raise ValueError(
            f"FD set covers {fds.num_attributes} attributes but "
            f"{len(columns)} column names were given"
        )
    return {
        "format": "repro/fdset",
        "version": 1,
        "columns": list(columns),
        "fds": [
            {
                "lhs": list(names_of(lhs, columns)),
                "rhs": list(names_of(rhs, columns)),
            }
            for lhs, rhs in sorted(fds.items())
        ],
    }


def fdset_from_json(payload: dict) -> tuple[FDSet, tuple[str, ...]]:
    """Deserialize; returns the FD set and the column tuple it is bound to."""
    if payload.get("format") != "repro/fdset":
        raise ValueError("not a repro FD-set document")
    columns = tuple(payload["columns"])
    fds = FDSet(len(columns))
    for entry in payload["fds"]:
        fds.add_masks(
            mask_of_names(entry["lhs"], columns),
            mask_of_names(entry["rhs"], columns),
        )
    return fds, columns


def save_fdset(fds: FDSet, columns: Sequence[str], path: str | Path) -> None:
    """Write an FD set to a JSON file."""
    Path(path).write_text(
        json.dumps(fdset_to_json(fds, columns), indent=2), encoding="utf-8"
    )


def load_fdset(path: str | Path) -> tuple[FDSet, tuple[str, ...]]:
    """Read an FD set from a JSON file."""
    return fdset_from_json(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------
def schema_to_json(schema: Schema) -> dict:
    """Serialize relations with their key and foreign-key constraints."""
    return {
        "format": "repro/schema",
        "version": 1,
        "relations": [
            {
                "name": relation.name,
                "columns": list(relation.columns),
                "primary_key": (
                    list(relation.primary_key)
                    if relation.primary_key is not None
                    else None
                ),
                "foreign_keys": [
                    {
                        "columns": list(fk.columns),
                        "ref_relation": fk.ref_relation,
                        "ref_columns": list(fk.ref_columns),
                    }
                    for fk in relation.foreign_keys
                ],
            }
            for relation in schema
        ],
    }


def schema_from_json(payload: dict) -> Schema:
    """Deserialize a schema document."""
    if payload.get("format") != "repro/schema":
        raise ValueError("not a repro schema document")
    relations = []
    for entry in payload["relations"]:
        relations.append(
            Relation(
                entry["name"],
                tuple(entry["columns"]),
                primary_key=(
                    tuple(entry["primary_key"])
                    if entry["primary_key"] is not None
                    else None
                ),
                foreign_keys=[
                    ForeignKey(
                        tuple(fk["columns"]),
                        fk["ref_relation"],
                        tuple(fk["ref_columns"]),
                    )
                    for fk in entry["foreign_keys"]
                ],
            )
        )
    return Schema(relations)


# ----------------------------------------------------------------------
# Normalization results
# ----------------------------------------------------------------------
def result_to_json(result: NormalizationResult) -> dict:
    """Export a run's schema, decomposition log, stats, and timings."""
    return {
        "format": "repro/normalization-result",
        "version": 1,
        "schema": schema_to_json(result.schema),
        "steps": [
            {
                "parent": step.parent,
                "r1": step.r1,
                "r2": step.r2,
                "lhs": list(step.lhs),
                "rhs": list(step.rhs),
                "chosen_rank": step.chosen_rank,
                "num_candidates": step.num_candidates,
                "score": step.score,
            }
            for step in result.steps
        ],
        "stats": [
            {
                "relation": stat.relation,
                "num_attributes": stat.num_attributes,
                "num_records": stat.num_records,
                "num_fds": stat.num_fds,
                "num_fd_keys": stat.num_fd_keys,
                "avg_rhs_before_closure": stat.avg_rhs_before_closure,
                "avg_rhs_after_closure": stat.avg_rhs_after_closure,
            }
            for stat in result.stats
        ],
        "timings": dict(result.timings),
        "stopped_relations": list(result.stopped_relations),
        "values_before": result.original_values,
        "values_after": result.total_values,
        "fidelity": (
            result.fidelity.to_json() if result.fidelity is not None else None
        ),
    }


# ----------------------------------------------------------------------
# Change logs (see repro.incremental.changes)
# ----------------------------------------------------------------------
def changelog_to_json(log) -> dict:
    """Serialize a :class:`~repro.incremental.changes.ChangeLog`."""
    return {
        "format": "repro/changelog",
        "version": 1,
        "batches": [batch.to_json() for batch in log],
    }


def changelog_from_json(payload: dict, coerce_str: bool = False):
    """Deserialize a change-log document.

    ``coerce_str=True`` stringifies non-NULL scalar values, matching the
    all-strings value domain of CSV-backed instances (the CLI always
    sets it).  Raises :class:`~repro.runtime.errors.InputError` on
    malformed documents so the CLI boundary reports them as bad input.
    """
    from repro.incremental.changes import ChangeBatch, ChangeLog
    from repro.runtime.errors import InputError

    if payload.get("format") != "repro/changelog":
        raise InputError(
            f"not a repro changelog (format={payload.get('format')!r})"
        )
    if payload.get("version") != 1:
        raise InputError(
            f"unsupported changelog version {payload.get('version')!r}"
        )
    try:
        batches = [
            ChangeBatch.from_json(entry, coerce_str=coerce_str)
            for entry in payload["batches"]
        ]
    except (KeyError, TypeError) as exc:
        raise InputError(f"malformed changelog document: {exc}") from exc
    return ChangeLog(batches)


def save_changelog(log, path: str | Path) -> None:
    """Write a change log to a JSON file."""
    Path(path).write_text(
        json.dumps(changelog_to_json(log), indent=2), encoding="utf-8"
    )


def load_changelog(path: str | Path, coerce_str: bool = False):
    """Read a change log: one JSON document, or JSON-Lines batches.

    The JSONL form (one batch object per line, no wrapper) is what
    ``repro watch`` tails — producers can append batches with a plain
    ``echo >>``.
    """
    from repro.incremental.changes import ChangeBatch, ChangeLog
    from repro.runtime.errors import InputError

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise InputError(f"cannot read changelog {path}: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        return ChangeLog([])
    try:
        payload = json.loads(stripped)
    except ValueError:
        payload = None
    if isinstance(payload, dict):
        # A single-line JSONL stream parses as one bare batch object;
        # anything else dict-shaped must be a changelog document.
        if "inserts" in payload or "deletes" in payload:
            return ChangeLog(
                [ChangeBatch.from_json(payload, coerce_str=coerce_str)]
            )
        return changelog_from_json(payload, coerce_str=coerce_str)
    if isinstance(payload, list):
        return ChangeLog(
            [
                ChangeBatch.from_json(entry, coerce_str=coerce_str)
                for entry in payload
            ]
        )
    # JSONL: one batch object per non-empty line.
    batches = []
    for number, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            raise InputError(
                f"changelog {path} line {number} is not valid JSON: {exc}"
            ) from exc
        batches.append(ChangeBatch.from_json(entry, coerce_str=coerce_str))
    return ChangeLog(batches)


# ----------------------------------------------------------------------
# Pipeline checkpoints (see repro.runtime.checkpointing)
# ----------------------------------------------------------------------
def checkpoint_to_json(state) -> dict:
    """Serialize a :class:`~repro.runtime.checkpointing.PipelineState`.

    FD sets are stored by attribute names (the same convention as
    :func:`fdset_to_json`), so the checkpoint stays readable and is
    robust against column re-encoding.
    """
    columns_by_name = {
        entry["name"]: entry["columns"] for entry in state.inputs
    }
    return {
        "format": "repro/pipeline-checkpoint",
        "version": 1,
        "config": dict(state.config),
        "inputs": [dict(entry) for entry in state.inputs],
        "discovered": {
            name: fdset_to_json(fds, columns_by_name[name])
            for name, fds in state.discovered.items()
        },
        "fidelity": {
            name: fidelity.to_json()
            for name, fidelity in state.fidelity.items()
        },
        "decisions": [dict(decision) for decision in state.decisions],
        "complete": state.complete,
    }


def checkpoint_from_json(payload: dict):
    """Deserialize a pipeline checkpoint document.

    Raises :class:`~repro.runtime.errors.CheckpointError` on format
    mismatches so the CLI boundary can report them uniformly.
    """
    from repro.runtime.checkpointing import (
        CHECKPOINT_FORMAT,
        CHECKPOINT_VERSION,
        PipelineState,
    )
    from repro.runtime.degrade import RelationFidelity
    from repro.runtime.errors import CheckpointError

    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a pipeline checkpoint (format={payload.get('format')!r})"
        )
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        discovered = {}
        for name, document in payload["discovered"].items():
            fds, _ = fdset_from_json(document)
            discovered[name] = fds
        return PipelineState(
            config=dict(payload["config"]),
            inputs=[dict(entry) for entry in payload["inputs"]],
            discovered=discovered,
            fidelity={
                name: RelationFidelity.from_json(entry)
                for name, entry in payload["fidelity"].items()
            },
            decisions=[dict(decision) for decision in payload["decisions"]],
            complete=bool(payload["complete"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint document: {exc}") from exc
