"""I/O: CSV and JSON, bundled micro-datasets, SQL DDL and DOT export."""

from repro.io.csv_io import read_csv, write_csv
from repro.io.datasets import (
    address_example,
    denormalized_university,
    planets_example,
)
from repro.io.ddl import schema_to_ddl
from repro.io.graphviz import schema_to_dot
from repro.io.serialization import (
    fdset_from_json,
    fdset_to_json,
    load_fdset,
    result_to_json,
    save_fdset,
    schema_from_json,
    schema_to_json,
)

__all__ = [
    "address_example",
    "denormalized_university",
    "fdset_from_json",
    "fdset_to_json",
    "load_fdset",
    "planets_example",
    "read_csv",
    "result_to_json",
    "save_fdset",
    "schema_from_json",
    "schema_to_ddl",
    "schema_to_dot",
    "schema_to_json",
    "write_csv",
]
