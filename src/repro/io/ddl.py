"""SQL DDL export for normalized schemas.

Turns a :class:`~repro.model.schema.Schema` (typically
``NormalizationResult.schema``) into ``CREATE TABLE`` statements with
primary- and foreign-key constraints — the practical artifact a
downstream user wants from a normalization run.

Relations are emitted referenced-first (topologically along foreign
keys), so the script executes in one pass on any SQL engine.
"""

from __future__ import annotations

from repro.model.instance import RelationInstance
from repro.model.schema import Relation, Schema

__all__ = ["create_table_statement", "quote_identifier", "schema_to_ddl"]


def schema_to_ddl(
    schema: Schema,
    instances: dict[str, RelationInstance] | None = None,
    dialect_text_type: str = "TEXT",
) -> str:
    """Render the schema as executable SQL DDL.

    With ``instances`` given, column types are inferred per column
    (INTEGER if every non-NULL value parses as an int, else the text
    type); otherwise every column uses the text type.
    """
    statements = [
        _create_table(relation, instances, dialect_text_type)
        for relation in _topological(schema)
    ]
    return "\n\n".join(statements) + "\n"


def create_table_statement(
    relation: Relation,
    instances: dict[str, RelationInstance] | None = None,
    dialect_text_type: str = "TEXT",
    name: str | None = None,
) -> str:
    """One ``CREATE TABLE`` statement for a single relation.

    The migration planner (:mod:`repro.incremental.migration`) emits
    these outside full-schema exports; ``name`` optionally overrides
    the table name (e.g. for ``<table>__new`` rebuild staging) while
    type inference still reads the instance under the relation's name.
    """
    if name is None:
        return _create_table(relation, instances, dialect_text_type)
    renamed = Relation(
        name,
        relation.columns,
        primary_key=relation.primary_key,
        foreign_keys=list(relation.foreign_keys),
    )
    instance = (instances or {}).get(relation.name)
    lookup = {name: instance} if instance is not None else None
    return _create_table(renamed, lookup, dialect_text_type)


def quote_identifier(identifier: str) -> str:
    """SQL-quote an identifier the same way the DDL export does."""
    return _quote(identifier)


def _topological(schema: Schema) -> list[Relation]:
    """Referenced-before-referencing order (cycles broken by name)."""
    remaining = {relation.name: relation for relation in schema}
    ordered: list[Relation] = []
    emitted: set[str] = set()
    while remaining:
        progressed = False
        for name in sorted(remaining):
            relation = remaining[name]
            deps = {
                fk.ref_relation
                for fk in relation.foreign_keys
                if fk.ref_relation != name
            }
            if deps <= emitted:
                ordered.append(relation)
                emitted.add(name)
                del remaining[name]
                progressed = True
        if not progressed:  # FK cycle: emit the rest in name order
            for name in sorted(remaining):
                ordered.append(remaining[name])
            break
    return ordered


def _create_table(
    relation: Relation,
    instances: dict[str, RelationInstance] | None,
    text_type: str,
) -> str:
    instance = (instances or {}).get(relation.name)
    lines = []
    pk = set(relation.primary_key or ())
    for column in relation.columns:
        column_type = _infer_type(instance, column, text_type)
        not_null = " NOT NULL" if column in pk else ""
        lines.append(f"    {_quote(column)} {column_type}{not_null}")
    if relation.primary_key:
        cols = ", ".join(_quote(c) for c in relation.primary_key)
        lines.append(f"    PRIMARY KEY ({cols})")
    for fk in relation.foreign_keys:
        local = ", ".join(_quote(c) for c in fk.columns)
        remote = ", ".join(_quote(c) for c in fk.ref_columns)
        lines.append(
            f"    FOREIGN KEY ({local}) REFERENCES "
            f"{_quote(fk.ref_relation)} ({remote})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {_quote(relation.name)} (\n{body}\n);"


def _infer_type(
    instance: RelationInstance | None, column: str, text_type: str
) -> str:
    if instance is None:
        return text_type
    values = [value for value in instance.column(column) if value is not None]
    if values and all(_is_int(value) for value in values):
        return "INTEGER"
    return text_type


def _is_int(value: object) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True
    try:
        int(str(value))
    except ValueError:
        return False
    return True


def _quote(identifier: str) -> str:
    escaped = identifier.replace('"', '""')
    return f'"{escaped}"'
