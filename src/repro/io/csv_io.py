"""CSV input and output for relation instances.

The paper's tool consumes plain relational files through the Metanome
framework; this module is our equivalent.  Values are read as strings;
empty fields become NULL (``None``) unless ``empty_as_null=False``.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["read_csv", "write_csv"]


def read_csv(
    path: str | Path,
    name: str | None = None,
    delimiter: str = ",",
    has_header: bool = True,
    empty_as_null: bool = True,
) -> RelationInstance:
    """Read a CSV file into a :class:`RelationInstance`.

    Without a header row, columns are named ``col_0 … col_{n-1}``.  The
    relation name defaults to the file stem.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty; cannot infer a schema")
    if has_header:
        header, data_rows = tuple(rows[0]), rows[1:]
    else:
        header = tuple(f"col_{index}" for index in range(len(rows[0])))
        data_rows = rows
    relation = Relation(name or path.stem, header)
    converted = []
    for line_number, row in enumerate(data_rows, start=2 if has_header else 1):
        if len(row) != len(header):
            raise ValueError(
                f"{path}:{line_number}: expected {len(header)} fields, "
                f"got {len(row)}"
            )
        if empty_as_null:
            converted.append(tuple(value if value != "" else None for value in row))
        else:
            converted.append(tuple(row))
    return RelationInstance.from_rows(relation, converted)


def write_csv(
    instance: RelationInstance,
    path: str | Path,
    delimiter: str = ",",
    null_as: str = "",
) -> None:
    """Write an instance to CSV (header row included, NULL as ``null_as``)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(instance.columns)
        for row in instance.iter_rows():
            writer.writerow([null_as if value is None else value for value in row])
