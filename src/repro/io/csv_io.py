"""CSV input and output for relation instances.

The paper's tool consumes plain relational files through the Metanome
framework; this module is our equivalent.  Values are read as strings;
empty fields become NULL (``None``) unless ``empty_as_null=False``.

Real-world CSV is hostile: ragged rows, byte-order marks, bytes that
are not valid UTF-8, empty files.  :func:`read_csv` turns each of these
into a structured :class:`~repro.runtime.errors.InputError` carrying
the file, row, and column context — or repairs them under an explicit
``on_error`` policy:

* ``"strict"`` (default) — any defect raises :class:`InputError`,
* ``"pad"``    — ragged rows are padded with NULLs / truncated to the
  header width; undecodable bytes become U+FFFD replacement characters,
* ``"skip"``   — ragged rows are dropped; undecodable bytes are
  replaced as under ``"pad"``.

A UTF-8 byte-order mark is always stripped (``utf-8-sig``): it is a
transparent encoding artifact, not a data defect.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.errors import InputError

__all__ = ["read_csv", "write_csv"]

_POLICIES = ("strict", "pad", "skip")


def read_csv(
    path: str | Path,
    name: str | None = None,
    delimiter: str = ",",
    has_header: bool = True,
    empty_as_null: bool = True,
    on_error: str = "strict",
) -> RelationInstance:
    """Read a CSV file into a :class:`RelationInstance`.

    Without a header row, columns are named ``col_0 … col_{n-1}``.  The
    relation name defaults to the file stem.  ``on_error`` selects the
    malformed-input policy (see the module docstring).
    """
    if on_error not in _POLICIES:
        raise InputError(
            f"unknown on_error policy {on_error!r}; choose from {_POLICIES}"
        )
    path = Path(path)
    errors = "strict" if on_error == "strict" else "replace"
    try:
        # utf-8-sig transparently strips a leading BOM if present.
        with path.open(
            newline="", encoding="utf-8-sig", errors=errors
        ) as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            rows = list(reader)
    except FileNotFoundError:
        raise InputError("input file not found", file=str(path)) from None
    except UnicodeDecodeError as exc:
        raise InputError(
            f"not valid UTF-8 ({exc.reason}); re-encode the file or use "
            "on_error='pad'/'skip' to substitute replacement characters",
            file=str(path),
            byte_offset=exc.start,
        ) from None
    except csv.Error as exc:
        raise InputError(
            f"malformed CSV: {exc}", file=str(path)
        ) from None
    if not rows:
        raise InputError(
            "file is empty; cannot infer a schema", file=str(path)
        )
    if has_header:
        header, data_rows = tuple(rows[0]), rows[1:]
        first_line = 2
    else:
        header = tuple(f"col_{index}" for index in range(len(rows[0])))
        data_rows = rows
        first_line = 1
    if not header:
        raise InputError(
            "header row has no columns", file=str(path), row=1
        )
    relation = Relation(name or path.stem, header)
    converted = []
    for line_number, row in enumerate(data_rows, start=first_line):
        if len(row) != len(header):
            if on_error == "skip":
                continue
            if on_error == "pad":
                row = _pad(row, len(header))
            else:
                raise InputError(
                    f"expected {len(header)} fields, got {len(row)}",
                    file=str(path),
                    row=line_number,
                    columns=len(header),
                )
        if empty_as_null:
            converted.append(
                tuple(value if value != "" else None for value in row)
            )
        else:
            converted.append(tuple(row))
    return RelationInstance.from_rows(relation, converted)


def _pad(row: list[str], width: int) -> list[str]:
    """Repair a ragged row to ``width`` fields (pad with NULLs / truncate)."""
    if len(row) < width:
        return row + [""] * (width - len(row))
    return row[:width]


def write_csv(
    instance: RelationInstance,
    path: str | Path,
    delimiter: str = ",",
    null_as: str = "",
) -> None:
    """Write an instance to CSV (header row included, NULL as ``null_as``)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(instance.columns)
        for row in instance.iter_rows():
            writer.writerow([null_as if value is None else value for value in row])
