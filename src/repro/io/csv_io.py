"""CSV input and output for relation instances.

The paper's tool consumes plain relational files through the Metanome
framework; this module is our equivalent.  Values are read as strings;
empty fields become NULL (``None``) unless ``empty_as_null=False``.

:func:`read_csv` accepts three kinds of sources:

* a path (``str`` / :class:`~pathlib.Path`) — the classic batch case,
* ``bytes`` / ``bytearray`` — an in-memory document, e.g. an HTTP
  request body received by ``repro serve`` (no temp file needed),
* a file-like object — anything with ``.read()``; binary streams are
  decoded exactly like paths, text streams are consumed as-is.

Real-world CSV is hostile: ragged rows, byte-order marks, bytes that
are not valid UTF-8, empty files, duplicate header names.
:func:`read_csv` turns each of these into a structured
:class:`~repro.runtime.errors.InputError` carrying the source, row, and
column context — or repairs them under an explicit ``on_error`` policy:

* ``"strict"`` (default) — any defect raises :class:`InputError`,
* ``"pad"``    — ragged rows are padded with NULLs / truncated to the
  header width; undecodable bytes become U+FFFD replacement characters,
* ``"skip"``   — ragged rows are dropped; undecodable bytes are
  replaced as under ``"pad"``.

Duplicate column names in the header are always an :class:`InputError`:
two columns with the same name cannot be addressed by the FD model, and
silently renaming one would make the discovered cover refer to a column
the input never declared.

A UTF-8 byte-order mark is always stripped (``utf-8-sig``): it is a
transparent encoding artifact, not a data defect.

Under a non-``memory`` storage policy (``--storage auto|spill``,
``REPRO_STORAGE``) :func:`read_csv` switches to **chunked ingestion**:
rows are parsed in fixed-size chunks (``REPRO_CHUNK_ROWS``, default
4096) and dictionary-encoded incrementally through a
:class:`~repro.structures.encoding.ChunkedEncoder`, with finished code
pages written straight into the backing store — the raw row text is
never held whole in the Python heap, which is what makes
larger-than-RAM inputs ingestible (docs/STORAGE.md).  Both paths raise
the identical :class:`InputError` taxonomy and produce byte-identical
encodings.
"""

from __future__ import annotations

import contextlib
import csv
import io
from pathlib import Path

from repro.model.instance import RelationInstance
from repro.model.schema import Relation
from repro.runtime.errors import InputError
from repro.structures import storage

__all__ = ["read_csv", "write_csv"]

_POLICIES = ("strict", "pad", "skip")

#: the type union read_csv accepts; documented rather than enforced —
#: anything with ``.read()`` counts as a stream
Source = "str | Path | bytes | bytearray | io.IOBase"


def _rows_from_source(
    source, delimiter: str, errors: str, label: str
) -> list[list[str]]:
    """Materialize the CSV rows of any supported source kind."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            # utf-8-sig transparently strips a leading BOM if present.
            with path.open(
                newline="", encoding="utf-8-sig", errors=errors
            ) as handle:
                return list(csv.reader(handle, delimiter=delimiter))
        except FileNotFoundError:
            raise InputError("input file not found", file=label) from None
        except UnicodeDecodeError as exc:
            raise InputError(
                f"not valid UTF-8 ({exc.reason}); re-encode the file or use "
                "on_error='pad'/'skip' to substitute replacement characters",
                file=label,
                byte_offset=exc.start,
            ) from None
        except csv.Error as exc:
            raise InputError(f"malformed CSV: {exc}", file=label) from None

    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
    else:
        # File-like: one .read() drains it.  A text stream yields str
        # (already decoded by the caller's choice of codec); a binary
        # stream yields bytes and goes through the same decode path as
        # on-disk files.
        try:
            data = source.read()
        except AttributeError:
            raise InputError(
                f"unsupported CSV source {type(source).__name__!r}; "
                "expected a path, bytes, or a file-like object"
            ) from None
    if isinstance(data, (bytes, bytearray)):
        try:
            text = bytes(data).decode("utf-8-sig", errors=errors)
        except UnicodeDecodeError as exc:
            raise InputError(
                f"not valid UTF-8 ({exc.reason}); re-encode the input or "
                "use on_error='pad'/'skip' to substitute replacement "
                "characters",
                file=label,
                byte_offset=exc.start,
            ) from None
    else:
        # A text stream opened with a default codec still carries the
        # BOM as a character; strip it like utf-8-sig would.
        text = data.lstrip("\ufeff")
    try:
        return list(csv.reader(io.StringIO(text, newline=""), delimiter=delimiter))
    except csv.Error as exc:
        raise InputError(f"malformed CSV: {exc}", file=label) from None


def _source_label(source, name: str | None) -> tuple[str, str]:
    """(error-context label, default relation name) of a source."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        return str(path), path.stem
    stream_name = getattr(source, "name", None)
    if isinstance(stream_name, str) and stream_name:
        return stream_name, Path(stream_name).stem
    return f"<{type(source).__name__}>", "relation"


def read_csv(
    source,
    name: str | None = None,
    delimiter: str = ",",
    has_header: bool = True,
    empty_as_null: bool = True,
    on_error: str = "strict",
) -> RelationInstance:
    """Read a CSV source into a :class:`RelationInstance`.

    ``source`` is a path, ``bytes``, or a file-like object (see the
    module docstring).  Without a header row, columns are named
    ``col_0 … col_{n-1}``.  The relation name defaults to the file stem
    for paths (``relation`` for in-memory sources).  ``on_error``
    selects the malformed-input policy.
    """
    if on_error not in _POLICIES:
        raise InputError(
            f"unknown on_error policy {on_error!r}; choose from {_POLICIES}"
        )
    errors = "strict" if on_error == "strict" else "replace"
    label, default_name = _source_label(source, name)
    if storage.policy_name() != "memory":
        return _read_csv_streaming(
            source,
            relation_name=name,
            delimiter=delimiter,
            has_header=has_header,
            empty_as_null=empty_as_null,
            on_error=on_error,
            errors=errors,
            label=label,
            default_name=default_name,
        )
    rows = _rows_from_source(source, delimiter, errors, label)
    if not rows:
        raise InputError(
            "input is empty; cannot infer a schema", file=label
        )
    if has_header:
        header, data_rows = tuple(rows[0]), rows[1:]
        first_line = 2
    else:
        header = tuple(f"col_{index}" for index in range(len(rows[0])))
        data_rows = rows
        first_line = 1
    if not header:
        raise InputError(
            "header row has no columns", file=label, row=1
        )
    if len(set(header)) != len(header):
        seen: set[str] = set()
        duplicates = sorted(
            {column for column in header if column in seen or seen.add(column)}
        )
        raise InputError(
            "duplicate column names in header; rename the columns so every "
            "one is unique",
            file=label,
            row=1,
            duplicates=duplicates,
        )
    relation = Relation(name or default_name, header)
    converted = []
    for line_number, row in enumerate(data_rows, start=first_line):
        if len(row) != len(header):
            if on_error == "skip":
                continue
            if on_error == "pad":
                row = _pad(row, len(header))
            else:
                raise InputError(
                    f"expected {len(header)} fields, got {len(row)}",
                    file=label,
                    row=line_number,
                    columns=len(header),
                )
        if empty_as_null:
            converted.append(
                tuple(value if value != "" else None for value in row)
            )
        else:
            converted.append(tuple(row))
    return RelationInstance.from_rows(relation, converted)


def _pad(row: list[str], width: int) -> list[str]:
    """Repair a ragged row to ``width`` fields (pad with NULLs / truncate)."""
    if len(row) < width:
        return row + [""] * (width - len(row))
    return row[:width]


@contextlib.contextmanager
def _open_rows(source, delimiter: str, errors: str, label: str):
    """Yield a *lazy* CSV row iterator over any supported source kind.

    The streaming twin of :func:`_rows_from_source`: path sources keep
    the file handle open and decode as the reader advances (so decode
    errors surface mid-iteration — the caller maps them), in-memory
    sources decode eagerly exactly like the classic path.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            handle = path.open(newline="", encoding="utf-8-sig", errors=errors)
        except FileNotFoundError:
            raise InputError("input file not found", file=label) from None
        try:
            yield csv.reader(handle, delimiter=delimiter)
        finally:
            handle.close()
        return
    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
    else:
        try:
            data = source.read()
        except AttributeError:
            raise InputError(
                f"unsupported CSV source {type(source).__name__!r}; "
                "expected a path, bytes, or a file-like object"
            ) from None
    if isinstance(data, (bytes, bytearray)):
        try:
            text = bytes(data).decode("utf-8-sig", errors=errors)
        except UnicodeDecodeError as exc:
            raise InputError(
                f"not valid UTF-8 ({exc.reason}); re-encode the input or "
                "use on_error='pad'/'skip' to substitute replacement "
                "characters",
                file=label,
                byte_offset=exc.start,
            ) from None
    else:
        text = data.lstrip("\ufeff")
    yield csv.reader(io.StringIO(text, newline=""), delimiter=delimiter)


def _read_csv_streaming(
    source,
    relation_name: str | None,
    delimiter: str,
    has_header: bool,
    empty_as_null: bool,
    on_error: str,
    errors: str,
    label: str,
    default_name: str,
) -> RelationInstance:
    """Chunked-ingestion twin of the classic :func:`read_csv` body.

    Parses ``REPRO_CHUNK_ROWS`` rows at a time and feeds them to a
    :class:`~repro.structures.encoding.ChunkedEncoder`, which pages
    finished codes into the backing store under the active storage
    policy.  Error taxonomy and encoding output are byte-identical to
    the materializing path (asserted by the parity suite).
    """
    from repro.structures.encoding import ChunkedEncoder

    chunk_rows = storage.chunk_rows()
    try:
        with _open_rows(source, delimiter, errors, label) as reader:
            first = next(reader, None)
            if first is None:
                raise InputError(
                    "input is empty; cannot infer a schema", file=label
                )
            if has_header:
                header = tuple(first)
                carried: list[str] | None = None
                first_line = 2
            else:
                header = tuple(f"col_{index}" for index in range(len(first)))
                carried = first
                first_line = 1
            if not header:
                raise InputError(
                    "header row has no columns", file=label, row=1
                )
            if len(set(header)) != len(header):
                seen: set[str] = set()
                duplicates = sorted(
                    {
                        column
                        for column in header
                        if column in seen or seen.add(column)
                    }
                )
                raise InputError(
                    "duplicate column names in header; rename the columns so "
                    "every one is unique",
                    file=label,
                    row=1,
                    duplicates=duplicates,
                )
            relation = Relation(relation_name or default_name, header)
            width = len(header)
            encoder = ChunkedEncoder(width, null_equals_null=True)
            batch: list[tuple] = []
            line_number = first_line - 1

            def _ingest(row) -> None:
                if len(row) != width:
                    if on_error == "skip":
                        return
                    if on_error == "pad":
                        row = _pad(row, width)
                    else:
                        raise InputError(
                            f"expected {width} fields, got {len(row)}",
                            file=label,
                            row=line_number,
                            columns=width,
                        )
                if empty_as_null:
                    batch.append(
                        tuple(value if value != "" else None for value in row)
                    )
                else:
                    batch.append(tuple(row))
                if len(batch) >= chunk_rows:
                    encoder.add_rows(batch)
                    batch.clear()

            if carried is not None:
                line_number += 1
                _ingest(carried)
            for row in reader:
                line_number += 1
                _ingest(row)
            if batch:
                encoder.add_rows(batch)
                batch.clear()
    except UnicodeDecodeError as exc:
        raise InputError(
            f"not valid UTF-8 ({exc.reason}); re-encode the file or use "
            "on_error='pad'/'skip' to substitute replacement characters",
            file=label,
            byte_offset=exc.start,
        ) from None
    except csv.Error as exc:
        raise InputError(f"malformed CSV: {exc}", file=label) from None
    encoding = encoder.finish()
    return RelationInstance.from_encoded(
        relation, encoding, encoder.decode_tables()
    )


def write_csv(
    instance: RelationInstance,
    path: str | Path,
    delimiter: str = ",",
    null_as: str = "",
) -> None:
    """Write an instance to CSV (header row included, NULL as ``null_as``)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(instance.columns)
        for row in instance.iter_rows():
            writer.writerow([null_as if value is None else value for value in row])
