"""Bundled micro-datasets from the paper's motivating examples.

* :func:`address_example` — Table 1, the running example
  (``Postcode → City, Mayor`` anomalies),
* :func:`planets_example` — the §1 anecdote that ``Atmosphere → Rings``
  holds on planet datasets although a human would not guess it,
* :func:`denormalized_university` — the §5 professor/teaches/class
  example whose join hides the key ``{name, label}`` that is no
  minimal-FD LHS (motivates DUCC in primary-key selection).
"""

from __future__ import annotations

from repro.model.instance import RelationInstance
from repro.model.schema import Relation

__all__ = ["address_example", "denormalized_university", "planets_example"]


def address_example() -> RelationInstance:
    """The paper's Table 1 address dataset (6 rows, 5 attributes)."""
    relation = Relation(
        "address", ("First", "Last", "Postcode", "City", "Mayor")
    )
    rows = [
        ("Thomas", "Miller", "14482", "Potsdam", "Jakobs"),
        ("Sarah", "Miller", "14482", "Potsdam", "Jakobs"),
        ("Peter", "Smith", "60329", "Frankfurt", "Feldmann"),
        ("Jasmine", "Cone", "01069", "Dresden", "Orosz"),
        ("Mike", "Cone", "14482", "Potsdam", "Jakobs"),
        ("Thomas", "Moore", "60329", "Frankfurt", "Feldmann"),
    ]
    return RelationInstance.from_rows(relation, rows)


def planets_example() -> RelationInstance:
    """A small solar-system table on which ``Atmosphere → Rings`` holds."""
    relation = Relation(
        "planets", ("Planet", "Atmosphere", "Rings", "Moons", "Type")
    )
    rows = [
        ("Mercury", "none", "no", "0", "rocky"),
        ("Venus", "co2", "no", "0", "rocky"),
        ("Earth", "n2o2", "no", "1", "rocky"),
        ("Mars", "co2", "no", "2", "rocky"),
        ("Jupiter", "h2he", "yes", "95", "gas"),
        ("Saturn", "h2he", "yes", "146", "gas"),
        ("Uranus", "h2hech4", "yes", "28", "ice"),
        ("Neptune", "h2hech4", "yes", "16", "ice"),
    ]
    return RelationInstance.from_rows(relation, rows)


def denormalized_university() -> RelationInstance:
    """The §5 join ``Professor ⋈ Teaches ⋈ Class``.

    Its primary key ``{name, label}`` cannot be derived from minimal
    FDs (``name → department, salary`` and ``label → room, date`` are
    the minimal ones), which is why primary-key selection needs full
    key discovery.
    """
    relation = Relation(
        "university",
        ("name", "label", "department", "salary", "room", "date"),
    )
    rows = [
        ("Curie", "PHY1", "Physics", "70000", "H1", "Mon"),
        ("Curie", "PHY2", "Physics", "70000", "H2", "Tue"),
        ("Noether", "MAT1", "Mathematics", "68000", "H3", "Mon"),
        ("Noether", "PHY1", "Mathematics", "68000", "H1", "Mon"),
        ("Turing", "INF1", "Informatics", "72000", "H4", "Wed"),
        ("Turing", "INF2", "Informatics", "72000", "H5", "Thu"),
        ("Hopper", "INF1", "Informatics", "71000", "H4", "Wed"),
        ("Hopper", "MAT1", "Informatics", "71000", "H3", "Mon"),
    ]
    return RelationInstance.from_rows(relation, rows)
