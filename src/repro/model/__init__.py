"""Relational data model: attribute sets, FDs, schemas, and instances.

This package provides the substrate that every other component builds on:

* :mod:`repro.model.attributes` — attribute sets encoded as integer
  bitmasks plus the helpers to manipulate them,
* :mod:`repro.model.fd` — functional dependencies and FD collections,
* :mod:`repro.model.schema` — relations, keys, foreign keys, and schemas,
* :mod:`repro.model.instance` — in-memory columnar relation instances.
"""

from repro.model.attributes import (
    bits_of,
    count_bits,
    iter_bits,
    mask_of,
    mask_of_names,
    names_of,
)
from repro.model.fd import FD, FDSet
from repro.model.instance import RelationInstance
from repro.model.schema import ForeignKey, Relation, Schema

__all__ = [
    "FD",
    "FDSet",
    "ForeignKey",
    "Relation",
    "RelationInstance",
    "Schema",
    "bits_of",
    "count_bits",
    "iter_bits",
    "mask_of",
    "mask_of_names",
    "names_of",
]
