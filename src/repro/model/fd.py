"""Functional dependencies and FD collections.

An :class:`FD` is the paper's aggregated notation ``X → Y``: a left-hand
side ``lhs`` and a (possibly multi-attribute) right-hand side ``rhs``,
both attribute bitmasks over the same relation.  Reflexivity is kept
implicit, exactly as in Section 4 of the paper: LHS attributes are never
stored on the RHS, so ``lhs & rhs == 0`` is an invariant.

:class:`FDSet` aggregates FDs by LHS (``Postcode→City`` and
``Postcode→Mayor`` become ``Postcode→City,Mayor``) and provides the
minimality/completeness checks that the optimized closure algorithm
(Algorithm 3, Lemma 1) relies on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.model.attributes import count_bits, iter_bits, names_of

__all__ = ["FD", "FDSet"]


@dataclass(frozen=True, slots=True)
class FD:
    """An aggregated functional dependency ``lhs → rhs`` over one relation.

    ``lhs`` and ``rhs`` are attribute bitmasks and must be disjoint; the
    reflexive part of the dependency (``lhs → lhs``) is implicit.
    """

    lhs: int
    rhs: int

    def __post_init__(self) -> None:
        if self.lhs & self.rhs:
            raise ValueError(
                f"lhs and rhs overlap: lhs={self.lhs:b}, rhs={self.rhs:b}; "
                "reflexive attributes must stay implicit"
            )
        if self.rhs == 0:
            raise ValueError("rhs must not be empty")

    @property
    def attributes(self) -> int:
        """All attributes the FD mentions: ``lhs | rhs``."""
        return self.lhs | self.rhs

    def decompose(self) -> Iterator["FD"]:
        """Yield the single-RHS-attribute FDs aggregated into this one."""
        for rhs_attr in iter_bits(self.rhs):
            yield FD(self.lhs, 1 << rhs_attr)

    def to_str(self, columns: Sequence[str]) -> str:
        """Render the FD with attribute names, e.g. ``Postcode -> City,Mayor``."""
        lhs_names = ",".join(names_of(self.lhs, columns)) or "{}"
        rhs_names = ",".join(names_of(self.rhs, columns))
        return f"{lhs_names} -> {rhs_names}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lhs_bits = ",".join(map(str, iter_bits(self.lhs))) or "{}"
        rhs_bits = ",".join(map(str, iter_bits(self.rhs)))
        return f"[{lhs_bits}] -> [{rhs_bits}]"


class FDSet:
    """A set of FDs over one relation, aggregated by left-hand side.

    The container keeps one RHS mask per distinct LHS, which is both the
    paper's aggregated notation and the representation the closure
    algorithms mutate in place.
    """

    __slots__ = ("_by_lhs", "num_attributes")

    def __init__(self, num_attributes: int, fds: Iterable[FD] = ()) -> None:
        self.num_attributes = num_attributes
        self._by_lhs: dict[int, int] = {}
        for fd in fds:
            self.add(fd)

    def add(self, fd: FD) -> None:
        """Add an FD, aggregating its RHS with any same-LHS FD present."""
        self.add_masks(fd.lhs, fd.rhs)

    def add_masks(self, lhs: int, rhs: int) -> None:
        """Add ``lhs → rhs`` given as raw masks; LHS bits are stripped from RHS."""
        rhs &= ~lhs
        if not rhs:
            return
        self._by_lhs[lhs] = self._by_lhs.get(lhs, 0) | rhs

    def rhs_of(self, lhs: int) -> int:
        """Return the aggregated RHS mask for ``lhs`` (0 if absent)."""
        return self._by_lhs.get(lhs, 0)

    def remove_masks(self, lhs: int, rhs: int) -> None:
        """Remove ``lhs → rhs`` (RHS bits only); drops the LHS when empty.

        Used by degraded-mode normalization to evict FD candidates that
        re-verification against the data refuted.
        """
        remaining = self._by_lhs.get(lhs, 0) & ~rhs
        if remaining:
            self._by_lhs[lhs] = remaining
        else:
            self._by_lhs.pop(lhs, None)

    def __contains__(self, fd: FD) -> bool:
        return self._by_lhs.get(fd.lhs, 0) & fd.rhs == fd.rhs

    def __iter__(self) -> Iterator[FD]:
        for lhs, rhs in self._by_lhs.items():
            yield FD(lhs, rhs)

    def __len__(self) -> int:
        """Number of distinct left-hand sides (aggregated FDs)."""
        return len(self._by_lhs)

    def count_single_rhs(self) -> int:
        """Number of non-aggregated FDs ``X → A`` (one per RHS attribute)."""
        return sum(count_bits(rhs) for rhs in self._by_lhs.values())

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(lhs_mask, rhs_mask)`` pairs."""
        return iter(self._by_lhs.items())

    def copy(self) -> "FDSet":
        clone = FDSet(self.num_attributes)
        clone._by_lhs = dict(self._by_lhs)
        return clone

    def average_rhs_size(self) -> float:
        """Average RHS width over aggregated FDs (paper §8.2 reports this)."""
        if not self._by_lhs:
            return 0.0
        return sum(count_bits(rhs) for rhs in self._by_lhs.values()) / len(self._by_lhs)

    def is_minimal(self) -> bool:
        """Check pairwise LHS-minimality of the contained FDs.

        An FD ``X → A`` is non-minimal if some ``X' ⊂ X`` with ``X' → A``
        is also contained.  Complete discoverer output must pass this.
        """
        items = list(self._by_lhs.items())
        for i, (lhs, rhs) in enumerate(items):
            for j, (other_lhs, other_rhs) in enumerate(items):
                if i == j:
                    continue
                if other_lhs & ~lhs == 0 and other_lhs != lhs and rhs & other_rhs:
                    return False
        return True

    def to_strings(self, columns: Sequence[str]) -> list[str]:
        """Render all FDs with attribute names, sorted for stable output."""
        rendered = [FD(lhs, rhs).to_str(columns) for lhs, rhs in self._by_lhs.items()]
        return sorted(rendered)
