"""Attribute sets encoded as integer bitmasks.

Every hot path in this library (closure calculation, trie lookups, BCNF
violation checks) operates on sets of attributes.  Representing those
sets as Python ints — bit ``i`` set means "attribute at column index
``i`` is in the set" — makes union, intersection, and subset tests
single machine-word operations for relations of realistic width, and
makes attribute sets hashable for free.

The helpers in this module are deliberately tiny, free functions rather
than a wrapper class: the paper's algorithms (Algorithms 1–4) read most
naturally as direct mask algebra, and a wrapper object per FD would
dominate memory for the millions of FDs the system must handle.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

__all__ = [
    "bits_of",
    "count_bits",
    "full_mask",
    "is_subset",
    "iter_bits",
    "lowest_bit_index",
    "mask_of",
    "mask_of_names",
    "names_of",
]


def mask_of(indices: Iterable[int]) -> int:
    """Build a bitmask from an iterable of attribute (column) indices."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def mask_of_names(names: Iterable[str], columns: Sequence[str]) -> int:
    """Build a bitmask from attribute *names*, resolved against ``columns``.

    Raises :class:`ValueError` if a name does not appear in ``columns``.
    """
    positions = {name: index for index, name in enumerate(columns)}
    mask = 0
    for name in names:
        if name not in positions:
            raise ValueError(f"unknown attribute {name!r}; columns are {list(columns)}")
        mask |= 1 << positions[name]
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> tuple[int, ...]:
    """Return the set-bit indices of ``mask`` as an ascending tuple."""
    return tuple(iter_bits(mask))


def names_of(mask: int, columns: Sequence[str]) -> tuple[str, ...]:
    """Resolve a bitmask back to attribute names, in column order."""
    return tuple(columns[index] for index in iter_bits(mask))


def count_bits(mask: int) -> int:
    """Return the cardinality of the attribute set ``mask``."""
    return mask.bit_count()


def is_subset(sub: int, sup: int) -> bool:
    """Return True iff the attribute set ``sub`` is contained in ``sup``."""
    return sub & ~sup == 0


def full_mask(width: int) -> int:
    """Return the mask with the lowest ``width`` bits set (all attributes)."""
    return (1 << width) - 1


def lowest_bit_index(mask: int) -> int:
    """Return the index of the lowest set bit of a non-zero mask."""
    if not mask:
        raise ValueError("mask is empty")
    return (mask & -mask).bit_length() - 1
