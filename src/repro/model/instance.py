"""In-memory columnar relation instances.

A :class:`RelationInstance` couples a :class:`~repro.model.schema.Relation`
with its rows, stored column-major.  Column-major storage is what FD
discovery wants (PLIs are built per column) and what the paper's scoring
features want (max value length, distinct counts per attribute set).

``None`` represents SQL NULL throughout.  For FD discovery we follow the
Metanome convention ``NULL == NULL`` (configurable at the PLI layer);
for normalization, Algorithm 4 refuses to promote a NULL-containing LHS
to a key.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.model.attributes import bits_of, full_mask, iter_bits
from repro.model.schema import Relation

__all__ = ["RelationInstance"]

Row = tuple[Any, ...]


class RelationInstance:
    """A relation schema plus its data, stored column-major."""

    __slots__ = ("relation", "columns_data", "_encodings", "_data_version")

    def __init__(self, relation: Relation, columns_data: Sequence[list]) -> None:
        if len(columns_data) != relation.arity:
            raise ValueError(
                f"relation {relation.name!r} has {relation.arity} columns but "
                f"{len(columns_data)} data columns were given"
            )
        lengths = {len(column) for column in columns_data}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.relation = relation
        self.columns_data: list[list] = [list(column) for column in columns_data]
        self._encodings: dict[bool, Any] = {}
        self._data_version = 0

    # ------------------------------------------------------------------
    # Columnar value encoding (the PLI hot path's substrate)
    # ------------------------------------------------------------------
    def encoded(self, null_equals_null: bool = True):
        """Dictionary-encode all columns once; memoized per NULL semantics.

        Returns the shared :class:`~repro.structures.encoding.EncodedRelation`
        that PLI construction, validation, and sampling all index instead
        of re-deriving value ids from the raw Python objects.  The memo
        is invalidated when rows are appended in place (the row-count
        check, kept for callers that mutate ``columns_data`` directly)
        and when :meth:`invalidate_caches` bumps the data version — the
        incremental engine does the latter after deletes, where the row
        count alone could miss a same-size delete+insert batch.
        """
        from repro.structures.encoding import EncodedRelation

        cached = self._encodings.get(null_equals_null)
        if (
            cached is not None
            and cached[0] == self._data_version
            and cached[1].num_rows == self.num_rows
        ):
            return cached[1]
        encoding = EncodedRelation.encode(self.columns_data, null_equals_null)
        self._encodings[null_equals_null] = (self._data_version, encoding)
        return encoding

    def invalidate_caches(self) -> None:
        """Drop memoized encodings after an in-place data mutation."""
        self._data_version += 1
        self._encodings.clear()

    def install_encoding(self, null_equals_null: bool, encoding: Any) -> None:
        """Adopt an incrementally-maintained encoding as the current memo.

        The incremental engine maintains an
        :class:`~repro.structures.encoding.EncodedRelation` under
        appends/deletes itself; installing it here lets every
        ``encoded()`` consumer (PLI cache, validation, sampling) reuse
        it instead of re-encoding from the raw values.
        """
        self._encodings[null_equals_null] = (self._data_version, encoding)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, relation: Relation, rows: Iterable[Row]) -> "RelationInstance":
        """Build an instance from row tuples."""
        columns_data: list[list] = [[] for _ in range(relation.arity)]
        for row in rows:
            if len(row) != relation.arity:
                raise ValueError(
                    f"row width {len(row)} does not match arity {relation.arity}"
                )
            for index, value in enumerate(row):
                columns_data[index].append(value)
        return cls(relation, columns_data)

    @classmethod
    def from_encoded(
        cls, relation: Relation, encoding: Any, decode_tables: Sequence[list]
    ) -> "RelationInstance":
        """Build an instance around an existing encoding (chunked ingestion).

        ``columns_data`` becomes lazy
        :class:`~repro.structures.encoding.DecodedColumn` views over the
        encoding's code vectors and the ingester's id → value tables, so
        the raw values are never materialized as per-row Python lists —
        the whole point of the streaming CSV path.  The encoding is
        installed as the memo for its NULL semantics; a request for the
        *other* semantics re-encodes from the lazy columns, which decode
        to the original values and therefore produce the exact ids a
        list-backed instance would.

        Bypasses ``__init__`` deliberately: its ``list(column)`` copy
        would defeat the laziness (mutating callers always re-wrap via
        ``__init__``/``from_rows``, which still materializes — see
        ``LiveRelation``).
        """
        from repro.structures.encoding import DecodedColumn

        if encoding.arity != relation.arity:
            raise ValueError(
                f"relation {relation.name!r} has {relation.arity} columns but "
                f"the encoding has {encoding.arity}"
            )
        self = cls.__new__(cls)
        self.relation = relation
        self.columns_data = [
            DecodedColumn(codes, table)
            for codes, table in zip(encoding.codes, decode_tables)
        ]
        self._encodings = {}
        self._data_version = 0
        self.install_encoding(encoding.null_equals_null, encoding)
        return self

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def columns(self) -> tuple[str, ...]:
        return self.relation.columns

    @property
    def arity(self) -> int:
        return self.relation.arity

    @property
    def num_rows(self) -> int:
        if not self.columns_data:
            return 0
        return len(self.columns_data[0])

    @property
    def num_values(self) -> int:
        """Total number of stored cells (the paper counts dataset size this way)."""
        return self.num_rows * self.arity

    def column(self, name_or_index: str | int) -> list:
        """Return one data column by name or position."""
        if isinstance(name_or_index, str):
            name_or_index = self.relation.column_index(name_or_index)
        return self.columns_data[name_or_index]

    def row(self, index: int) -> Row:
        return tuple(column[index] for column in self.columns_data)

    def iter_rows(self) -> Iterator[Row]:
        return zip(*self.columns_data) if self.columns_data else iter(())

    # ------------------------------------------------------------------
    # Projection and deduplication (the decomposition step needs both)
    # ------------------------------------------------------------------
    def project(
        self, mask: int, name: str | None = None, dedup: bool = False
    ) -> "RelationInstance":
        """Project onto the attributes in ``mask``; optionally deduplicate rows.

        Column order is preserved.  ``dedup=True`` produces the paper's
        ``R2`` side of a decomposition (distinct ``X ∪ Y`` rows).
        """
        indices = bits_of(mask)
        new_columns = tuple(self.columns[i] for i in indices)
        new_relation = Relation(name or self.name, new_columns)
        source = [self.columns_data[i] for i in indices]
        if not dedup:
            return RelationInstance(new_relation, [list(col) for col in source])
        seen: set[Row] = set()
        kept: list[Row] = []
        for row in zip(*source) if source else ():
            if row not in seen:
                seen.add(row)
                kept.append(row)
        return RelationInstance.from_rows(new_relation, kept)

    # ------------------------------------------------------------------
    # Statistics used by the scoring features (paper §7)
    # ------------------------------------------------------------------
    def has_null_in(self, mask: int) -> bool:
        """True iff any column in ``mask`` contains a NULL (None) value."""
        for i in iter_bits(mask):
            column = self.columns_data[i]
            # Lazy decoded columns answer from their (small) decode
            # table instead of scanning every cell.
            flag = getattr(column, "has_null", None)
            if flag is None:
                flag = any(value is None for value in column)
            if flag:
                return True
        return False

    def max_value_length(self, mask: int) -> int:
        """Longest value in the (concatenated) columns of ``mask``.

        The paper's value score concatenates multi-attribute values; an
        empty relation or mask yields 0.  NULL counts as the empty string.
        """
        indices = bits_of(mask)
        if not indices or self.num_rows == 0:
            return 0
        longest = 0
        columns = [self.columns_data[i] for i in indices]
        for row in zip(*columns):
            length = sum(len(str(value)) for value in row if value is not None)
            if length > longest:
                longest = length
        return longest

    def distinct_count(self, mask: int) -> int:
        """Exact number of distinct value combinations in ``mask``."""
        indices = bits_of(mask)
        if not indices:
            return 1 if self.num_rows else 0
        columns = [self.columns_data[i] for i in indices]
        return len(set(zip(*columns)))

    def iter_projected_rows(self, mask: int) -> Iterator[Row]:
        """Yield the value combinations of the ``mask`` columns, row by row."""
        columns = [self.columns_data[i] for i in bits_of(mask)]
        if not columns:
            return iter(())
        return zip(*columns)

    def full_mask(self) -> int:
        return full_mask(self.arity)

    def rename(self, name: str) -> "RelationInstance":
        """Return a shallow copy with a new relation name (same constraints)."""
        relation = Relation(
            name,
            self.relation.columns,
            primary_key=self.relation.primary_key,
            foreign_keys=list(self.relation.foreign_keys),
        )
        return RelationInstance(relation, self.columns_data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelationInstance({self.name!r}, {self.arity} cols, "
            f"{self.num_rows} rows)"
        )
