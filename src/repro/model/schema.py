"""Schemas: relations, primary keys, and foreign keys.

These classes describe the *logical* side of a dataset — names, column
lists, and constraints — independent of any stored rows.  During
normalization the schema is incrementally rewritten: relations are
split, primary keys are assigned, and foreign keys are added, exactly
as the paper's running example turns ``R(First, Last, Postcode, City,
Mayor)`` into ``R1(First, Last, Postcode)`` and ``R2(Postcode, City,
Mayor)`` with ``R1.Postcode → R2.Postcode``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.model.attributes import mask_of_names, names_of

__all__ = ["ForeignKey", "Relation", "Schema"]


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """A foreign-key constraint: ``columns`` reference ``ref_relation.ref_columns``."""

    columns: tuple[str, ...]
    ref_relation: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise ValueError("foreign key and referenced key differ in width")
        if not self.columns:
            raise ValueError("foreign key must cover at least one column")

    def to_str(self) -> str:
        cols = ",".join(self.columns)
        ref = ",".join(self.ref_columns)
        return f"({cols}) -> {self.ref_relation}({ref})"


@dataclass(slots=True)
class Relation:
    """A named relation schema: ordered columns plus optional constraints.

    ``primary_key`` is a tuple of column names (or ``None`` when no key
    has been assigned yet); ``foreign_keys`` lists outgoing references.
    Column order matters — the paper's position scores exploit it.
    """

    name: str
    columns: tuple[str, ...]
    primary_key: tuple[str, ...] | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in relation {self.name!r}")
        if self.primary_key is not None:
            missing = set(self.primary_key) - set(self.columns)
            if missing:
                raise ValueError(f"primary key columns {missing} not in relation")

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """Return the position of column ``name`` (ValueError if absent)."""
        try:
            return self.columns.index(name)
        except ValueError:
            raise ValueError(f"no column {name!r} in relation {self.name!r}") from None

    def mask_of(self, names: Iterable[str]) -> int:
        """Bitmask of the given column names within this relation."""
        return mask_of_names(names, self.columns)

    def names_of(self, mask: int) -> tuple[str, ...]:
        """Column names for a bitmask within this relation."""
        return names_of(mask, self.columns)

    @property
    def primary_key_mask(self) -> int:
        """Bitmask of the primary key columns (0 if no primary key)."""
        if self.primary_key is None:
            return 0
        return self.mask_of(self.primary_key)

    def foreign_key_masks(self) -> list[int]:
        """Bitmasks of each outgoing foreign key's local columns."""
        return [self.mask_of(fk.columns) for fk in self.foreign_keys]

    def to_str(self) -> str:
        """Render like the paper: ``R1(First, Last, Postcode)`` with key marked."""
        key = set(self.primary_key or ())
        cols = ", ".join(f"*{c}*" if c in key else c for c in self.columns)
        return f"{self.name}({cols})"


class Schema:
    """An ordered collection of relations with unique names."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise ValueError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def remove(self, name: str) -> None:
        del self._relations[name]

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def unique_name(self, base: str) -> str:
        """Return ``base`` or ``base_2``, ``base_3``, … — first unused name."""
        if base not in self._relations:
            return base
        suffix = 2
        while f"{base}_{suffix}" in self._relations:
            suffix += 1
        return f"{base}_{suffix}"

    def referencing(self, name: str) -> list[tuple[Relation, ForeignKey]]:
        """All (relation, foreign key) pairs that reference relation ``name``."""
        hits = []
        for relation in self._relations.values():
            for fk in relation.foreign_keys:
                if fk.ref_relation == name:
                    hits.append((relation, fk))
        return hits

    def to_str(self) -> str:
        """Multi-line, human-readable rendering of the whole schema."""
        lines = []
        for relation in self._relations.values():
            lines.append(relation.to_str())
            for fk in relation.foreign_keys:
                lines.append(f"  FK {relation.name}.{fk.to_str()}")
        return "\n".join(lines)


def columns_subset(columns: Sequence[str], mask: int) -> tuple[str, ...]:
    """Project a column tuple to the positions named by ``mask``."""
    return names_of(mask, columns)
