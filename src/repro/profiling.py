"""A Metanome-style profiling facade.

The paper implements Normalize inside the Metanome data-profiling
framework, which "standardizes input parsing, result formatting, and
performance measurement".  This module is the equivalent surface for
this library: one call profiles a relation (or a set of relations) and
returns every metadata kind the pipeline and its extensions consume —
column statistics, minimal FDs, minimal UCCs, and cross-relation unary
INDs — together with wall-clock timings and a printable report.

Usage::

    from repro.profiling import profile

    report = profile(instance)
    print(report.to_str())
    report.fds            # FDSet
    report.uccs           # list of key-candidate masks
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import kernels
from repro.structures import fdtree, storage
from repro.discovery.base import FDAlgorithm, resolve_fd_algorithm
from repro.discovery.ind import IND, discover_unary_inds
from repro.discovery.ucc import resolve_ucc_algorithm
from repro.evaluation.reporting import format_table
from repro.model.fd import FDSet
from repro.model.instance import RelationInstance

__all__ = ["ColumnStats", "DataProfile", "profile", "profile_many"]


@dataclass(frozen=True, slots=True)
class ColumnStats:
    """Basic single-column statistics."""

    name: str
    distinct: int
    nulls: int
    min_length: int
    max_length: int
    is_unique: bool
    is_constant: bool


@dataclass(slots=True)
class DataProfile:
    """Everything profiled about one relation."""

    relation: str
    num_attributes: int
    num_records: int
    columns: list[ColumnStats]
    fds: FDSet
    uccs: list[int]
    timings: dict[str, float] = field(default_factory=dict)
    #: integer totals plus the ``kernel_backend`` name string
    counters: dict[str, int | str] = field(default_factory=dict)
    #: per-FD g3 error lines when an approximate (sampled) discoverer
    #: produced the FD set; ``None`` for exact runs
    approx_bounds: list[str] | None = None

    def to_str(self) -> str:
        lines = [
            f"Profile of {self.relation!r}: {self.num_attributes} attributes, "
            f"{self.num_records} records",
            f"  minimal FDs: {self.fds.count_single_rhs()} "
            f"({len(self.fds)} aggregated, avg |RHS| "
            f"{self.fds.average_rhs_size():.1f})",
            f"  minimal UCCs: {len(self.uccs)}",
        ]
        if self.counters:
            lines.append(
                "  counters: "
                + ", ".join(
                    f"{key}={value}" for key, value in self.counters.items()
                )
            )
        if self.approx_bounds is not None:
            lines.append("  approximate FDs (g3 error bounds):")
            lines.extend(f"    {bound}" for bound in self.approx_bounds)
        lines.append("")
        rows = [
            [
                stat.name,
                stat.distinct,
                stat.nulls,
                f"{stat.min_length}-{stat.max_length}",
                "yes" if stat.is_unique else "",
                "yes" if stat.is_constant else "",
            ]
            for stat in self.columns
        ]
        lines.append(
            format_table(
                ["column", "distinct", "nulls", "len", "unique", "constant"],
                rows,
            )
        )
        return "\n".join(lines)


def _column_stats(instance: RelationInstance) -> list[ColumnStats]:
    stats = []
    for index, name in enumerate(instance.columns):
        values = instance.columns_data[index]
        non_null = [value for value in values if value is not None]
        lengths = [len(str(value)) for value in non_null]
        distinct = len(set(non_null))
        stats.append(
            ColumnStats(
                name=name,
                distinct=distinct,
                nulls=len(values) - len(non_null),
                min_length=min(lengths) if lengths else 0,
                max_length=max(lengths) if lengths else 0,
                is_unique=(
                    distinct == len(values) and len(values) > 0
                ),
                is_constant=distinct <= 1,
            )
        )
    return stats


def profile(
    instance: RelationInstance,
    fd_algorithm: FDAlgorithm | str = "hyfd",
    ucc_algorithm: str = "ducc",
    null_equals_null: bool = True,
    workers: int | None = None,
) -> DataProfile:
    """Profile one relation: column stats, minimal FDs, minimal UCCs.

    ``counters`` in the returned profile carries the PLI-cache
    hit/miss/eviction totals of the discovery runs (prefixed ``fd_`` /
    ``ucc_``) whenever the chosen algorithms expose them, plus — with
    ``workers > 1`` — the worker-pool counters of the FD discovery run
    (``pool_``-prefixed: tasks dispatched, shard sizes, shared-memory
    attach/export times, serial fallbacks, plus the self-healing
    totals — respawns, retries, quarantined shards, heartbeat misses,
    in-process fallback tasks, and whether the pool degraded to serial
    entirely).  It also records the active
    kernel backend (``kernel_backend``) and this profile run's
    per-kernel call/row totals (``kernel_*_calls`` / ``kernel_*_rows``;
    parent process only — worker-side kernel calls are not folded back).
    """
    timings: dict[str, float] = {}
    counters: dict[str, int | str] = {}
    kernel_mark = kernels.counters_snapshot()
    storage_mark = storage.counters_snapshot()

    started = time.perf_counter()
    columns = _column_stats(instance)
    timings["column_stats"] = time.perf_counter() - started

    started = time.perf_counter()
    if isinstance(fd_algorithm, str):
        kwargs = {"null_equals_null": null_equals_null}
        if fd_algorithm.lower() in ("hyfd", "tane"):
            kwargs["workers"] = workers
        fd_algorithm = resolve_fd_algorithm(fd_algorithm, **kwargs)
    fds = fd_algorithm.discover(instance)
    timings["fd_discovery"] = time.perf_counter() - started
    _collect_cache_counters(counters, "fd_", fd_algorithm)
    _collect_pool_counters(counters, fd_algorithm)
    approx_bounds = None
    if hasattr(fd_algorithm, "format_bounds"):
        approx_bounds = fd_algorithm.format_bounds(instance.columns)
        sampled = getattr(fd_algorithm, "last_sampled_rows", None)
        if sampled is not None:
            counters["fd_sampled_rows"] = sampled

    started = time.perf_counter()
    ucc = resolve_ucc_algorithm(
        ucc_algorithm, null_equals_null=null_equals_null
    )
    uccs = ucc.discover(instance)
    timings["ucc_discovery"] = time.perf_counter() - started
    _collect_cache_counters(counters, "ucc_", ucc)

    counters["kernel_backend"] = kernels.backend_name()
    counters["fdtree_engine"] = fdtree.engine_name()
    counters["storage_policy"] = storage.policy_name()
    counters["storage_tier"] = _storage_tier(instance)
    counters.update(kernels.counters_delta(kernel_mark))
    counters.update(storage.counters_delta(storage_mark))
    _collect_spill_stats(counters, instance)

    return DataProfile(
        relation=instance.name,
        num_attributes=instance.arity,
        num_records=instance.num_rows,
        columns=columns,
        fds=fds,
        uccs=uccs,
        timings=timings,
        counters=counters,
        approx_bounds=approx_bounds,
    )


def _storage_tier(instance: RelationInstance) -> str:
    """The residency tier of the relation's cached encodings.

    All columns of one encoding share a store, so this is also the
    per-column tier; ``"memory"`` when nothing was encoded (or nothing
    spilled), ``"spill"`` when any cached encoding lives on disk.
    """
    tiers = {
        getattr(encoding, "tier", "memory")
        for _, encoding in instance._encodings.values()
    }
    return "spill" if "spill" in tiers else "memory"


def _collect_spill_stats(
    counters: dict[str, object], instance: RelationInstance
) -> None:
    """Fold the relation's own store counters into the profile.

    The process-global delta only covers spilling that happened *during*
    profiling; columns spilled at ingest time (the common case) are
    accounted by their :class:`~repro.structures.storage.ColumnStore`'s
    lifetime ``stats``, which travel with the encoding.
    """
    totals: dict[str, int] = {}
    for _, encoding in instance._encodings.values():
        store = getattr(encoding, "store", None)
        stats = getattr(store, "stats", None)
        if stats:
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
    for key, value in totals.items():
        if value > int(counters.get(key, 0) or 0):
            counters[key] = value


def _collect_cache_counters(counters: dict[str, int], prefix: str, algorithm) -> None:
    stats = getattr(algorithm, "last_cache_stats", None)
    if stats is not None:
        for key, value in stats.as_dict().items():
            counters[f"{prefix}{key}"] = value


def _collect_pool_counters(counters: dict[str, int], algorithm) -> None:
    stats = getattr(algorithm, "last_pool_stats", None)
    if stats is not None:
        counters.update(stats.as_dict())


def profile_many(
    instances: dict[str, RelationInstance],
    fd_algorithm: FDAlgorithm | str = "hyfd",
) -> tuple[dict[str, DataProfile], list[IND]]:
    """Profile several relations plus the unary INDs between them."""
    profiles = {
        name: profile(instance, fd_algorithm)
        for name, instance in instances.items()
    }
    inds = discover_unary_inds(instances)
    return profiles, inds
