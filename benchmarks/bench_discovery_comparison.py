"""Supplementary: FD-discovery algorithm comparison.

Not a table of the paper itself, but the paper's choice of HyFD over
TANE/DFD for step (1) rests on the VLDB'15 experimental comparison
("Functional dependency discovery: an experimental evaluation of seven
algorithms", the paper's [18]) and on HyFD itself ([19]).  This
benchmark backs that design choice within this reproduction: all three
discoverers produce identical results (asserted), and their runtimes
are compared on the four profile datasets at a size every algorithm
can handle.

Expected shape: TANE and HyFD lead on these small, FD-dense inputs;
DFD trails because its per-RHS lattice walks repeat work across the
many RHS attributes — consistent with [18], where DFD wins only on
narrow-but-long datasets.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.datagen.profiles import (
    amalgam_like,
    flight_like,
    horse_like,
    plista_like,
)
from repro.discovery.dfd import DFD
from repro.discovery.hyfd import HyFD
from repro.discovery.tane import Tane
from repro.evaluation.reporting import format_table

DATASETS = {
    "horse-150": lambda: horse_like(num_rows=150),
    "plista-300": lambda: plista_like(num_rows=300),
    "amalgam1": lambda: amalgam_like(),
    "flight-300": lambda: flight_like(num_rows=300),
}
ALGORITHMS = {"hyfd": HyFD, "tane": Tane, "dfd": DFD}

_ROWS: dict[str, dict[str, float]] = {}
_COUNTS: dict[str, dict[str, int]] = {}


@pytest.fixture(scope="module")
def instances():
    return {name: build() for name, build in DATASETS.items()}


@pytest.fixture(scope="module", autouse=True)
def _comparison_report(request):
    yield
    if not _ROWS:
        return
    headers = ["Dataset", "#FDs", "hyfd (s)", "tane (s)", "dfd (s)"]
    rows = []
    for name in DATASETS:
        data = _ROWS.get(name, {})
        if set(ALGORITHMS) <= data.keys():
            counts = set(_COUNTS.get(name, {}).values())
            rows.append([
                name,
                counts.pop() if len(counts) == 1 else f"DISAGREE {counts}",
                f"{data['hyfd']:.2f}",
                f"{data['tane']:.2f}",
                f"{data['dfd']:.2f}",
            ])
    emit(
        format_table(
            headers,
            rows,
            title="FD discovery algorithm comparison (identical results asserted)",
        ),
        request,
        filename="discovery_comparison",
    )


@pytest.mark.parametrize("algo_name", list(ALGORITHMS))
@pytest.mark.parametrize("dataset", list(DATASETS))
def test_discovery(benchmark, dataset, algo_name, instances):
    instance = instances[dataset]
    algorithm = ALGORITHMS[algo_name]()
    fds = benchmark.pedantic(
        algorithm.discover, args=(instance,), rounds=1, iterations=1
    )
    _ROWS.setdefault(dataset, {})[algo_name] = benchmark.stats.stats.mean
    _COUNTS.setdefault(dataset, {})[algo_name] = fds.count_single_rhs()
