"""Shared helpers for the benchmark harness.

Benchmarks print paper-style result tables.  pytest captures stdout at
the file-descriptor level, so :func:`emit` temporarily disables the
capture manager to reach the real terminal, and additionally persists
every table under ``benchmarks/results/`` so the numbers survive the
run (EXPERIMENTS.md is written from those files).

:func:`emit_json` additionally persists machine-readable results as
``benchmarks/results/BENCH_<name>.json`` so the perf trajectory is
trackable across PRs: each document carries the timings, dataset
sizes, the kernel backend, and the worker count of the run.
"""

from __future__ import annotations

import json
import platform
import re
from pathlib import Path

__all__ = ["emit", "emit_json"]

RESULTS_DIR = Path(__file__).parent / "results"


def emit(text: str, request=None, filename: str | None = None) -> None:
    """Print ``text`` past pytest's capture and persist it to disk.

    ``request`` is the pytest fixture request used to reach the capture
    manager; without it the text is printed normally (visible only with
    ``-s``).  ``filename`` defaults to a slug of the first line.
    """
    if request is not None:
        capman = request.config.pluginmanager.getplugin("capturemanager")
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(f"\n{text}", flush=True)
        else:  # pragma: no cover - capture plugin always present
            print(f"\n{text}", flush=True)
    else:
        print(f"\n{text}", flush=True)

    RESULTS_DIR.mkdir(exist_ok=True)
    if filename is None:
        first_line = text.splitlines()[0] if text else "report"
        filename = re.sub(r"[^a-z0-9]+", "_", first_line.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{filename}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(name: str, payload: dict, key: str | None = None) -> Path:
    """Persist machine-readable results to ``BENCH_<name>.json``.

    Without ``key`` the document is ``{"bench", "environment", **payload}``,
    rewritten atomically per run.  With ``key`` (e.g. a backend name)
    the payload is merged into the document's ``runs`` mapping instead,
    so successive runs under different configurations accumulate in one
    file rather than clobbering each other.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    if key is not None:
        if path.exists():
            try:
                previous = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                previous = {}
            if previous.get("bench") == name:
                document = previous
        document.setdefault("runs", {})[key] = payload
    else:
        document.update(payload)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return path
