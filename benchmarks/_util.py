"""Shared helpers for the benchmark harness.

Benchmarks print paper-style result tables.  pytest captures stdout at
the file-descriptor level, so :func:`emit` temporarily disables the
capture manager to reach the real terminal, and additionally persists
every table under ``benchmarks/results/`` so the numbers survive the
run (EXPERIMENTS.md is written from those files).
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["emit"]

RESULTS_DIR = Path(__file__).parent / "results"


def emit(text: str, request=None, filename: str | None = None) -> None:
    """Print ``text`` past pytest's capture and persist it to disk.

    ``request`` is the pytest fixture request used to reach the capture
    manager; without it the text is printed normally (visible only with
    ``-s``).  ``filename`` defaults to a slug of the first line.
    """
    if request is not None:
        capman = request.config.pluginmanager.getplugin("capturemanager")
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(f"\n{text}", flush=True)
        else:  # pragma: no cover - capture plugin always present
            print(f"\n{text}", flush=True)
    else:
        print(f"\n{text}", flush=True)

    RESULTS_DIR.mkdir(exist_ok=True)
    if filename is None:
        first_line = text.splitlines()[0] if text else "report"
        filename = re.sub(r"[^a-z0-9]+", "_", first_line.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{filename}.txt").write_text(text + "\n", encoding="utf-8")
