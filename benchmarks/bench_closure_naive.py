"""Experiment E3 — the §8.2 naive-closure comparison.

The paper reports the naive closure (Algorithm 1) being so much slower
than Algorithms 2 and 3 that they "stopped testing it": 13 s vs. <1 s
on Amalgam1, 23 min vs. seconds on Horse, 41 min on Plista.  The cubic
blow-up makes full-size naive runs pointless here too, so two views are
measured:

* per-dataset: all three algorithms on identical fixed-size samples of
  the Amalgam1/Horse/Plista FD sets — naive ≫ improved > optimized,
* scaling: naive vs. optimized on growing samples — the naive/optimized
  ratio grows super-linearly with the FD count, which is exactly why
  the paper's full-size naive runs exploded into minutes.
"""

from __future__ import annotations

import random

import pytest

from _util import emit
from repro.core.closure import improved_closure, naive_closure, optimized_closure
from repro.evaluation.reporting import format_table
from repro.model.fd import FDSet

DATASETS = ["amalgam1", "horse", "plista"]
SAMPLE_SIZE = 800  # aggregated FDs per dataset; naive is O(n^3)
SCALING_SIZES = [200, 400, 800, 1600]

_ROWS: dict[str, dict[str, float]] = {}
_SCALING: dict[int, dict[str, float]] = {}


def _sample(fds: FDSet, count: int, seed: int = 29) -> FDSet:
    pairs = list(fds.items())
    rng = random.Random(seed)
    chosen = rng.sample(pairs, count) if count < len(pairs) else pairs
    sampled = FDSet(fds.num_attributes)
    for lhs, rhs in chosen:
        sampled.add_masks(lhs, rhs)
    return sampled


@pytest.fixture(scope="module", autouse=True)
def _naive_report(request):
    yield
    blocks = []
    if _ROWS:
        headers = [
            "Dataset", "#FDs", "naive (s)", "improved (s)",
            "optimized (s)", "naive/optimized",
        ]
        rows = []
        for name in DATASETS:
            data = _ROWS.get(name, {})
            if {"naive", "improved", "optimized"} <= data.keys():
                rows.append([
                    name,
                    SAMPLE_SIZE,
                    f"{data['naive']:.3f}",
                    f"{data['improved']:.4f}",
                    f"{data['optimized']:.4f}",
                    f"{data['naive'] / max(data['optimized'], 1e-9):.0f}x",
                ])
        blocks.append(
            format_table(
                headers,
                rows,
                title="naive closure comparison, paper §8.2 (subsampled FD sets)",
            )
        )
    if _SCALING:
        rows = []
        for count in sorted(_SCALING):
            data = _SCALING[count]
            if {"naive", "optimized"} <= data.keys():
                rows.append([
                    count,
                    f"{data['naive']:.3f}",
                    f"{data['optimized']:.4f}",
                    f"{data['naive'] / max(data['optimized'], 1e-9):.0f}x",
                ])
        blocks.append(
            format_table(
                ["#FDs", "naive (s)", "optimized (s)", "ratio"],
                rows,
                title="naive vs. optimized scaling (horse FD-set samples): "
                "the ratio grows with the input",
            )
        )
    if blocks:
        emit(
            "\n\n".join(blocks),
            request,
            filename="naive_closure_comparison",
        )


@pytest.mark.parametrize("name", DATASETS)
def test_naive_closure(benchmark, name, discovery):
    sampled = _sample(discovery.fds(name), SAMPLE_SIZE)
    benchmark.pedantic(
        naive_closure, args=(sampled.copy(),), rounds=1, iterations=1
    )
    _ROWS.setdefault(name, {})["naive"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("name", DATASETS)
def test_improved_closure(benchmark, name, discovery):
    sampled = _sample(discovery.fds(name), SAMPLE_SIZE)
    benchmark.pedantic(
        improved_closure, args=(sampled.copy(),), rounds=3, iterations=1
    )
    _ROWS.setdefault(name, {})["improved"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("name", DATASETS)
def test_optimized_closure(benchmark, name, discovery):
    sampled = _sample(discovery.fds(name), SAMPLE_SIZE)
    benchmark.pedantic(
        optimized_closure, args=(sampled.copy(),), rounds=3, iterations=1
    )
    _ROWS.setdefault(name, {})["optimized"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("count", SCALING_SIZES)
def test_naive_scaling(benchmark, count, discovery):
    sampled = _sample(discovery.fds("horse"), count)
    benchmark.pedantic(
        naive_closure, args=(sampled.copy(),), rounds=1, iterations=1
    )
    _SCALING.setdefault(count, {})["naive"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("count", SCALING_SIZES)
def test_optimized_scaling(benchmark, count, discovery):
    sampled = _sample(discovery.fds("horse"), count)
    benchmark.pedantic(
        optimized_closure, args=(sampled.copy(),), rounds=3, iterations=1
    )
    _SCALING.setdefault(count, {})["optimized"] = benchmark.stats.stats.mean
